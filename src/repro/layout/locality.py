"""The locality equation of Section 2.

Two successive iterations ``I`` and ``I + e`` (``e`` the innermost
iteration direction) of a nest touch elements of a reference
``d = A I + b`` that differ by the *access delta* ``delta = A e``.  A
hyperplane row ``Y`` preserves spatial locality iff ``Y . delta = 0``;
a full layout does iff every row annihilates ``delta``.  When
``delta = 0`` the reference enjoys *temporal* locality in the innermost
loop -- every layout is equally good.

:func:`preferred_layout` solves the paper's worked example directly:
for ``Q1[i1+i2][i2]`` with innermost direction ``(0 1)`` the delta is
``(1 1)`` and the unique canonical solution of ``y . (1 1) = 0`` is
``(1 -1)`` -- the diagonal layout.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.ir.reference import ArrayRef
from repro.layout.layout import Layout
from repro.linalg.matrices import mat_vec, mat_transpose, rank
from repro.linalg.nullspace import left_nullspace_basis
from repro.linalg.unimodular import complete_to_nonsingular
from repro.linalg.vectors import dot, is_zero_vector


def access_delta(
    reference: ArrayRef,
    index_order: Sequence[str],
    direction: Sequence[int],
) -> tuple[int, ...]:
    """The element-space step ``A e`` for an iteration-space step ``e``."""
    return mat_vec(reference.access_matrix(index_order), direction)


def has_spatial_locality(layout: Layout, delta: Sequence[int]) -> bool:
    """True iff every layout row annihilates the access delta."""
    return all(dot(row, delta) == 0 for row in layout.rows)


def has_temporal_locality(delta: Sequence[int]) -> bool:
    """True iff successive iterations touch the same element."""
    return is_zero_vector(delta)


def layout_for_deltas(
    deltas: Sequence[Sequence[int]], dimension: int
) -> Layout | None:
    """Best layout whose rows annihilate as many deltas as possible.

    The hyperplane rows are a basis of the left null space of the
    matrix whose columns are the (nonzero) deltas.  When the null space
    has fewer than ``dimension - 1`` vectors, the layout is completed
    with deterministic extra rows -- the leading rows still carry the
    locality.  Returns ``None`` when every delta is zero (pure temporal
    locality; no layout preference) or when no nonzero hyperplane
    annihilates any delta is required (empty deltas).

    Raises:
        ValueError: when the deltas span the full space, i.e. no
            hyperplane at all can annihilate them -- callers treat this
            as "no layout preference is achievable" by catching it via
            the ``None`` path of :func:`preferred_layout`.
    """
    nonzero = tuple(
        sorted({tuple(delta) for delta in deltas if not is_zero_vector(delta)})
    )
    if not nonzero:
        return None
    return _layout_for_nonzero_deltas(nonzero, dimension)


@lru_cache(maxsize=16384)
def _layout_for_nonzero_deltas(
    nonzero: tuple[tuple[int, ...], ...], dimension: int
) -> Layout | None:
    """Cached core of :func:`layout_for_deltas`.

    The solution depends only on the *set* of nonzero deltas (the left
    null space of their span), so the caller canonicalizes to a sorted
    deduplicated tuple; distinct transforms of distinct nests routinely
    produce the same few delta sets.
    """
    columns = mat_transpose(list(nonzero))  # dimension x n_deltas
    basis = left_nullspace_basis(columns)
    if not basis:
        return None
    rows = list(basis[: dimension - 1])
    if len(rows) < dimension - 1:
        completed = complete_to_nonsingular(rows, dimension)
        for candidate in completed[len(rows):]:
            if len(rows) == dimension - 1:
                break
            trial = rows + [candidate]
            if rank(trial) == len(trial):
                rows.append(candidate)
    return Layout(dimension, rows)


def preferred_layout(
    reference: ArrayRef,
    index_order: Sequence[str],
    direction: Sequence[int],
) -> Layout | None:
    """The layout a single reference wants under an innermost direction.

    Returns ``None`` when the reference has temporal locality (any
    layout works) or when no hyperplane can align with the access
    pattern (no preference expressible).
    """
    delta = access_delta(reference, index_order, direction)
    if has_temporal_locality(delta):
        return None
    return layout_for_deltas([delta], reference.rank)

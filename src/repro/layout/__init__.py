"""Hyperplane-based memory layout algebra (Section 2 of the paper).

A memory layout of a ``k``-dimensional array is an *ordered* set of
``k - 1`` integer hyperplane vectors: two elements are stored in the
same innermost block iff every hyperplane row gives them equal dot
products.  This subpackage provides:

* :mod:`repro.layout.hyperplane` -- a single hyperplane family.
* :mod:`repro.layout.layout` -- full layouts, canonical forms, the
  standard layouts (row-major, column-major, (anti)diagonal).
* :mod:`repro.layout.mapping` -- completion of a layout to a
  nonsingular data transformation and the resulting index -> linear
  offset map over the transformed bounding box.
* :mod:`repro.layout.locality` -- the locality equation
  ``Y . (A e) = 0`` and layout derivation from access deltas.
* :mod:`repro.layout.candidates` -- per-nest candidate layout
  enumeration for each array under candidate loop restructurings.
"""

from repro.layout.hyperplane import Hyperplane
from repro.layout.layout import (
    Layout,
    row_major,
    column_major,
    diagonal,
    antidiagonal,
    standard_layouts,
)
from repro.layout.mapping import LayoutMapping
from repro.layout.locality import (
    access_delta,
    layout_for_deltas,
    preferred_layout,
    has_spatial_locality,
    has_temporal_locality,
)
from repro.layout.candidates import (
    nest_layout_combos,
    candidate_layouts_for_array,
    LayoutCombo,
)

__all__ = [
    "Hyperplane",
    "Layout",
    "row_major",
    "column_major",
    "diagonal",
    "antidiagonal",
    "standard_layouts",
    "LayoutMapping",
    "access_delta",
    "layout_for_deltas",
    "preferred_layout",
    "has_spatial_locality",
    "has_temporal_locality",
    "nest_layout_combos",
    "candidate_layouts_for_array",
    "LayoutCombo",
]

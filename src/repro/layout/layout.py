"""Full memory layouts as ordered hyperplane sets.

For a ``k``-dimensional array a layout is an ordered tuple of ``k - 1``
linearly independent hyperplane rows ``Y1 ... Y(k-1)``; two elements
share full spatial locality iff every row gives them equal dot products
(paper, end of Section 2).  Row order matters: ``Y1`` is the most
significant storage direction.  A 1-dimensional array has exactly one
layout, the empty tuple of rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.layout.hyperplane import Hyperplane
from repro.linalg.matrices import rank
from repro.linalg.vectors import dot


@dataclass(frozen=True)
class Layout:
    """An ordered, canonical set of hyperplane rows for one array rank.

    Attributes:
        dimension: the array rank ``k``.
        rows: ``k - 1`` canonical hyperplane vectors, most significant
            first.
    """

    dimension: int
    rows: tuple[tuple[int, ...], ...]

    def __init__(self, dimension: int, rows: Sequence[Sequence[int]]):
        canonical_rows = tuple(Hyperplane(row).vector for row in rows)
        if dimension < 1:
            raise ValueError("layout dimension must be >= 1")
        if len(canonical_rows) != dimension - 1:
            raise ValueError(
                f"a {dimension}-dimensional layout needs {dimension - 1} "
                f"hyperplane rows, got {len(canonical_rows)}"
            )
        for row in canonical_rows:
            if len(row) != dimension:
                raise ValueError(
                    f"hyperplane row {row} does not live in dimension {dimension}"
                )
        if canonical_rows and rank(canonical_rows) != len(canonical_rows):
            raise ValueError("layout hyperplane rows must be linearly independent")
        object.__setattr__(self, "dimension", dimension)
        object.__setattr__(self, "rows", canonical_rows)

    @property
    def hyperplanes(self) -> tuple[Hyperplane, ...]:
        """Rows wrapped as :class:`Hyperplane` objects."""
        return tuple(Hyperplane(row) for row in self.rows)

    def colocated(self, first: Sequence[int], second: Sequence[int]) -> bool:
        """True iff both elements lie on the same member of every family.

        This is the paper's multi-row membership test
        ``Yi . d1 == Yi . d2`` for all ``i``.
        """
        return all(
            dot(row, first) == dot(row, second) for row in self.rows
        )

    def describe(self) -> str:
        """Human-readable name for well-known 2-D layouts, else the rows."""
        if self.dimension == 2 and len(self.rows) == 1:
            names = {
                (1, 0): "row-major",
                (0, 1): "column-major",
                (1, -1): "diagonal",
                (1, 1): "anti-diagonal",
            }
            known = names.get(self.rows[0])
            if known is not None:
                return f"{known} {Hyperplane(self.rows[0])}"
        return str(self)

    def __str__(self) -> str:
        if not self.rows:
            return "<1-d layout>"
        return "; ".join(str(Hyperplane(row)) for row in self.rows)


def row_major(dimension: int) -> Layout:
    """The default C layout: last index varies fastest.

    For 2-D this is hyperplane ``(1 0)`` (Figure 1(a)); for 3-D the
    ordered rows are ``(1 0 0), (0 1 0)``.
    """
    rows = []
    for i in range(dimension - 1):
        row = [0] * dimension
        row[i] = 1
        rows.append(tuple(row))
    return Layout(dimension, rows)


def column_major(dimension: int) -> Layout:
    """Fortran layout: first index varies fastest.

    For 3-D this is the paper's example: rows ``(0 0 1), (0 1 0)``.
    """
    rows = []
    for i in range(dimension - 1):
        row = [0] * dimension
        row[dimension - 1 - i] = 1
        rows.append(tuple(row))
    return Layout(dimension, rows)


def diagonal() -> Layout:
    """The 2-D diagonal layout ``(1 -1)`` of Figure 1(c)."""
    return Layout(2, [(1, -1)])


def antidiagonal() -> Layout:
    """The 2-D anti-diagonal layout ``(1 1)`` of Figure 1(d)."""
    return Layout(2, [(1, 1)])


def standard_layouts(dimension: int) -> tuple[Layout, ...]:
    """The conventional candidates for an array rank.

    2-D arrays get the four layouts of Figure 1; higher ranks get
    row-major and column-major (richer candidates come from the
    locality analysis in :mod:`repro.layout.candidates`).
    """
    if dimension == 1:
        return (Layout(1, []),)
    if dimension == 2:
        return (row_major(2), column_major(2), diagonal(), antidiagonal())
    return (row_major(dimension), column_major(dimension))

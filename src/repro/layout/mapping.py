"""Index -> linear offset mapping induced by a layout.

To materialize a layout we complete its ``k - 1`` hyperplane rows with
one extra row into a nonsingular data-transformation matrix ``T`` and
store the array row-major over the bounding box of the transformed
index set ``{T d : d in extents}``.  For row-major layouts ``T`` is the
identity; for column-major it is the reversal permutation; for the
diagonal layout ``(1 -1)`` the box inflates to ``N1 + N2 - 1`` columns
-- exactly the data-space growth the paper's footnote 2 describes for
non-primitive vectors (primitive vectors keep the inflation minimal).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.ir.arrays import ArrayDecl
from repro.layout.layout import Layout
from repro.linalg.boxes import affine_range_over_box
from repro.linalg.matrices import mat_vec
from repro.linalg.unimodular import complete_to_unimodular


@dataclass(frozen=True)
class LayoutMapping:
    """Precomputed offset map for one (array, layout) pair.

    Attributes:
        decl: the array declaration.
        layout: the memory layout being materialized.
        transform: the completed nonsingular ``k x k`` matrix ``T``.
        lows: per transformed dimension, the minimum coordinate.
        extents: per transformed dimension, the bounding-box size.
        strides: row-major element strides over the transformed box.
    """

    decl: ArrayDecl
    layout: Layout
    transform: tuple[tuple[int, ...], ...]
    lows: tuple[int, ...]
    extents: tuple[int, ...]
    strides: tuple[int, ...]

    @staticmethod
    def create(decl: ArrayDecl, layout: Layout) -> "LayoutMapping":
        """Build the mapping for an array under a layout.

        Cached: the mapping is a pure function of the two (immutable)
        arguments, and its unimodular completion plus bounding-box scan
        are exact-rational work the optimizer's repair pass would
        otherwise repeat for every candidate swap.

        Raises:
            ValueError: if the layout rank does not match the array.
        """
        return _create_mapping(decl, layout)

    @property
    def footprint_elements(self) -> int:
        """Bounding-box size in elements (>= the array's element count)."""
        product = 1
        for extent in self.extents:
            product *= extent
        return product

    @property
    def footprint_bytes(self) -> int:
        """Bounding-box size in bytes."""
        return self.footprint_elements * self.decl.element_size

    @property
    def inflation(self) -> float:
        """Footprint growth factor relative to the dense array (1.0 = none)."""
        return self.footprint_elements / self.decl.element_count

    def offset_of(self, index: Sequence[int]) -> int:
        """Linear element offset of an array element under this layout."""
        transformed = mat_vec(self.transform, index)
        offset = 0
        for coordinate, low, stride in zip(transformed, self.lows, self.strides):
            offset += (coordinate - low) * stride
        return offset

    def byte_offset_of(self, index: Sequence[int]) -> int:
        """Linear byte offset of an array element under this layout."""
        return self.offset_of(index) * self.decl.element_size


@lru_cache(maxsize=8192)
def _create_mapping(decl: ArrayDecl, layout: Layout) -> LayoutMapping:
    """Cached core of :meth:`LayoutMapping.create`."""
    if layout.dimension != decl.rank:
        raise ValueError(
            f"layout rank {layout.dimension} does not match array "
            f"{decl.name} rank {decl.rank}"
        )
    transform = complete_to_unimodular(layout.rows, decl.rank)
    box = decl.index_box()
    lows: list[int] = []
    extents: list[int] = []
    for row in transform:
        low, high = affine_range_over_box(row, 0, box)
        lows.append(low)
        extents.append(high - low + 1)
    strides = [0] * decl.rank
    running = 1
    for axis in range(decl.rank - 1, -1, -1):
        strides[axis] = running
        running *= extents[axis]
    return LayoutMapping(
        decl,
        layout,
        transform,
        tuple(lows),
        tuple(extents),
        tuple(strides),
    )

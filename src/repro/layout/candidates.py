"""Per-nest candidate layout derivation.

For each legal loop restructuring of a nest, every array referenced by
the nest gets the layout that aligns its storage with the restructured
access pattern (Section 2's worked example; Section 3 turns each such
per-restructuring combination into members of the binary constraints).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.layout.layout import Layout, standard_layouts
from repro.layout.locality import access_delta, layout_for_deltas
from repro.transform.catalog import legal_transforms
from repro.transform.unimodular_loop import LoopTransform


@dataclass(frozen=True)
class LayoutCombo:
    """The preferred layouts of a nest's arrays under one restructuring.

    Attributes:
        nest: the nest name.
        transform: name of the loop transform producing this combo.
        assignments: (array, layout) pairs, sorted by array name; arrays
            with no layout preference under the transform are absent.
    """

    nest: str
    transform: str
    assignments: tuple[tuple[str, Layout], ...]

    def layout_of(self, array: str) -> Layout | None:
        """The combo's layout for an array, or None if unconstrained."""
        for name, layout in self.assignments:
            if name == array:
                return layout
        return None

    def arrays(self) -> tuple[str, ...]:
        """Arrays constrained by this combo."""
        return tuple(name for name, _ in self.assignments)


def _combo_for_transform(
    program: Program, nest: LoopNest, transform: LoopTransform
) -> LayoutCombo:
    """Preferred layouts of every array in the nest under one transform."""
    direction = transform.innermost_direction()
    order = nest.index_order
    assignments: list[tuple[str, Layout]] = []
    for array_name in sorted(nest.arrays()):
        decl = program.array(array_name)
        deltas = [
            access_delta(reference, order, direction)
            for reference in nest.references_to(array_name)
        ]
        layout = layout_for_deltas(deltas, decl.rank)
        if layout is not None:
            assignments.append((array_name, layout))
    return LayoutCombo(nest.name, transform.name, tuple(assignments))


def nest_layout_combos(
    program: Program,
    nest: LoopNest,
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> list[LayoutCombo]:
    """All distinct layout combinations of a nest, one per legal transform.

    Combos with identical assignments (different transforms inducing
    the same layouts) are deduplicated, keeping the first transform's
    name; combos constraining no array are dropped.

    Results are memoized on the (immutable) program: deriving the
    combos means enumerating legal unimodular transforms and running
    exact rational linear algebra per transform, and every consumer --
    the per-array domain derivation, the network builder, the heuristic
    optimizer -- asks for the same nests.  The memo rides along when a
    program is pickled to a worker process, so workers skip the
    enumeration too.
    """
    cache = program.__dict__.setdefault("_layout_combo_cache", {})
    key = (nest.name, include_reversals, tuple(skew_factors))
    combos = cache.get(key)
    if combos is None:
        combos = []
        seen: set[tuple[tuple[str, Layout], ...]] = set()
        for transform in legal_transforms(nest, include_reversals, skew_factors):
            combo = _combo_for_transform(program, nest, transform)
            if not combo.assignments:
                continue
            if combo.assignments in seen:
                continue
            seen.add(combo.assignments)
            combos.append(combo)
        cache[key] = combos
    return list(combos)


def candidate_layouts_for_array(
    program: Program,
    array: str,
    include_standard: bool = True,
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> list[Layout]:
    """The domain M_i of an array: every layout some nest wants for it.

    Args:
        program: the program being optimized.
        array: the array name.
        include_standard: also include the conventional layouts
            (row-major always included so the array has a fallback).

    The result is deterministic: locality-derived layouts in nest order
    first, then any standard layouts not already present.
    """
    decl = program.array(array)
    domain: list[Layout] = []

    def push(layout: Layout) -> None:
        if layout not in domain:
            domain.append(layout)

    for nest in program.nests_referencing(array):
        for combo in nest_layout_combos(
            program, nest, include_reversals, skew_factors
        ):
            layout = combo.layout_of(array)
            if layout is not None:
                push(layout)
    if include_standard:
        for layout in standard_layouts(decl.rank):
            push(layout)
    if not domain:
        push(standard_layouts(decl.rank)[0])
    return domain

"""A single hyperplane family ``{d : y . d = c}``.

The vector ``y`` names the *family*; each constant ``c`` picks one
member.  In a row-major 2-D array the family is ``(1 0)`` and the
constant is simply the row number (the paper's Figure 1(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.linalg.vectors import canonical_hyperplane_vector, dot


@dataclass(frozen=True)
class Hyperplane:
    """An integer hyperplane family in canonical (primitive) form.

    Construction canonicalizes: ``Hyperplane((2, -2)) == Hyperplane((1, -1))``.
    """

    vector: tuple[int, ...]

    def __init__(self, vector: Sequence[int]):
        object.__setattr__(
            self, "vector", canonical_hyperplane_vector(tuple(vector))
        )

    @property
    def dimension(self) -> int:
        """Dimensionality of the space the hyperplane lives in."""
        return len(self.vector)

    def constant_for(self, point: Sequence[int]) -> int:
        """The hyperplane constant ``c = y . d`` of the member through ``point``."""
        return dot(self.vector, point)

    def same_hyperplane(self, first: Sequence[int], second: Sequence[int]) -> bool:
        """True iff the two points lie on the same family member.

        This is exactly the paper's membership test
        ``y . d1 == y . d2``.
        """
        return self.constant_for(first) == self.constant_for(second)

    def __str__(self) -> str:
        inner = "  ".join(str(component) for component in self.vector)
        return f"({inner})"

"""Unimodular loop transformation objects.

A transform maps the iteration vector ``I`` to ``I' = T I`` with ``T``
unimodular, so the new execution order is the lexicographic order of
``I'``.  The quantity the layout machinery needs is the *old-space step
of the new innermost loop*: one step of the innermost transformed loop
moves the original iteration vector by the last column of ``T^-1``
(paper, Section 2: interchanging the loops of Figure 2 flips the
preferred layouts of Q1 and Q2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.linalg.matrices import (
    IntMatrix,
    identity_matrix,
    inverse_integer,
    is_unimodular,
    mat_mul,
    mat_vec,
)


@dataclass(frozen=True)
class LoopTransform:
    """A named unimodular loop transformation.

    Attributes:
        name: human-readable label ("identity", "interchange(0,1)", ...).
        matrix: the unimodular matrix ``T``.
        inverse: ``T^-1`` (integer, cached at construction).
    """

    name: str
    matrix: IntMatrix
    inverse: IntMatrix

    @staticmethod
    def create(name: str, matrix: Sequence[Sequence[int]]) -> "LoopTransform":
        """Validate unimodularity and cache the inverse.

        Raises:
            ValueError: when the matrix is not unimodular.
        """
        frozen = tuple(tuple(int(x) for x in row) for row in matrix)
        if not is_unimodular(frozen):
            raise ValueError(f"transform {name} is not unimodular")
        return LoopTransform(name, frozen, inverse_integer(frozen))

    @property
    def depth(self) -> int:
        """Nest depth the transform applies to."""
        return len(self.matrix)

    @property
    def is_identity(self) -> bool:
        """True for the identity transformation."""
        return self.matrix == identity_matrix(self.depth)

    def innermost_direction(self) -> tuple[int, ...]:
        """Old-space step of one iteration of the new innermost loop.

        This is the last column of ``T^-1``: if the transformed vector
        advances by ``e_n``, the original vector advances by
        ``T^-1 e_n``.
        """
        return tuple(row[-1] for row in self.inverse)

    def apply_to_iteration(self, point: Sequence[int]) -> tuple[int, ...]:
        """Map an original iteration point into the transformed space."""
        return mat_vec(self.matrix, point)

    def original_iteration(self, transformed: Sequence[int]) -> tuple[int, ...]:
        """Map a transformed point back to the original space."""
        return mat_vec(self.inverse, transformed)

    def __str__(self) -> str:
        return self.name


def identity_transform(depth: int) -> LoopTransform:
    """The do-nothing transform for a nest of the given depth."""
    return LoopTransform.create("identity", identity_matrix(depth))


def permutation_transform(permutation: Sequence[int]) -> LoopTransform:
    """Permute loops: new loop ``r`` is old loop ``permutation[r]``.

    ``permutation_transform((1, 0))`` is the classic loop interchange.

    Raises:
        ValueError: if ``permutation`` is not a permutation of
            ``0..len-1``.
    """
    depth = len(permutation)
    if sorted(permutation) != list(range(depth)):
        raise ValueError(f"not a permutation: {permutation}")
    matrix = tuple(
        tuple(1 if c == permutation[r] else 0 for c in range(depth))
        for r in range(depth)
    )
    label = ",".join(str(p) for p in permutation)
    name = "identity" if tuple(permutation) == tuple(range(depth)) else f"permute({label})"
    return LoopTransform.create(name, matrix)


def reversal_transform(depth: int, loop: int) -> LoopTransform:
    """Reverse the direction of one loop.

    Raises:
        ValueError: if ``loop`` is out of range.
    """
    if not 0 <= loop < depth:
        raise ValueError(f"loop index {loop} out of range for depth {depth}")
    matrix = [
        [1 if r == c else 0 for c in range(depth)] for r in range(depth)
    ]
    matrix[loop][loop] = -1
    return LoopTransform.create(f"reverse({loop})", matrix)


def skew_transform(depth: int, target: int, source: int, factor: int) -> LoopTransform:
    """Skew loop ``target`` by ``factor`` times loop ``source``.

    Raises:
        ValueError: for out-of-range or equal loop indices.
    """
    if target == source:
        raise ValueError("cannot skew a loop by itself")
    if not (0 <= target < depth and 0 <= source < depth):
        raise ValueError("skew loop index out of range")
    matrix = [
        [1 if r == c else 0 for c in range(depth)] for r in range(depth)
    ]
    matrix[target][source] = factor
    return LoopTransform.create(
        f"skew({target},{source},{factor})", matrix
    )


def compose(outer: LoopTransform, inner: LoopTransform) -> LoopTransform:
    """The transform applying ``inner`` first, then ``outer``.

    Raises:
        ValueError: on depth mismatch.
    """
    if outer.depth != inner.depth:
        raise ValueError("cannot compose transforms of different depths")
    name = f"{outer.name}*{inner.name}"
    return LoopTransform.create(name, mat_mul(outer.matrix, inner.matrix))

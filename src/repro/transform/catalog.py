"""Candidate transform enumeration per nest.

The constraint network needs one "best layout combination" per
candidate loop restructuring (Section 3), so the catalog determines the
size of every constraint.  The default catalog contains all loop
permutations, optionally composed with a reversal of the new innermost
loop, and optionally small skews of the innermost loop -- a superset of
the interchange example the paper walks through for Figure 2.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator

from repro.ir.dependence import analyze_nest_dependences
from repro.ir.loops import LoopNest
from repro.transform.legality import is_legal
from repro.transform.unimodular_loop import (
    LoopTransform,
    compose,
    permutation_transform,
    reversal_transform,
    skew_transform,
)


def candidate_transforms(
    depth: int,
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> list[LoopTransform]:
    """All catalog transforms for a nest depth, identity first.

    Args:
        depth: nesting depth.
        include_reversals: also compose each permutation with a
            reversal of the new innermost loop.
        skew_factors: for each factor ``f``, include a skew of the
            innermost loop by ``f`` times the outermost loop (only for
            depth >= 2).
    """
    result: list[LoopTransform] = []
    seen: set[tuple[tuple[int, ...], ...]] = set()

    def push(transform: LoopTransform) -> None:
        if transform.matrix not in seen:
            seen.add(transform.matrix)
            result.append(transform)

    for order in permutations(range(depth)):
        push(permutation_transform(order))
    if include_reversals:
        for order in permutations(range(depth)):
            base = permutation_transform(order)
            push(compose(reversal_transform(depth, depth - 1), base))
    if depth >= 2:
        # Skew the outermost loop by the innermost one: this changes the
        # old-space step of the new innermost loop (last column of
        # (S P)^-1), producing genuinely new access deltas.  Skewing the
        # innermost loop instead would leave that step unchanged.
        for factor in skew_factors:
            if not factor:
                continue
            skew = skew_transform(depth, 0, depth - 1, factor)
            for order in permutations(range(depth)):
                push(compose(skew, permutation_transform(order)))
    # Keep identity first for deterministic downstream ordering.
    result.sort(key=lambda t: (not t.is_identity,))
    return result


def legal_transforms(
    nest: LoopNest,
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> list[LoopTransform]:
    """The catalog filtered by dependence legality for one nest."""
    info = analyze_nest_dependences(nest)
    return [
        transform
        for transform in candidate_transforms(
            nest.depth, include_reversals, skew_factors
        )
        if is_legal(info, transform)
    ]

"""Candidate transform enumeration per nest.

The constraint network needs one "best layout combination" per
candidate loop restructuring (Section 3), so the catalog determines the
size of every constraint.  The default catalog contains all loop
permutations, optionally composed with a reversal of the new innermost
loop, and optionally small skews of the innermost loop -- a superset of
the interchange example the paper walks through for Figure 2.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator

from repro.ir.dependence import analyze_nest_dependences
from repro.ir.loops import LoopNest
from repro.transform.legality import is_legal
from repro.transform.unimodular_loop import (
    LoopTransform,
    compose,
    permutation_transform,
    reversal_transform,
    skew_transform,
)


#: (depth, include_reversals, skew_factors) -> transform tuple.  The
#: catalog is a pure function of these three scalars and enumerating it
#: means exact rational matrix work per transform, so every nest of the
#: same depth shares one enumeration for the process lifetime (depths
#: are tiny -- the cache cannot grow meaningfully).
_CATALOG_CACHE: dict[tuple, tuple[LoopTransform, ...]] = {}


def candidate_transforms(
    depth: int,
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> list[LoopTransform]:
    """All catalog transforms for a nest depth, identity first.

    Args:
        depth: nesting depth.
        include_reversals: also compose each permutation with a
            reversal of the new innermost loop.
        skew_factors: for each factor ``f``, include a skew of the
            innermost loop by ``f`` times the outermost loop (only for
            depth >= 2).
    """
    key = (depth, include_reversals, tuple(skew_factors))
    cached = _CATALOG_CACHE.get(key)
    if cached is not None:
        return list(cached)
    result: list[LoopTransform] = []
    seen: set[tuple[tuple[int, ...], ...]] = set()

    def push(transform: LoopTransform) -> None:
        if transform.matrix not in seen:
            seen.add(transform.matrix)
            result.append(transform)

    for order in permutations(range(depth)):
        push(permutation_transform(order))
    if include_reversals:
        for order in permutations(range(depth)):
            base = permutation_transform(order)
            push(compose(reversal_transform(depth, depth - 1), base))
    if depth >= 2:
        # Skew the outermost loop by the innermost one: this changes the
        # old-space step of the new innermost loop (last column of
        # (S P)^-1), producing genuinely new access deltas.  Skewing the
        # innermost loop instead would leave that step unchanged.
        for factor in skew_factors:
            if not factor:
                continue
            skew = skew_transform(depth, 0, depth - 1, factor)
            for order in permutations(range(depth)):
                push(compose(skew, permutation_transform(order)))
    # Keep identity first for deterministic downstream ordering.
    result.sort(key=lambda t: (not t.is_identity,))
    _CATALOG_CACHE[key] = tuple(result)
    return result


def legal_transforms(
    nest: LoopNest,
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> list[LoopTransform]:
    """The catalog filtered by dependence legality for one nest.

    Memoized on the (immutable) nest: the dependence analysis and the
    per-transform legality filter run once per nest and catalog
    configuration, however many arrays, schemes or requests ask.
    """
    cache = nest.__dict__.setdefault("_legal_transform_cache", {})
    key = (include_reversals, tuple(skew_factors))
    legal = cache.get(key)
    if legal is None:
        info = analyze_nest_dependences(nest)
        legal = [
            transform
            for transform in candidate_transforms(
                nest.depth, include_reversals, skew_factors
            )
            if is_legal(info, transform)
        ]
        cache[key] = legal
    return list(legal)

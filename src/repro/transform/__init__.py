"""Unimodular loop transformations.

The constraint pairs of Section 3 each correspond to "the best layout
choice under a given loop restructuring", so building the network
requires enumerating candidate restructurings per nest and checking
their legality against data dependences.  The heuristic baseline of [9]
also picks a (transform, layouts) combination per nest.

* :mod:`repro.transform.unimodular_loop` -- transform objects
  (permutations, reversals, skews) with cached inverses.
* :mod:`repro.transform.legality` -- dependence-based legality.
* :mod:`repro.transform.catalog` -- candidate enumeration per nest.
* :mod:`repro.transform.scanning` -- Fourier-Motzkin based scanning of
  a transformed iteration space in its new execution order (used by the
  trace generator when a nest is restructured).
"""

from repro.transform.unimodular_loop import (
    LoopTransform,
    identity_transform,
    permutation_transform,
    reversal_transform,
    skew_transform,
    compose,
)
from repro.transform.legality import is_legal, transformed_distances
from repro.transform.catalog import candidate_transforms, legal_transforms
from repro.transform.scanning import scan_transformed_box, fourier_motzkin_bounds

__all__ = [
    "LoopTransform",
    "identity_transform",
    "permutation_transform",
    "reversal_transform",
    "skew_transform",
    "compose",
    "is_legal",
    "transformed_distances",
    "candidate_transforms",
    "legal_transforms",
    "scan_transformed_box",
    "fourier_motzkin_bounds",
]

"""Scanning a unimodularly transformed iteration space.

After a transform ``I' = T I``, the new execution order is the
lexicographic order of ``I'`` over the image polytope
``{T I : low <= I <= high}``.  To walk that order we need per-level
loop bounds of ``I'``, which we derive with exact Fourier-Motzkin
elimination over the constraint system ``low <= T^-1 I' <= high``.

For permutation transforms this degenerates to permuted box bounds; for
skews it produces the familiar shifted trapezoid bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence

from repro.transform.unimodular_loop import LoopTransform


@dataclass(frozen=True)
class _Inequality:
    """``sum(coeffs . x) <= constant`` over transformed variables."""

    coeffs: tuple[Fraction, ...]
    constant: Fraction


def _box_system(
    transform: LoopTransform, box: Sequence[tuple[int, int]]
) -> list[_Inequality]:
    """Constraints ``low <= T^-1 x' <= high`` as <=-inequalities."""
    depth = transform.depth
    system: list[_Inequality] = []
    for row, (low, high) in zip(transform.inverse, box):
        coeffs = tuple(Fraction(c) for c in row)
        # row . x' <= high
        system.append(_Inequality(coeffs, Fraction(high)))
        # -(row . x') <= -low
        system.append(
            _Inequality(tuple(-c for c in coeffs), Fraction(-low))
        )
    return system


def fourier_motzkin_bounds(
    transform: LoopTransform, box: Sequence[tuple[int, int]]
) -> list[list[_Inequality]]:
    """Per-level constraint systems after eliminating inner variables.

    Returns ``systems`` where ``systems[k]`` constrains variables
    ``x'_0 .. x'_k`` only; scanning instantiates levels outermost-in,
    computing integer bounds for ``x'_k`` from ``systems[k]`` given the
    outer values.
    """
    depth = transform.depth
    systems: list[list[_Inequality]] = [[] for _ in range(depth)]
    current = _box_system(transform, box)
    for level in range(depth - 1, -1, -1):
        # Keep only inequalities mentioning nothing beyond `level`.
        systems[level] = [
            ineq for ineq in current if not any(ineq.coeffs[level + 1:])
        ]
        if level == 0:
            break
        # Eliminate variable `level` to produce the next outer system.
        zero_rows = [ineq for ineq in current if ineq.coeffs[level] == 0]
        upper = [ineq for ineq in current if ineq.coeffs[level] > 0]
        lower = [ineq for ineq in current if ineq.coeffs[level] < 0]
        combined: list[_Inequality] = list(zero_rows)
        for up in upper:
            for lo in lower:
                scale_up = up.coeffs[level]
                scale_lo = -lo.coeffs[level]
                coeffs = tuple(
                    lo_c * scale_up + up_c * scale_lo
                    for lo_c, up_c in zip(lo.coeffs, up.coeffs)
                )
                constant = lo.constant * scale_up + up.constant * scale_lo
                combined.append(_Inequality(coeffs, constant))
        current = combined
    return systems


def _level_bounds(
    system: Sequence[_Inequality], level: int, outer: Sequence[int]
) -> tuple[int, int]:
    """Integer (low, high) bounds for variable ``level`` given outer values.

    Returns an empty range (low > high) when the slice is empty.
    """
    low = -math.inf
    high = math.inf
    for ineq in system:
        coefficient = ineq.coeffs[level]
        rest = ineq.constant - sum(
            c * v for c, v in zip(ineq.coeffs[:level], outer)
        )
        if coefficient == 0:
            if rest < 0:
                return (0, -1)
            continue
        bound = rest / coefficient
        if coefficient > 0:
            high = min(high, math.floor(bound))
        else:
            low = max(low, math.ceil(bound))
    if low == -math.inf or high == math.inf:
        raise ValueError("transformed iteration space is unbounded")
    return (int(low), int(high))


def scan_transformed_box(
    transform: LoopTransform, box: Sequence[tuple[int, int]]
) -> Iterator[tuple[int, ...]]:
    """Yield *original-space* iteration points in transformed order.

    Equivalent to executing the restructured nest: iterates the image
    polytope lexicographically and maps each transformed point back
    through ``T^-1``.  For the identity transform this is plain
    lexicographic box order.
    """
    depth = transform.depth
    systems = fourier_motzkin_bounds(transform, box)

    def recurse(prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        level = len(prefix)
        low, high = _level_bounds(systems[level], level, prefix)
        for value in range(low, high + 1):
            point = prefix + (value,)
            if level == depth - 1:
                yield transform.original_iteration(point)
            else:
                yield from recurse(point)

    yield from recurse(())

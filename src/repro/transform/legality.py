"""Dependence-based legality of loop transformations.

A unimodular transform ``T`` is legal for a nest iff every dependence
distance vector ``d`` remains lexicographically positive after the
transformation (``T d`` lex-positive).  Nests with unknown dependences
(no constant distance vector) admit only the identity.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.dependence import DependenceInfo
from repro.linalg.matrices import mat_vec
from repro.transform.unimodular_loop import LoopTransform


def _lex_positive_or_zero(vector: Sequence[int]) -> bool:
    """True for the zero vector or a lexicographically positive one."""
    for component in vector:
        if component != 0:
            return component > 0
    return True


def transformed_distances(
    info: DependenceInfo, transform: LoopTransform
) -> tuple[tuple[int, ...], ...]:
    """Distance vectors after applying the transform."""
    return tuple(
        mat_vec(transform.matrix, distance)
        for distance in info.distance_vectors()
    )


def _lex_strictly_positive(vector: Sequence[int]) -> bool:
    """True iff the vector is lexicographically > 0."""
    for component in vector:
        if component != 0:
            return component > 0
    return False


def is_legal(info: DependenceInfo, transform: LoopTransform) -> bool:
    """True iff the transform preserves every dependence of the nest.

    Constant distances must stay lexicographically non-negative; rays
    (direction families ``{lambda d : lambda > 0}``) must stay strictly
    lex-positive, which is exact because ``T (lambda d) = lambda (T d)``.
    Unknown dependences make every non-identity transform illegal
    (conservative).
    """
    if transform.is_identity:
        return True
    if info.has_unknown:
        return False
    if not all(
        _lex_positive_or_zero(distance)
        for distance in transformed_distances(info, transform)
    ):
        return False
    return all(
        _lex_strictly_positive(mat_vec(transform.matrix, ray))
        for ray in info.rays()
    )

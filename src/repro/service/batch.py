"""Batch front end: many programs through the portfolio, with a report.

``run_batch`` fans a list of programs across a process pool (each
worker runs the full racing portfolio for its program), consults the
shared result cache in the parent before dispatching and stores fresh
results after, and aggregates everything into a
:class:`BatchReport` -- throughput, latency percentiles, cache service
fraction and the per-scheme win table the CLI prints.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.ir.program import Program
from repro.opt.network_builder import BuildOptions
from repro.service.cache import ResultCache
from repro.service.fingerprint import request_fingerprint
from repro.service.portfolio import PortfolioConfig, PortfolioResult, PortfolioSolver


@dataclass
class BatchReport:
    """Aggregate view of one batch run.

    Attributes:
        results: one :class:`PortfolioResult` per program, input order.
        wall_seconds: end-to-end batch wall-clock time.
        workers: size of the program-level worker pool used.
    """

    results: list[PortfolioResult]
    wall_seconds: float
    workers: int

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.results if result.from_cache)

    @property
    def cached_fraction(self) -> float:
        """Fraction of requests served from cache (0.0 on empty batch)."""
        if not self.results:
            return 0.0
        return self.cache_hits / len(self.results)

    #: Floor for the wall clock in rate computations: a fully-cached
    #: batch can finish inside the clock's resolution, and dividing by
    #: a (near-)zero wall time would report infinite/garbage rates.
    MIN_WALL_SECONDS = 1e-9

    @property
    def throughput(self) -> float:
        """Programs per second (finite even on a zero-length wall clock).

        A fully-cached batch can complete faster than the timer's
        resolution; the wall clock is clamped to
        :data:`MIN_WALL_SECONDS` so the rate stays a finite, positive
        number instead of 0.0 (the old nonsense value: "we served N
        programs at 0/s") or a ``ZeroDivisionError``.
        """
        if not self.results:
            return 0.0
        return len(self.results) / max(self.wall_seconds, self.MIN_WALL_SECONDS)

    def latencies(self) -> list[float]:
        """Per-program solve latencies (non-negative), sorted ascending.

        Sorted once, lazily, on first use (``format()`` asks for three
        percentiles of the same batch); callers get a copy so mutating
        the returned list cannot corrupt later percentile queries.
        """
        return list(self._sorted_latencies())

    def _sorted_latencies(self) -> list[float]:
        cached = getattr(self, "_latency_cache", None)
        if cached is None or len(cached) != len(self.results):
            cached = sorted(
                max(result.solve_seconds, 0.0) for result in self.results
            )
            self._latency_cache = cached
        return cached

    def latency_percentile(self, fraction: float) -> float:
        """The given latency percentile (0.0 on an empty batch).

        ``fraction=0.0`` is the minimum, ``fraction=1.0`` the maximum
        (a single-item batch answers that item for every fraction).

        Raises:
            ValueError: when ``fraction`` is outside [0, 1].
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        latencies = self._sorted_latencies()
        if not latencies:
            return 0.0
        index = min(int(fraction * len(latencies)), len(latencies) - 1)
        return latencies[index]

    def scheme_wins(self) -> dict[str, int]:
        """winner scheme -> number of programs it won."""
        wins: dict[str, int] = {}
        for result in self.results:
            if result.winner is not None:
                wins[result.winner] = wins.get(result.winner, 0) + 1
        return wins

    def format(self) -> str:
        """The human-readable throughput/latency report."""
        lines = ["Throughput report"]
        exact = sum(1 for r in self.results if r.exact)
        lines.append(
            f"  programs: {self.total} ({exact} exact), "
            f"wall {self.wall_seconds:.2f}s, "
            f"{self.throughput:.2f} programs/s, workers={self.workers}"
        )
        latencies = self.latencies()
        if latencies:
            mean = sum(latencies) / len(latencies)
            p50 = self.latency_percentile(0.5)
            lines.append(
                f"  latency: mean {mean * 1000:.1f}ms  p50 {p50 * 1000:.1f}ms  "
                f"max {latencies[-1] * 1000:.1f}ms"
            )
        percent = 100.0 * self.cached_fraction
        lines.append(
            f"  cache: served {self.cache_hits}/{self.total} from cache "
            f"({percent:.1f}%)"
        )
        wins = self.scheme_wins()
        if wins:
            table = "  ".join(
                f"{scheme}={count}"
                for scheme, count in sorted(wins.items(), key=lambda kv: -kv[1])
            )
            lines.append(f"  scheme wins: {table}")
        return "\n".join(lines)


#: Per-process solver reuse: a pool worker serves many map items, so
#: rebuilding the portfolio plumbing per program is pure waste.
_WORKER_SOLVERS: dict[tuple, PortfolioSolver] = {}


def _worker_solver(
    config: PortfolioConfig, options: BuildOptions
) -> PortfolioSolver:
    key = (repr(config), repr(options))
    solver = _WORKER_SOLVERS.get(key)
    if solver is None:
        if len(_WORKER_SOLVERS) >= 8:  # different batches, same process
            _WORKER_SOLVERS.clear()
        solver = PortfolioSolver(config, options=options)
        _WORKER_SOLVERS[key] = solver
    return solver


def _solve_one(
    program: Program,
    config: PortfolioConfig,
    options: BuildOptions,
    fingerprint: str,
) -> dict:
    """Pool worker: race one program, return the serialized result."""
    solver = _worker_solver(config, options)
    return solver.optimize(program, fingerprint=fingerprint).to_dict()


def run_batch(
    programs: Sequence[Program],
    config: PortfolioConfig | None = None,
    options: BuildOptions | None = None,
    cache: ResultCache | None = None,
    workers: int = 1,
    client=None,
) -> BatchReport:
    """Serve a batch of programs and aggregate the outcome.

    Cache lookups and stores happen in the parent (the pool workers are
    stateless), so one shared cache serves the whole batch and repeat
    programs inside a single batch are raced only once.

    Args:
        programs: the request list (order is preserved in the report).
        config: portfolio configuration (defaults races the default
            line-up).
        options: network-construction options shared by every request.
        cache: optional shared result cache.
        workers: program-level process pool size; 1 serves the batch
            in-process (each program still races its schemes in
            parallel when the config says so).
        client: optional :class:`repro.service.stream.DaemonClient`;
            when given, the whole batch is pipelined through the
            resident daemon instead of being solved here, and
            ``config``/``options``/``cache``/``workers`` are the
            *daemon's* concern (the local values are ignored).  Batch
            mode then is a thin client of the same serving loop.

    Raises:
        ValueError: for a non-positive worker count.
        RuntimeError: when the daemon answers a request with an error.
    """
    if client is not None:
        return _run_batch_via_daemon(programs, client)
    if workers < 1:
        raise ValueError("workers must be positive")
    config = config if config is not None else PortfolioConfig()
    options = options if options is not None else BuildOptions()
    token = config.token()
    start = time.perf_counter()

    slots: list[PortfolioResult | None] = [None] * len(programs)
    pending: list[tuple[int, Program, str]] = []
    seen_fingerprints: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []
    for index, program in enumerate(programs):
        fingerprint = request_fingerprint(program, options)
        cached = cache.get(fingerprint, token) if cache is not None else None
        if cached is not None:
            result = PortfolioResult.from_dict(cached, from_cache=True)
            result.program = program.name  # entry may be a renamed twin
            slots[index] = result
            continue
        if fingerprint in seen_fingerprints:
            duplicates.append((index, seen_fingerprints[fingerprint]))
            continue
        seen_fingerprints[fingerprint] = index
        pending.append((index, program, fingerprint))

    if pending:
        if workers == 1 or len(pending) == 1:
            solver = PortfolioSolver(config, options=options)
            fresh = [
                solver.optimize(program, fingerprint=fingerprint)
                for _, program, fingerprint in pending
            ]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                serialized = list(
                    pool.map(
                        _solve_one,
                        [program for _, program, _ in pending],
                        [config] * len(pending),
                        [options] * len(pending),
                        [fingerprint for _, _, fingerprint in pending],
                    )
                )
            fresh = [PortfolioResult.from_dict(data) for data in serialized]
        for (index, _, fingerprint), result in zip(pending, fresh):
            slots[index] = result
            if cache is not None and result.exact:
                # Mirror PortfolioSolver: never freeze a deadline-shaped
                # best-effort answer into the cache.
                cache.put(fingerprint, token, result.to_dict())

    # Duplicate requests inside the batch reuse the first occurrence's
    # result (reported as cache-served: the race ran once).
    for index, source in duplicates:
        original = slots[source]
        assert original is not None
        duplicate = PortfolioResult.from_dict(original.to_dict(), from_cache=True)
        duplicate.program = programs[index].name  # may be a renamed twin
        slots[index] = duplicate

    results = [result for result in slots if result is not None]
    return BatchReport(
        results=results,
        wall_seconds=time.perf_counter() - start,
        workers=workers,
    )


def _run_batch_via_daemon(programs: Sequence[Program], client) -> BatchReport:
    """Pipeline the batch through a resident daemon (thin-client mode)."""
    start = time.perf_counter()
    responses = client.solve_many(programs)
    results: list[PortfolioResult] = []
    for program, response in zip(programs, responses):
        if not response.get("ok"):
            raise RuntimeError(
                f"daemon error for {program.name}: "
                f"{response.get('error', 'unknown error')}"
            )
        result = PortfolioResult.from_dict(
            response["result"], from_cache=bool(response.get("from_cache"))
        )
        result.program = program.name
        results.append(result)
    return BatchReport(
        results=results,
        wall_seconds=time.perf_counter() - start,
        workers=0,  # the daemon's pool did the work, not a local one
    )

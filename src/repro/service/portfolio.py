"""Racing solver portfolio over one constraint network.

No single search scheme dominates: the paper's base scheme is hopeless
on hard networks where the enhanced scheme is instant, min-conflicts is
unbeatable on loose under-constrained networks, and the weighted branch
& bound is the only scheme that returns anything useful on UNSAT
networks.  A *portfolio* runs several schemes on the same network
concurrently (one ``multiprocessing`` process each), takes the first
exact solution, cancels the stragglers, and records a per-scheme
outcome table.  A per-race deadline bounds worst-case latency: when it
expires every straggler is terminated and the best result seen so far
(or the weighted fallback) is returned.

The portfolio composes with :mod:`repro.service.cache`: results are
keyed by the request fingerprint and the portfolio's canonical token,
so repeat programs are served without spawning a single process.

A race compiles the network exactly once (the builder already did, in
fact -- see :meth:`repro.opt.network_builder.LayoutNetwork.kernel`) and
ships the *compiled* form (:class:`repro.csp.compiled.CompiledNetwork`)
to every worker process, so no scheme re-interns values or rebuilds
support structures.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Hashable, Mapping

from repro.csp.compiled import CompiledNetwork
from repro.csp.stats import SolverStats
from repro.csp.vectorized import (
    ENGINE_AUTO,
    ENGINE_NUMPY,
    attach_shared,
    ensure_shared_kernel,
    install_vectorized,
    resolve_engine,
)
from repro.csp.weighted import BranchAndBoundSolver
from repro.ir.program import Program
from repro.layout.layout import Layout, row_major
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import EFFORT_BUCKETS
from repro.opt.network_builder import BuildOptions, LayoutNetwork, build_layout_network
from repro.opt.optimizer import repair_inflation
from repro.opt.passes.base import record_pass_seconds
from repro.service.cache import ResultCache
from repro.service.fingerprint import request_fingerprint

#: Extension point: extra scheme name -> (seed -> solver) factories.
#: Entries registered here (e.g. by tests or experiments) are raced
#: exactly like the built-in schemes.  With the default ``fork`` start
#: method, registrations made before the race are visible to workers.
EXTRA_SCHEMES: dict[str, Callable[[int], object]] = {}

#: Default racing line-up: complementary strengths, no duplicates.
DEFAULT_SCHEMES: tuple[str, ...] = ("enhanced", "cbj", "forward-checking")

#: How long an exited worker's unreported result may stay in flight
#: before the race declares the worker dead (Queue.empty() can be
#: transiently True while the feeder thread is still flushing).
_DEAD_WORKER_GRACE_SECONDS = 0.5


def known_schemes() -> tuple[str, ...]:
    """Every scheme name a portfolio may reference, sorted.

    The ``split:<workers>`` family is open-ended and therefore not
    enumerated here; :func:`split_workers` recognizes its members.
    """
    from repro.opt.optimizer import _SCHEMES

    return tuple(sorted(set(_SCHEMES) | set(EXTRA_SCHEMES)))


def split_workers(scheme: str) -> int | None:
    """Worker count of a ``split:<workers>`` family token (else None).

    Raises:
        ValueError: for a malformed count (``split:`` is the family
            prefix, so a bad suffix is a config error, not an unknown
            scheme).
    """
    if not scheme.startswith("split:"):
        return None
    suffix = scheme.split(":", 1)[1]
    try:
        workers = int(suffix)
    except ValueError:
        raise ValueError(
            f"bad split scheme {scheme!r}: worker count must be an integer"
        ) from None
    if workers <= 0:
        raise ValueError(
            f"bad split scheme {scheme!r}: worker count must be positive"
        )
    return workers


@dataclass(frozen=True)
class PortfolioConfig:
    """What to race and for how long.

    Attributes:
        schemes: scheme names, in priority order (ties in the race are
            broken toward the earlier scheme; sequential mode runs them
            in this order).  Besides the registry names this accepts
            the ``split:<workers>`` family (e.g. ``split:4``): a
            space-splitting parallel search racer
            (:class:`repro.csp.splitsearch.SplitSearchSolver`) with
            that worker count.
        seed: RNG seed handed to every randomized scheme.
        deadline_seconds: per-race wall-clock budget.  The remaining
            budget is also *propagated into* every scheme via its
            cooperative ``set_deadline`` hook (and from there into
            each split subtree), so schemes stop themselves mid-search
            instead of burning the full budget; stragglers that ignore
            the hook are terminated when the deadline expires.
        parallel: race with one process per scheme (True) or run the
            schemes one after another in-process (False; deterministic,
            used by tests and tiny workloads -- between schemes the
            deadline gates whether the next one starts at all).
    """

    schemes: tuple[str, ...] = DEFAULT_SCHEMES
    seed: int = 0
    deadline_seconds: float = 60.0
    parallel: bool = True

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("portfolio needs at least one scheme")
        if len(set(self.schemes)) != len(self.schemes):
            raise ValueError(f"duplicate schemes in portfolio: {self.schemes}")
        known = known_schemes()
        unknown = [
            name
            for name in self.schemes
            if name not in set(known) and split_workers(name) is None
        ]
        if unknown:
            raise ValueError(
                f"unknown portfolio schemes {unknown}; know {known}"
            )
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    @staticmethod
    def parse(spec: str, **overrides) -> "PortfolioConfig":
        """Build from a comma-separated scheme list (CLI syntax).

        Raises:
            ValueError: for duplicate scheme tokens (racing two copies
                of one scheme would burn a process on an identical
                search) and everything the constructor rejects.
        """
        names = tuple(name.strip() for name in spec.split(",") if name.strip())
        seen: set[str] = set()
        duplicates = [name for name in names if name in seen or seen.add(name)]
        if duplicates:
            raise ValueError(
                f"duplicate scheme tokens in {spec!r}: {sorted(set(duplicates))}"
            )
        return PortfolioConfig(schemes=names, **overrides)

    def scheme_seed(self, index: int) -> int:
        """Distinct deterministic RNG seed for the scheme at ``index``.

        Every racer gets its own stream: two randomized schemes racing
        from one seed would take identical tie-breaking decisions (and
        two copies of the *same* randomized scheme would walk in
        lockstep, paying a process for zero diversity).  Index 0 keeps
        the portfolio's base seed, so a single-scheme portfolio is
        bit-compatible with running that scheme directly.
        """
        return self.seed + index

    def token(self) -> str:
        """Canonical cache token (racing nondeterminism excluded).

        Deliberately *excludes* ``parallel`` and the deadline: they
        change how fast an answer arrives, not which answers are
        acceptable, so cached results remain valid across them.  This
        is sound because only *exact* results are ever cached --
        deadline-shaped best-effort results are recomputed.
        """
        return f"portfolio[{','.join(self.schemes)}]seed={self.seed}"


@dataclass(frozen=True)
class SchemeOutcome:
    """One row of the per-scheme outcome table.

    Attributes:
        scheme: scheme name.
        status: "won" (supplied the returned assignment), "solved"
            (found a solution but lost the race), "partial" (weighted
            best-effort, not exact), "unsat" (proved unsatisfiable),
            "gave-up" (incomplete scheme exhausted its budget),
            "cancelled" (terminated because another scheme won),
            "timeout" (terminated by the deadline), "skipped"
            (sequential mode stopped before this scheme), or "error".
        seconds: scheme wall-clock time (0.0 when never started).
        stats: solver effort counters (empty when unavailable).
        detail: human-readable annotation (e.g. the error message).
    """

    scheme: str
    status: str
    seconds: float = 0.0
    stats: dict = field(default_factory=dict)
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "status": self.status,
            "seconds": self.seconds,
            "stats": dict(self.stats),
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "SchemeOutcome":
        return SchemeOutcome(
            scheme=data["scheme"],
            status=data["status"],
            seconds=float(data.get("seconds", 0.0)),
            stats=dict(data.get("stats", {})),
            detail=data.get("detail", ""),
        )


@dataclass
class PortfolioResult:
    """Outcome of one portfolio-served optimization request.

    Attributes:
        program: program name.
        fingerprint: the request fingerprint (cache key half).
        winner: scheme that supplied the layouts (None only when every
            scheme failed *and* the weighted fallback was unavailable).
        layouts: one layout per declared array.
        exact: True when the layouts satisfy every constraint.
        solve_seconds: end-to-end request latency (build + race).
        outcomes: per-scheme outcome table.
        from_cache: True when served from the result cache.
        network: the built network with provenance (None when the
            result came from the cache or crossed a process boundary).
        engine: the propagation engine the race resolved to
            (``"bitset"`` / ``"numpy"`` / ``"native"``; None for
            cached results -- engine choice never changes the answer,
            only its cost).
        kernel_source: how the vectorized planes were obtained
            (``"cached"`` / ``"attached"`` / ``"published"`` /
            ``"local"``; None for cached results and for the bitset
            and native engines -- the native tier shares its compiled
            ``.so`` through the on-disk build cache instead of shared
            memory).  Serving telemetry, not part of the wire form.
    """

    program: str
    fingerprint: str
    winner: str | None
    layouts: dict[str, Layout]
    exact: bool
    solve_seconds: float
    outcomes: tuple[SchemeOutcome, ...]
    from_cache: bool = False
    network: LayoutNetwork | None = None
    engine: str | None = None
    kernel_source: str | None = None

    def winner_stats(self) -> SolverStats:
        """The winning scheme's effort counters (zeros when unknown)."""
        for outcome in self.outcomes:
            if outcome.scheme == self.winner and outcome.stats:
                known = {f for f in SolverStats.__dataclass_fields__}
                return SolverStats(
                    **{k: v for k, v in outcome.stats.items() if k in known}
                )
        return SolverStats()

    def to_dict(self) -> dict:
        """JSON-serializable form (drops the non-serializable network)."""
        return {
            "program": self.program,
            "fingerprint": self.fingerprint,
            "winner": self.winner,
            "exact": self.exact,
            "solve_seconds": self.solve_seconds,
            "layouts": {
                name: {"dimension": layout.dimension, "rows": [list(r) for r in layout.rows]}
                for name, layout in self.layouts.items()
            },
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }

    @staticmethod
    def from_dict(data: Mapping, from_cache: bool = False) -> "PortfolioResult":
        layouts = {
            name: Layout(entry["dimension"], [tuple(r) for r in entry["rows"]])
            for name, entry in data["layouts"].items()
        }
        return PortfolioResult(
            program=data["program"],
            fingerprint=data["fingerprint"],
            winner=data["winner"],
            layouts=layouts,
            exact=bool(data["exact"]),
            solve_seconds=float(data["solve_seconds"]),
            outcomes=tuple(
                SchemeOutcome.from_dict(item) for item in data["outcomes"]
            ),
            from_cache=from_cache,
        )


def _make_solver(scheme: str, seed: int, shared_key: str | None = None):
    """Instantiate a scheme by name (registry, extras, split family)."""
    from repro.opt.optimizer import _SCHEMES

    if scheme in EXTRA_SCHEMES:
        return EXTRA_SCHEMES[scheme](seed)
    workers = split_workers(scheme)
    if workers is not None:
        from repro.csp.splitsearch import SplitSearchSolver

        return SplitSearchSolver(
            seed=seed, workers=workers, shared_key=shared_key
        )
    return _SCHEMES[scheme](seed)


def _solve_scheme(
    scheme: str,
    kernel: CompiledNetwork,
    weights: Mapping[frozenset[str], float] | None,
    seed: int,
    shared_key: str | None = None,
    deadline_at: float | None = None,
) -> dict:
    """Run one scheme to completion; returns a picklable payload.

    Every scheme runs on the *compiled* kernel: the race compiles the
    network exactly once and ships the same kernel to every worker, so
    no scheme pays compilation (or, with ``fork``, even a copy).  When
    the parent published the vectorized planes (``shared_key``), a
    worker that received a plane-less kernel (``spawn`` pickling)
    attaches the shared segment instead of rebuilding them.

    ``deadline_at`` is the race's absolute ``time.monotonic`` expiry:
    schemes with a cooperative ``set_deadline`` hook get the remaining
    budget so they stop mid-search instead of waiting to be killed
    (CLOCK_MONOTONIC is system-wide, so the absolute stamp survives
    the fork into a racer process).
    """
    start = time.perf_counter()
    if (
        shared_key is not None
        and getattr(kernel, "_vector_cache", None) is None
        and resolve_engine(ENGINE_AUTO, kernel) == ENGINE_NUMPY
    ):
        attached = attach_shared(shared_key)
        if attached is not None:
            install_vectorized(kernel, attached)
    solver = _make_solver(scheme, seed, shared_key)
    if deadline_at is not None and hasattr(solver, "set_deadline"):
        solver.set_deadline(deadline_at - time.monotonic())
    try:
        if isinstance(solver, BranchAndBoundSolver):
            weighted_result = solver.solve_compiled(kernel, weights)
            return {
                "assignment": dict(weighted_result.assignment),
                "sat": True,
                "exact": weighted_result.fully_satisfied,
                "complete": True,
                "stats": weighted_result.stats.as_dict(),
                "seconds": time.perf_counter() - start,
            }
        result = solver.solve(kernel)
        return {
            "assignment": dict(result.assignment) if result.assignment else None,
            "sat": result.satisfiable,
            "exact": result.satisfiable,
            "complete": result.complete,
            "stats": result.stats.as_dict(),
            "seconds": time.perf_counter() - start,
        }
    finally:
        close = getattr(solver, "close", None)
        if callable(close):  # split solvers own a worker pool
            close()


def _race_worker(
    result_queue, scheme, kernel, weights, seed, shared_key, deadline_at=None
) -> None:
    """Process entry point: solve and report (never raises)."""
    try:
        payload = _solve_scheme(
            scheme, kernel, weights, seed, shared_key, deadline_at
        )
        result_queue.put((scheme, payload, None))
    except BaseException as exc:  # report, don't die silently
        result_queue.put((scheme, None, repr(exc)))


def _payload_status(payload: dict) -> str:
    """Outcome status of a finished, non-winning scheme."""
    if payload["sat"]:
        return "solved" if payload["exact"] else "partial"
    return "unsat" if payload["complete"] else "gave-up"


class PortfolioSolver:
    """Serve layout-optimization requests through a racing portfolio.

    Args:
        config: which schemes to race and the per-race deadline.
        options: network-construction options (benchmark defaults when
            omitted must be supplied by the caller explicitly).
        cache: optional result cache consulted before and updated after
            every race.
        network_cache: optional mutable mapping ``fingerprint ->
            LayoutNetwork``.  A resident process (the daemon's warm
            workers) hands every solver in the process one shared
            bounded mapping, so repeat cache *misses* -- non-exact
            retries, evaluate sweeps over many machine models -- skip
            the network build and reuse the already-compiled kernel.
        shared_kernels: publish/attach the vectorized numpy planes via
            ``multiprocessing.shared_memory`` keyed by the request
            fingerprint, so sibling worker processes serving the same
            network map one kernel zero-copy instead of each
            rebuilding it.  Off by default: segment lifetime needs an
            owner (the daemon unlinks the segments it saw at
            shutdown), so only resident deployments should turn it on.
    """

    def __init__(
        self,
        config: PortfolioConfig | None = None,
        options: BuildOptions | None = None,
        cache: ResultCache | None = None,
        network_cache=None,
        shared_kernels: bool = False,
    ):
        self._config = config if config is not None else PortfolioConfig()
        self._options = options if options is not None else BuildOptions()
        self._cache = cache
        self._network_cache = network_cache
        self._shared_kernels = shared_kernels
        #: Set per optimize() call: the fingerprint under which the
        #: current race's vectorized kernel is published (None when
        #: sharing is off or the bitset engine is serving).
        self._race_shared_key: str | None = None

    @property
    def config(self) -> PortfolioConfig:
        return self._config

    def optimize(
        self, program: Program, fingerprint: str | None = None
    ) -> PortfolioResult:
        """Serve one request: cache lookup, else race, then cache store.

        ``fingerprint`` lets batch callers that already fingerprinted
        the request (for dedup) skip the recomputation.
        """
        if fingerprint is None:
            fingerprint = request_fingerprint(program, self._options)
        token = self._config.token()
        if self._cache is not None:
            with obs_trace.span("cache_lookup"):
                cached = self._cache.get(fingerprint, token)
            if cached is not None:
                obs_metrics.counter(
                    "repro_portfolio_requests_total",
                    labels={"source": "cache"},
                    help="Portfolio requests by serving source.",
                )
                result = PortfolioResult.from_dict(cached, from_cache=True)
                # The fingerprint excludes the program *name*, so the
                # entry may come from a renamed twin: report the
                # requester's name, not the original's.
                result.program = program.name
                return result

        obs_metrics.counter(
            "repro_portfolio_requests_total",
            labels={"source": "race"},
            help="Portfolio requests by serving source.",
        )
        start = time.perf_counter()
        layout_network = None
        if self._network_cache is not None:
            layout_network = self._network_cache.get(fingerprint)
        if layout_network is None:
            with obs_trace.span("build_network"):
                layout_network = build_layout_network(program, self._options)
            if self._network_cache is not None:
                self._network_cache[fingerprint] = layout_network
        with obs_trace.span("compile_kernel"):
            kernel = layout_network.kernel()
        # Per-pass timing, same vocabulary the pipeline runner uses, so
        # daemon ``stats`` shows one per-pass breakdown no matter which
        # path (pipeline façade or direct portfolio) served the solve.
        record_pass_seconds("build", time.perf_counter() - start)
        engine = resolve_engine(ENGINE_AUTO, kernel)
        kernel_source = None
        self._race_shared_key = None
        if engine == ENGINE_NUMPY and self._shared_kernels:
            # Map (or publish) the vectorized planes in shared memory
            # so every process serving this fingerprint -- sibling
            # pool workers, racing scheme children -- shares one copy.
            kernel_source = ensure_shared_kernel(kernel, fingerprint)
            self._race_shared_key = fingerprint
        elif engine == ENGINE_NUMPY:
            kernel_source = "local"
        if kernel_source is not None:
            obs_metrics.counter(
                "repro_shared_kernel_events_total",
                labels={"event": kernel_source},
                help="Vectorized-kernel acquisition events by kind.",
            )
        mode = (
            "parallel"
            if self._config.parallel and len(self._config.schemes) > 1
            else "sequential"
        )
        race_start = time.perf_counter()
        with obs_trace.span("race", mode=mode, engine=engine) as race_span:
            winner, exact, assignment, outcomes = self._race(
                kernel, layout_network.weights
            )
        race_seconds = time.perf_counter() - race_start
        if assignment is None:
            # Nothing came back (all errors/timeouts): fall back to the
            # weighted branch & bound in-process, like LayoutOptimizer
            # does for UNSAT networks -- a best-effort answer always
            # beats none.
            with obs_trace.span("weighted_fallback"):
                weighted_result = BranchAndBoundSolver().solve_compiled(
                    layout_network.kernel(), layout_network.weights
                )
            assignment = dict(weighted_result.assignment)
            exact = weighted_result.fully_satisfied
            winner = "weighted-fallback"
            outcomes += (
                SchemeOutcome(
                    scheme="weighted-fallback",
                    status="won",
                    seconds=weighted_result.stats.time_seconds,
                    stats=weighted_result.stats.as_dict(),
                ),
            )
        self._record_race(race_span, engine, mode, winner, outcomes, race_seconds)
        record_pass_seconds("solve", time.perf_counter() - race_start)
        if exact:
            repair_start = time.perf_counter()
            with obs_trace.span("repair_inflation"):
                repair_inflation(layout_network.network, assignment, program)
            record_pass_seconds("repair", time.perf_counter() - repair_start)

        layouts: dict[str, Layout] = {}
        for decl in program.arrays:
            chosen = assignment.get(decl.name)
            layouts[decl.name] = (
                chosen if chosen is not None else row_major(decl.rank)
            )
        result = PortfolioResult(
            program=program.name,
            fingerprint=fingerprint,
            winner=winner,
            layouts=layouts,
            exact=exact,
            solve_seconds=time.perf_counter() - start,
            outcomes=outcomes,
            network=layout_network,
            engine=engine,
            kernel_source=kernel_source,
        )
        if self._cache is not None and result.exact:
            # Non-exact results are deadline- (and luck-) shaped: a
            # retry with a longer deadline could find an exact
            # solution, so caching them would freeze a bad answer.
            self._cache.put(fingerprint, token, result.to_dict())
        return result

    def _record_race(
        self,
        race_span,
        engine: str,
        mode: str,
        winner: str | None,
        outcomes: tuple[SchemeOutcome, ...],
        race_seconds: float,
    ) -> None:
        """Fold one finished race into the telemetry layer.

        Per-scheme race spans are *synthesized in the parent* from the
        outcome table: parallel racers are separate short-lived
        processes whose in-process telemetry dies with them, but their
        wall-clock and effort counters come home in the table.  Each
        synthesized span starts at the race's own start (all racers
        launch together) and lasts the scheme's reported seconds.
        """
        obs_metrics.observe(
            "repro_portfolio_race_seconds",
            race_seconds,
            labels={"mode": mode},
            help="Wall-clock seconds per portfolio race.",
        )
        obs_metrics.counter(
            "repro_portfolio_wins_total",
            labels={"scheme": winner if winner is not None else "none"},
            help="Races won, by scheme (weighted-fallback included).",
        )
        race_span.set_attribute("winner", winner)
        for outcome in outcomes:
            obs_metrics.counter(
                "repro_portfolio_scheme_outcomes_total",
                labels={"scheme": outcome.scheme, "status": outcome.status},
                help="Per-scheme race outcome table, folded over time.",
            )
            for counter_name in ("nodes", "consistency_checks"):
                effort = outcome.stats.get(counter_name)
                if effort:
                    obs_metrics.observe(
                        "repro_engine_effort",
                        float(effort),
                        labels={"engine": engine, "counter": counter_name},
                        help="Machine-independent solver effort per engine.",
                        bounds=EFFORT_BUCKETS,
                    )
            if race_span and (outcome.seconds or outcome.status == "won"):
                synthesized = race_span.child(
                    f"scheme:{outcome.scheme}",
                    scheme=outcome.scheme,
                    status=outcome.status,
                    won=(outcome.scheme == winner),
                )
                synthesized.start_ns = race_span.start_ns
                synthesized.end_ns = synthesized.start_ns + int(
                    outcome.seconds * 1e9
                )

    # -- the race --------------------------------------------------------

    def _race(
        self,
        kernel: CompiledNetwork,
        weights: Mapping[frozenset[str], float] | None,
    ) -> tuple[str | None, bool, dict | None, tuple[SchemeOutcome, ...]]:
        """Run every scheme, return (winner, exact, assignment, table).

        The kernel is compiled exactly once (by the network builder);
        both race modes hand the same compiled form to every scheme.
        """
        if not self._config.parallel or len(self._config.schemes) == 1:
            return self._run_sequential(kernel, weights)
        return self._run_parallel(kernel, weights, self._race_shared_key)

    def _run_sequential(
        self, kernel, weights
    ) -> tuple[str | None, bool, dict | None, tuple[SchemeOutcome, ...]]:
        deadline = time.perf_counter() + self._config.deadline_seconds
        deadline_at = time.monotonic() + self._config.deadline_seconds
        outcomes: list[SchemeOutcome] = []
        fallback: tuple[str, dict] | None = None
        winner: tuple[str, dict] | None = None
        for index, scheme in enumerate(self._config.schemes):
            if winner is not None or time.perf_counter() >= deadline:
                status = "skipped" if winner is not None else "timeout"
                outcomes.extend(
                    SchemeOutcome(scheme=name, status=status)
                    for name in self._config.schemes[index:]
                )
                break
            try:
                payload = _solve_scheme(
                    scheme,
                    kernel,
                    weights,
                    self._config.scheme_seed(index),
                    deadline_at=deadline_at,
                )
            except Exception as exc:
                outcomes.append(
                    SchemeOutcome(scheme=scheme, status="error", detail=repr(exc))
                )
                continue
            if payload["sat"] and payload["exact"]:
                winner = (scheme, payload)
                outcomes.append(
                    SchemeOutcome(
                        scheme=scheme,
                        status="won",
                        seconds=payload["seconds"],
                        stats=payload["stats"],
                    )
                )
                continue
            if payload["sat"] and fallback is None:
                fallback = (scheme, payload)
            outcomes.append(
                SchemeOutcome(
                    scheme=scheme,
                    status=_payload_status(payload),
                    seconds=payload["seconds"],
                    stats=payload["stats"],
                )
            )
        return self._conclude(winner, fallback, outcomes)

    def _run_parallel(
        self, kernel, weights, shared_key=None
    ) -> tuple[str | None, bool, dict | None, tuple[SchemeOutcome, ...]]:
        context = _context()
        result_queue = context.Queue()
        deadline = time.perf_counter() + self._config.deadline_seconds
        deadline_at = time.monotonic() + self._config.deadline_seconds
        processes: dict[str, multiprocessing.Process] = {}
        for index, scheme in enumerate(self._config.schemes):
            process = context.Process(
                target=_race_worker,
                args=(
                    result_queue,
                    scheme,
                    kernel,
                    weights,
                    self._config.scheme_seed(index),
                    shared_key,
                    deadline_at,
                ),
                daemon=True,
            )
            processes[scheme] = process
            process.start()

        pending = set(processes)
        finished: dict[str, SchemeOutcome] = {}
        suspect_since: dict[str, float] = {}
        winner: tuple[str, dict] | None = None
        fallback: tuple[str, dict] | None = None
        timed_out = False
        while pending:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                timed_out = True
                break
            try:
                scheme, payload, error = result_queue.get(
                    timeout=min(0.1, remaining)
                )
            except queue_module.Empty:
                # A worker that died without reporting (e.g. OOM-killed)
                # would otherwise hang the race until the deadline.  An
                # *exited* worker's result may still be in flight in the
                # queue's feeder pipe, so give it a grace period before
                # declaring it dead instead of trusting Queue.empty().
                now = time.perf_counter()
                for scheme in list(pending):
                    process = processes[scheme]
                    if process.is_alive():
                        suspect_since.pop(scheme, None)
                        continue
                    first_seen = suspect_since.setdefault(scheme, now)
                    if now - first_seen < _DEAD_WORKER_GRACE_SECONDS:
                        continue
                    pending.discard(scheme)
                    finished[scheme] = SchemeOutcome(
                        scheme=scheme,
                        status="error",
                        detail=f"worker died (exitcode {process.exitcode})",
                    )
                continue
            pending.discard(scheme)
            if error is not None:
                finished[scheme] = SchemeOutcome(
                    scheme=scheme, status="error", detail=error
                )
                continue
            if payload["sat"] and payload["exact"] and winner is None:
                winner = (scheme, payload)
                finished[scheme] = SchemeOutcome(
                    scheme=scheme,
                    status="won",
                    seconds=payload["seconds"],
                    stats=payload["stats"],
                )
                break  # first winner: stop listening, cancel the rest
            if payload["sat"] and fallback is None:
                fallback = (scheme, payload)
            finished[scheme] = SchemeOutcome(
                scheme=scheme,
                status=_payload_status(payload),
                seconds=payload["seconds"],
                stats=payload["stats"],
            )

        # Graceful cancellation of every straggler.
        straggler_status = "timeout" if timed_out and winner is None else "cancelled"
        for scheme in pending:
            finished.setdefault(
                scheme, SchemeOutcome(scheme=scheme, status=straggler_status)
            )
        for process in processes.values():
            if process.is_alive():
                process.terminate()
        for process in processes.values():
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)
        result_queue.close()
        result_queue.cancel_join_thread()

        outcomes = [finished[s] for s in self._config.schemes if s in finished]
        return self._conclude(winner, fallback, outcomes)

    @staticmethod
    def _conclude(
        winner: tuple[str, dict] | None,
        fallback: tuple[str, dict] | None,
        outcomes: list[SchemeOutcome] | tuple[SchemeOutcome, ...],
    ) -> tuple[str | None, bool, dict | None, tuple[SchemeOutcome, ...]]:
        outcomes = tuple(outcomes)
        if winner is not None:
            scheme, payload = winner
            return scheme, True, payload["assignment"], outcomes
        if fallback is not None:
            scheme, payload = fallback
            # Promote the best-effort result to winner in the table.
            outcomes = tuple(
                replace(o, status="won") if o.scheme == scheme else o
                for o in outcomes
            )
            return scheme, bool(payload["exact"]), payload["assignment"], outcomes
        return None, False, None, outcomes


def _context():
    """The multiprocessing context for races.

    ``fork`` keeps worker startup cheap and lets in-process scheme
    registrations (:data:`EXTRA_SCHEMES`) reach the workers; platforms
    without it fall back to the default (spawn) context.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()

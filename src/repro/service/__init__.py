"""The layout solver *service* layer: batched, parallel, cached.

The core library answers one request at a time with one hand-picked
scheme; this package turns it into a serving stack:

* :mod:`repro.service.fingerprint` -- canonical, order-independent
  fingerprints for programs, constraint networks and configurations
  (stable across processes: cache keys).
* :mod:`repro.service.cache` -- an in-memory LRU result cache with
  optional JSON persistence and hit/miss statistics.
* :mod:`repro.service.portfolio` -- several solver schemes raced
  concurrently per request (first exact winner takes it, stragglers
  are cancelled, deadlines bound the worst case), with a per-scheme
  outcome table.
* :mod:`repro.service.batch` -- many programs fanned across a worker
  pool, producing a throughput/latency report.
* :mod:`repro.service.evaluate` -- the ``evaluate`` request kind:
  price a program's layouts under any registered cost model with
  per-request cache-hierarchy overrides (one deployment, many
  machine models).
* :mod:`repro.service.daemon` -- the resident solver daemon: an async
  streaming loop over a persistent warm worker pool, fronted by a
  *sharded* persistent result cache with backpressure.
* :mod:`repro.service.stream` -- the daemon's JSON-lines wire protocol
  and the synchronous pipelining :class:`DaemonClient` (with
  client-side consistent-hash routing when given several addresses).
* :mod:`repro.service.routing` -- the consistent-hash ring mapping
  request fingerprints to cluster members, plus the member-address
  vocabulary shared by clients, routers and daemons.
* :mod:`repro.service.cluster` -- the scale-out tier: N daemon
  members behind a fingerprint-routing :class:`ClusterRouter` with
  cache peering, failover and cluster-wide stats/metrics roll-up.
* :mod:`repro.service.cli` -- the ``python -m repro.service`` front
  end tying it all together (``--serve`` / ``--serve-cluster`` /
  ``--connect`` for the daemon and cluster).
"""

from repro.service.batch import BatchReport, run_batch
from repro.service.cache import CacheStats, ResultCache, ShardedResultCache
from repro.service.cluster import ClusterConfig, ClusterRouter
from repro.service.daemon import DaemonConfig, SolverDaemon
from repro.service.evaluate import (
    EvaluationRequest,
    EvaluationResult,
    EvaluationService,
    parse_hierarchy_overrides,
    run_evaluation_batch,
)
from repro.service.fingerprint import (
    canonical_value_token,
    network_fingerprint,
    program_fingerprint,
    request_fingerprint,
)
from repro.service.portfolio import (
    DEFAULT_SCHEMES,
    PortfolioConfig,
    PortfolioResult,
    PortfolioSolver,
    SchemeOutcome,
    known_schemes,
)
from repro.service.routing import HashRing
from repro.service.stream import DaemonClient, ProtocolError

__all__ = [
    "BatchReport",
    "run_batch",
    "CacheStats",
    "ResultCache",
    "ShardedResultCache",
    "ClusterConfig",
    "ClusterRouter",
    "HashRing",
    "DaemonConfig",
    "SolverDaemon",
    "DaemonClient",
    "ProtocolError",
    "EvaluationRequest",
    "EvaluationResult",
    "EvaluationService",
    "parse_hierarchy_overrides",
    "run_evaluation_batch",
    "canonical_value_token",
    "network_fingerprint",
    "program_fingerprint",
    "request_fingerprint",
    "DEFAULT_SCHEMES",
    "PortfolioConfig",
    "PortfolioResult",
    "PortfolioSolver",
    "SchemeOutcome",
    "known_schemes",
]

"""Consistent-hash routing of request fingerprints to cluster members.

One daemon on one host is a ceiling; the cluster tier
(:mod:`repro.service.cluster`) runs N :class:`SolverDaemon` members and
routes every request by its canonical fingerprint so each
fingerprint's result-cache entry, network memo, and shared-memory
kernel segment lives on exactly one owner.  The routing primitive is
the classic consistent-hash ring:

* every member contributes ``virtual_nodes`` points on a 64-bit ring
  (SHA-256 of ``"{member}#{index}"``), so load spreads evenly and
  adding or removing one member only moves the keys that member owns
  (about ``1/N`` of them) -- warm caches on the surviving members stay
  warm;
* a fingerprint maps to the first member point at or after its own
  hash (wrapping), and :meth:`HashRing.preference` continues around
  the ring to name the failover replicas, so every router, client and
  member computes the *same* owner and the same fallback order from
  nothing but the member list.

Determinism is the contract: the ring sorts its member list, so two
processes configured with the same members in any order route every
fingerprint identically (``tests/service/test_routing.py`` pins this
with a hypothesis property, plus the <= 2/N rebalance bound).

Member addresses are strings: a unix-socket path (anything with a
``/``, or no ``:``) or a TCP ``host:port``.  :func:`parse_address`,
:func:`connect_address` and :func:`open_address` give the sync and
asyncio halves of the stack one address vocabulary.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import os
import socket
import stat
from bisect import bisect_right

__all__ = [
    "DEFAULT_VIRTUAL_NODES",
    "HashRing",
    "connect_address",
    "format_address",
    "open_address",
    "parse_address",
    "reclaim_stale_socket",
]

#: Ring points per member.  High enough that each member's share of a
#: uniform key population concentrates tightly around 1/N (the
#: rebalance property test relies on this), low enough that ring
#: construction stays microseconds.
DEFAULT_VIRTUAL_NODES = 128


def _point(token: str) -> int:
    """A 64-bit ring position for a token (member#index or a key)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over cluster member addresses.

    Args:
        members: member address strings; order and duplicates are
            irrelevant (the ring canonicalizes), so every process in a
            cluster builds an identical ring from its own config.
        virtual_nodes: ring points per member.

    The ring is immutable; membership changes build a new ring (they
    are rare -- a config change -- while lookups are per-request).
    """

    def __init__(self, members, virtual_nodes: int = DEFAULT_VIRTUAL_NODES):
        canonical = tuple(sorted(set(members)))
        if not canonical:
            raise ValueError("hash ring needs at least one member")
        if any(not member for member in canonical):
            raise ValueError("member addresses must be non-empty strings")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        self._members = canonical
        self._virtual_nodes = virtual_nodes
        points = sorted(
            (_point(f"{member}#{index}"), member)
            for member in canonical
            for index in range(virtual_nodes)
        )
        self._points = points
        self._hashes = [position for position, _ in points]

    @property
    def members(self) -> tuple[str, ...]:
        """Canonical (sorted) member list."""
        return self._members

    @property
    def virtual_nodes(self) -> int:
        return self._virtual_nodes

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in set(self._members)

    def owner(self, key: str) -> str:
        """The member owning a fingerprint (first point clockwise)."""
        # "key:" namespaces key hashes away from member-point tokens.
        index = bisect_right(self._hashes, _point(f"key:{key}"))
        return self._points[index % len(self._points)][1]

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """Owner plus failover replicas, in deterministic ring order.

        Walks clockwise from the key's position collecting *distinct*
        members; the first entry is :meth:`owner`, the rest are the
        replicas a router fails over to, in the order every other
        process would pick them too.
        """
        want = len(self._members) if count is None else max(1, count)
        want = min(want, len(self._members))
        start = bisect_right(self._hashes, _point(f"key:{key}"))
        chosen: list[str] = []
        seen: set[str] = set()
        total = len(self._points)
        for step in range(total):
            member = self._points[(start + step) % total][1]
            if member not in seen:
                seen.add(member)
                chosen.append(member)
                if len(chosen) == want:
                    break
        return chosen

    def with_member(self, member: str) -> "HashRing":
        """A new ring with one member added."""
        return HashRing(self._members + (member,), self._virtual_nodes)

    def without_member(self, member: str) -> "HashRing":
        """A new ring with one member removed."""
        remaining = tuple(m for m in self._members if m != member)
        return HashRing(remaining, self._virtual_nodes)


# -- member addresses ----------------------------------------------------


def parse_address(address: str):
    """Classify a member address.

    Returns:
        ``("unix", path)`` for unix-socket paths (anything containing
        a path separator, or without a colon), or ``("tcp", host,
        port)`` for ``host:port`` strings.

    Raises:
        ValueError: for empty addresses or non-numeric TCP ports.
    """
    if not address:
        raise ValueError("empty member address")
    if os.sep in address or ":" not in address:
        return ("unix", address)
    host, _, port_text = address.rpartition(":")
    if not host:
        raise ValueError(f"malformed TCP address {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"malformed TCP address {address!r}: port {port_text!r} "
            "is not an integer"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"TCP port out of range in {address!r}")
    return ("tcp", host, port)


def format_address(kind_tuple) -> str:
    """Inverse of :func:`parse_address` (for logs and hellos)."""
    if kind_tuple[0] == "unix":
        return kind_tuple[1]
    return f"{kind_tuple[1]}:{kind_tuple[2]}"


def connect_address(address: str, timeout: float | None = None) -> socket.socket:
    """Open a blocking client socket to a member address."""
    parsed = parse_address(address)
    if parsed[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(parsed[1])
        return sock
    sock = socket.create_connection((parsed[1], parsed[2]), timeout=timeout)
    sock.settimeout(timeout)
    return sock


async def open_address(address: str):
    """Open an asyncio ``(reader, writer)`` pair to a member address."""
    parsed = parse_address(address)
    if parsed[0] == "unix":
        return await asyncio.open_unix_connection(parsed[1])
    return await asyncio.open_connection(parsed[1], parsed[2])


def reclaim_stale_socket(path: str) -> None:
    """Remove a unix socket file only if no live daemon holds it.

    A daemon killed with SIGKILL leaves its socket file behind; a
    blind ``unlink`` on startup would also happily sever a *running*
    daemon from its clients.  Probe first: if something accepts a
    connection on the path the socket is live and binding must fail;
    if the connection is refused the file is stale and safe to remove.
    Non-socket files are never touched.

    Raises:
        OSError: when a live daemon already serves the path, or the
            path exists but is not a socket.
    """
    try:
        mode = os.stat(path).st_mode
    except FileNotFoundError:
        return
    if not stat.S_ISSOCK(mode):
        raise OSError(
            f"refusing to reclaim {path}: exists but is not a socket"
        )
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(path)
    except (ConnectionRefusedError, socket.timeout, TimeoutError):
        # Nothing is accepting: a stale file from an abnormal shutdown.
        with contextlib.suppress(OSError):
            os.unlink(path)
    except FileNotFoundError:
        pass  # raced with another reclaimer; the bind will tell
    else:
        raise OSError(
            f"socket {path} is held by a live daemon; "
            "refusing to unlink it"
        )
    finally:
        probe.close()

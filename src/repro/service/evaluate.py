"""The service's ``evaluate`` request kind.

The portfolio answers "what layouts should this program use?"; an
evaluation request answers "what would these layouts *cost*?" -- on a
per-request machine model, so one deployment prices the same program
for many cache geometries.  A request without explicit layouts first
runs the optimizing portfolio (racing, cached) and then prices the
winner, which is how batch callers close the analytic <-> empirical
loop remotely.

Results are cached alongside optimization results in the same
:class:`~repro.service.cache.ResultCache`, keyed by the request
fingerprint plus an evaluation token that folds in the cost model,
the hierarchy fingerprint and (when given) the explicit layouts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Mapping, Sequence

from repro.cachesim.hierarchy import HierarchyConfig
from repro.eval import get_cost_model
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.opt.network_builder import BuildOptions
from repro.opt.optimizer import select_transforms
from repro.opt.passes.base import record_pass_seconds
from repro.service.cache import ResultCache
from repro.service.fingerprint import (
    canonical_value_token,
    request_fingerprint,
)
from repro.service.portfolio import PortfolioConfig, PortfolioSolver


def hierarchy_from_overrides(overrides: Mapping[str, int]) -> HierarchyConfig:
    """A :class:`HierarchyConfig` with the named fields replaced.

    This is the wire form the daemon protocol ships (``"hierarchy":
    {"l1_size": 16384, ...}``); unknown fields and non-integer values
    raise rather than being silently dropped.

    Raises:
        ValueError: for unknown fields, bad integers, or geometry the
            config itself rejects.
    """
    known = {f.name for f in dataclass_fields(HierarchyConfig)}
    cleaned: dict[str, int] = {}
    for name, value in overrides.items():
        if name not in known:
            raise ValueError(
                f"unknown hierarchy field {name!r}; know {sorted(known)}"
            )
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"hierarchy field {name} needs an integer, got {value!r}"
            )
        cleaned[name] = value
    return replace(HierarchyConfig(), **cleaned)


def parse_hierarchy_overrides(spec: str) -> HierarchyConfig:
    """Parse CLI-style per-request hierarchy overrides.

    ``"l1_size=16384,l2_latency=9"`` replaces the named fields of the
    paper's default :class:`HierarchyConfig`; unknown fields and
    malformed values raise.

    Raises:
        ValueError: for unknown fields, bad integers, or geometry the
            config itself rejects.
    """
    known = {f.name for f in dataclass_fields(HierarchyConfig)}
    overrides: dict[str, int] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, raw = item.partition("=")
        name = name.strip()
        if name not in known:
            raise ValueError(
                f"unknown hierarchy field {name!r}; know {sorted(known)}"
            )
        try:
            overrides[name] = int(raw.strip())
        except ValueError:
            raise ValueError(f"hierarchy field {name} needs an integer, got {raw!r}")
    return hierarchy_from_overrides(overrides)


@dataclass(frozen=True)
class EvaluationRequest:
    """One evaluation request.

    Attributes:
        program: the program to price.
        cost_model: registered cost-model name.
        hierarchy: per-request machine model (None = the paper's).
            Used by the ``simulated`` model (geometry + latencies) and
            the ``analytic`` model (its L1 line size prices spatial
            locality); the ``weighted`` model has no machine notion,
            so combining it with an override is rejected rather than
            silently ignored.
        layouts: explicit layouts to price; None prices the layouts
            the optimizing portfolio chooses for the program.
        max_iterations_per_nest: iteration-space sampling cap for the
            simulated model (None = exact).

    Raises:
        ValueError: for a non-positive sampling cap, or a hierarchy
            override on a model that cannot honor it.
    """

    program: Program
    cost_model: str = "simulated"
    hierarchy: HierarchyConfig | None = None
    layouts: Mapping[str, Layout] | None = None
    max_iterations_per_nest: int | None = None

    def __post_init__(self) -> None:
        if self.max_iterations_per_nest is not None:
            if self.max_iterations_per_nest <= 0:
                raise ValueError("max_iterations_per_nest must be positive")
            if self.cost_model != "simulated":
                raise ValueError(
                    f"cost model {self.cost_model!r} does not simulate; "
                    "drop the iteration-sampling cap"
                )
        if self.hierarchy is not None and not self.uses_hierarchy:
            raise ValueError(
                f"cost model {self.cost_model!r} does not use a cache "
                "hierarchy; drop the hierarchy override"
            )

    @property
    def uses_hierarchy(self) -> bool:
        """True when the model's score depends on the machine model."""
        return self.cost_model in ("simulated", "analytic")

    def token(self, portfolio_token: str) -> str:
        """Canonical cache token of everything but the program."""
        if self.uses_hierarchy:
            hierarchy = (
                self.hierarchy if self.hierarchy is not None else HierarchyConfig()
            )
            hierarchy_token = hierarchy.fingerprint()
        else:
            hierarchy_token = "hier=n/a"
        if self.layouts is None:
            layouts_token = f"opt:{portfolio_token}"
        else:
            layouts_token = ";".join(
                f"{name}={canonical_value_token(layout)}"
                for name, layout in sorted(self.layouts.items())
            )
        cap = self.max_iterations_per_nest
        return (
            f"evaluate[{self.cost_model}]{hierarchy_token}"
            f"cap={cap}layouts[{layouts_token}]"
        )


@dataclass
class EvaluationResult:
    """Outcome of one evaluation request.

    Attributes:
        program: program name.
        cost_model: model that produced the score.
        value: the score (lower is better).
        unit: the score's unit.
        details: model-specific breakdown (cache report and hit rates
            for the simulated model).
        layouts: the layouts that were priced.
        winner: portfolio winner when the request optimized first
            (None for explicit-layout requests).
        seconds: latency of *this* request -- the lookup time on a
            cache hit, the full optimize+score time otherwise.
        exact: True when the priced layouts satisfy every constraint
            (always True for explicit-layout requests; mirrors the
            portfolio's exactness otherwise -- best-effort answers are
            never frozen into the cache).
        from_cache: True when served from the result cache.
        engine: the propagation engine of the embedded optimization
            (None for cached or explicit-layout requests).  Serving
            telemetry; not part of the wire form.
        kernel_source: how the vectorized planes were obtained (see
            :class:`~repro.service.portfolio.PortfolioResult`).
    """

    program: str
    cost_model: str
    value: float
    unit: str
    details: dict
    layouts: dict[str, Layout]
    winner: str | None
    seconds: float
    exact: bool = True
    from_cache: bool = False
    engine: str | None = None
    kernel_source: str | None = None

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "cost_model": self.cost_model,
            "value": self.value,
            "unit": self.unit,
            "details": _plain(self.details),
            "layouts": {
                name: {
                    "dimension": layout.dimension,
                    "rows": [list(row) for row in layout.rows],
                }
                for name, layout in self.layouts.items()
            },
            "winner": self.winner,
            "seconds": self.seconds,
            "exact": self.exact,
        }

    @staticmethod
    def from_dict(data: Mapping, from_cache: bool = False) -> "EvaluationResult":
        return EvaluationResult(
            program=data["program"],
            cost_model=data["cost_model"],
            value=float(data["value"]),
            unit=data["unit"],
            details=dict(data.get("details", {})),
            layouts={
                name: Layout(entry["dimension"], [tuple(r) for r in entry["rows"]])
                for name, entry in data["layouts"].items()
            },
            winner=data.get("winner"),
            seconds=float(data["seconds"]),
            exact=bool(data.get("exact", True)),
            from_cache=from_cache,
        )


def _plain(value):
    """Recursively convert a details mapping to JSON-encodable types."""
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class EvaluationService:
    """Serve evaluation requests, sharing the portfolio and cache.

    Args:
        config: portfolio used when a request needs optimizing first.
        options: network-construction options for that portfolio.
        cache: optional shared result cache (evaluation entries use
            their own token namespace, so one cache serves both
            request kinds).
        network_cache: optional shared ``fingerprint -> LayoutNetwork``
            mapping handed to the embedded portfolio solver (see
            :class:`~repro.service.portfolio.PortfolioSolver`); a
            resident worker process reuses built networks across
            evaluate sweeps this way.
    """

    def __init__(
        self,
        config: PortfolioConfig | None = None,
        options: BuildOptions | None = None,
        cache: ResultCache | None = None,
        network_cache=None,
        shared_kernels: bool = False,
    ):
        self._config = config if config is not None else PortfolioConfig()
        self._options = options if options is not None else BuildOptions()
        self._cache = cache
        self._solver = PortfolioSolver(
            self._config, options=self._options, cache=cache,
            network_cache=network_cache, shared_kernels=shared_kernels,
        )

    def evaluate(self, request: EvaluationRequest) -> EvaluationResult:
        """Serve one request: cache lookup, else price (and maybe solve)."""
        start = time.perf_counter()
        fingerprint = request_fingerprint(request.program, self._options)
        token = request.token(self._config.token())
        if self._cache is not None:
            with obs_trace.span("cache_lookup"):
                cached = self._cache.get(fingerprint, token)
            if cached is not None:
                obs_metrics.counter(
                    "repro_evaluate_requests_total",
                    labels={"source": "cache"},
                    help="Evaluation requests by serving source.",
                )
                result = EvaluationResult.from_dict(cached, from_cache=True)
                result.program = request.program.name
                result.seconds = time.perf_counter() - start
                return result

        obs_metrics.counter(
            "repro_evaluate_requests_total",
            labels={"source": "scored"},
            help="Evaluation requests by serving source.",
        )
        winner = None
        layouts = request.layouts
        exact = True
        engine = kernel_source = None
        if layouts is None:
            with obs_trace.span("optimize"):
                outcome = self._solver.optimize(
                    request.program, fingerprint=fingerprint
                )
            layouts = outcome.layouts
            winner = outcome.winner
            exact = outcome.exact
            engine = outcome.engine
            kernel_source = outcome.kernel_source
        model_kwargs: dict = {}
        if request.cost_model == "simulated":
            model_kwargs["hierarchy_config"] = request.hierarchy
            model_kwargs["max_iterations_per_nest"] = (
                request.max_iterations_per_nest
            )
        elif request.cost_model == "analytic" and request.hierarchy is not None:
            # The analytic model's machine knowledge is the L1 line
            # size (it prices spatial locality per line of elements).
            model_kwargs["line_size"] = request.hierarchy.l1_line
        elif request.cost_model == "weighted":
            model_kwargs["options"] = self._options
        model = get_cost_model(request.cost_model, **model_kwargs)
        transform_start = time.perf_counter()
        transforms = select_transforms(
            request.program,
            layouts,
            self._options.include_reversals,
            self._options.skew_factors,
        )
        record_pass_seconds("transform", time.perf_counter() - transform_start)
        score_start = time.perf_counter()
        with obs_trace.span("score", model=request.cost_model):
            cost = model.score(request.program, layouts, transforms)
        record_pass_seconds("score", time.perf_counter() - score_start)
        result = EvaluationResult(
            program=request.program.name,
            cost_model=cost.model,
            value=cost.value,
            unit=cost.unit,
            details=_plain(dict(cost.details)),
            layouts=dict(layouts),
            winner=winner,
            seconds=time.perf_counter() - start,
            exact=exact,
            engine=engine,
            kernel_source=kernel_source,
        )
        if self._cache is not None and exact:
            self._cache.put(fingerprint, token, result.to_dict())
        return result


#: Per-process service reuse: a pool worker serves many map items, so
#: rebuilding the evaluation/portfolio plumbing per request is waste.
_WORKER_SERVICES: dict[tuple, "EvaluationService"] = {}


def _evaluate_one(
    request: EvaluationRequest,
    config: PortfolioConfig,
    options: BuildOptions,
) -> dict:
    """Pool worker: serve one request, return the serialized result."""
    key = (repr(config), repr(options))
    service = _WORKER_SERVICES.get(key)
    if service is None:
        if len(_WORKER_SERVICES) >= 8:  # different batches, same process
            _WORKER_SERVICES.clear()
        service = EvaluationService(config=config, options=options)
        _WORKER_SERVICES[key] = service
    return service.evaluate(request).to_dict()


def run_evaluation_batch(
    requests: Sequence[EvaluationRequest],
    config: PortfolioConfig | None = None,
    options: BuildOptions | None = None,
    cache: ResultCache | None = None,
    workers: int = 1,
    client=None,
) -> list[EvaluationResult]:
    """Serve a list of evaluation requests, preserving input order.

    Mirrors :func:`repro.service.batch.run_batch`: cache lookups and
    stores happen in the parent (pool workers are stateless), and
    ``workers > 1`` fans cache misses across a process pool.  With
    ``client`` the batch is instead pipelined through a resident
    daemon (every other argument is then the daemon's concern).

    Raises:
        ValueError: for a non-positive worker count.
        RuntimeError: when the daemon answers a request with an error.
    """
    if client is not None:
        return _run_evaluation_batch_via_daemon(requests, client)
    if workers < 1:
        raise ValueError("workers must be positive")
    config = config if config is not None else PortfolioConfig()
    options = options if options is not None else BuildOptions()
    portfolio_token = config.token()

    slots: list[EvaluationResult | None] = [None] * len(requests)
    pending: list[tuple[int, EvaluationRequest, str, str]] = []
    for index, request in enumerate(requests):
        lookup_start = time.perf_counter()
        fingerprint = request_fingerprint(request.program, options)
        token = request.token(portfolio_token)
        cached = cache.get(fingerprint, token) if cache is not None else None
        if cached is not None:
            result = EvaluationResult.from_dict(cached, from_cache=True)
            result.program = request.program.name
            result.seconds = time.perf_counter() - lookup_start
            slots[index] = result
            continue
        pending.append((index, request, fingerprint, token))

    if pending:
        if workers == 1 or len(pending) == 1:
            # In-process: hand the shared cache to the service, so the
            # embedded portfolio reuses cached *optimization* results
            # (the expensive half of an evaluate miss), duplicate
            # requests within the batch are served once, and the
            # service does its own stores.
            service = EvaluationService(config=config, options=options, cache=cache)
            for index, request, _, _ in pending:
                slots[index] = service.evaluate(request)
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                serialized = list(
                    pool.map(
                        _evaluate_one,
                        [request for _, request, _, _ in pending],
                        [config] * len(pending),
                        [options] * len(pending),
                    )
                )
            for (index, _, fingerprint, token), data in zip(pending, serialized):
                result = EvaluationResult.from_dict(data)
                slots[index] = result
                if cache is not None and result.exact:
                    cache.put(fingerprint, token, result.to_dict())

    return [result for result in slots if result is not None]


def request_to_wire(request: EvaluationRequest) -> dict:
    """The daemon-protocol payload of one evaluation request."""
    from repro.service.stream import evaluate_request

    hierarchy = None
    if request.hierarchy is not None:
        hierarchy = {
            f.name: getattr(request.hierarchy, f.name)
            for f in dataclass_fields(HierarchyConfig)
        }
    return evaluate_request(
        request.program,
        cost_model=request.cost_model,
        hierarchy=hierarchy,
        layouts=request.layouts,
        sim_cap=request.max_iterations_per_nest,
    )


def _run_evaluation_batch_via_daemon(
    requests: Sequence[EvaluationRequest], client
) -> list[EvaluationResult]:
    """Pipeline evaluation requests through a resident daemon."""
    responses = client.request_many(
        [request_to_wire(request) for request in requests]
    )
    results: list[EvaluationResult] = []
    for request, response in zip(requests, responses):
        if not response.get("ok"):
            raise RuntimeError(
                f"daemon error for {request.program.name}: "
                f"{response.get('error', 'unknown error')}"
            )
        result = EvaluationResult.from_dict(
            response["result"], from_cache=bool(response.get("from_cache"))
        )
        result.program = request.program.name
        result.seconds = float(response.get("seconds", result.seconds))
        results.append(result)
    return results

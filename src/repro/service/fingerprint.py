"""Canonical fingerprints for programs, networks and configurations.

The serving layer caches solver results across process boundaries, so
cache keys must be *stable* (identical across interpreter runs -- no
salted ``hash()``) and *order-independent* (the same program or network
assembled in a different insertion order fingerprints identically).
Everything here reduces a structure to a canonical nested form, encodes
it as JSON, and hashes it with SHA-256.

Three producers:

* :func:`network_fingerprint` -- over a :class:`ConstraintNetwork`'s
  variables, sorted domains and orientation-normalized constraint
  pair-sets (via :meth:`ConstraintNetwork.canonical_form`);
* :func:`program_fingerprint` -- over a :class:`Program`'s array
  declarations and loop nests (declaration order ignored);
* :func:`request_fingerprint` -- a program plus the
  :class:`BuildOptions` that turn it into a network: the cache key of
  one optimization request.
"""

from __future__ import annotations

import hashlib
import json
from typing import Hashable

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.network import ConstraintNetwork
from repro.ir.expr import AffineExpr
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.opt.network_builder import BuildOptions

#: Length (hex characters) of every fingerprint digest.
DIGEST_LENGTH = 32


def canonical_value_token(value: Hashable) -> str:
    """A stable, collision-resistant string token for a domain value.

    Handles the value types that actually appear in this codebase's
    networks -- layouts, ints, strings, bools, None, and tuples thereof
    -- with explicit type tags so e.g. ``1`` and ``"1"`` and ``True``
    stay distinct.  Unknown types fall back to ``repr`` (stable for
    well-behaved value classes; layouts and the random-network ints
    never reach this branch).
    """
    if isinstance(value, Layout):
        return f"layout:{value.dimension}:{value.rows!r}"
    if isinstance(value, bool):
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, str):
        return f"str:{value}"
    if value is None:
        return "none"
    if isinstance(value, float):
        return f"float:{value!r}"
    if isinstance(value, tuple):
        inner = ",".join(canonical_value_token(item) for item in value)
        return f"tuple:[{inner}]"
    if isinstance(value, frozenset):
        inner = ",".join(sorted(canonical_value_token(item) for item in value))
        return f"frozenset:[{inner}]"
    return f"{type(value).__name__}:{value!r}"


def _digest(structure) -> str:
    """SHA-256 (truncated) over the JSON encoding of a nested structure."""
    encoded = json.dumps(structure, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:DIGEST_LENGTH]


def network_fingerprint(network: ConstraintNetwork | CompiledNetwork) -> str:
    """Fingerprint of a constraint network's variables/domains/constraints.

    Insertion order of variables, domains, constraints and pairs does
    not affect the result; neither does constraint orientation.

    The canonical form is produced from the compiled kernel's interning
    tables (compilation is cached on the network, so a network that has
    already been solved fingerprints without re-canonicalizing its
    frozenset pair representation); the digest is identical to the one
    computed from :meth:`ConstraintNetwork.canonical_form`.
    """
    variables, constraints = as_compiled(network).canonical_form(
        canonical_value_token
    )
    return _digest(
        [
            [[name, list(domain)] for name, domain in variables],
            [[low, high, [list(p) for p in pairs]] for low, high, pairs in constraints],
        ]
    )


def _expr_form(expr: AffineExpr) -> list:
    """Canonical encoding of an affine expression."""
    return [sorted(list(item) for item in expr.coeffs), expr.const]


def program_fingerprint(program: Program) -> str:
    """Structural fingerprint of a program.

    Array and nest *declaration order* is ignored (it never changes the
    constraint network); everything semantically relevant -- extents,
    dtypes, loop bounds, reference subscripts, access kinds, nest
    weights -- is included.  The program *name* is excluded so renamed
    but identical programs share cache entries.
    """
    arrays = sorted(
        [decl.name, list(decl.extents), decl.element_type]
        for decl in program.arrays
    )
    nests = sorted(
        [
            nest.name,
            [[loop.index, loop.lower, loop.upper] for loop in nest.loops],
            [
                [ref.array, [_expr_form(s) for s in ref.subscripts], ref.kind.name]
                for ref in nest.body
            ],
            nest.weight,
        ]
        for nest in program.nests
    )
    return _digest([arrays, nests])


def options_token(options: BuildOptions) -> str:
    """Canonical token for network-construction options."""
    return (
        f"std={options.include_standard},rev={options.include_reversals},"
        f"skew={list(options.skew_factors)},combine={options.combine}"
    )


def request_fingerprint(program: Program, options: BuildOptions | None = None) -> str:
    """Cache key of one optimization request: program + build options."""
    options = options if options is not None else BuildOptions()
    return _digest([program_fingerprint(program), options_token(options)])

"""Result cache for the layout solver service.

An in-memory LRU keyed by ``(request fingerprint, portfolio/scheme
token)`` with optional JSON persistence, so a service restart -- or the
next invocation of the batch CLI -- serves repeat programs without
re-running any solver.  Values are plain JSON-serializable dicts (the
portfolio layer owns (de)serialization of its results), which keeps the
cache format inspectable with nothing but a text editor.

Hit/miss/eviction counters live in :class:`CacheStats`; the batch
report surfaces them ("served N% from cache").
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field

#: On-disk format version; bump on incompatible layout changes.
_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime.

    Attributes:
        hits: successful lookups.
        misses: failed lookups.
        stores: values inserted (including overwrites).
        evictions: entries dropped to respect the capacity bound.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }


class ResultCache:
    """LRU cache of solver results, optionally persisted to a JSON file.

    Args:
        capacity: maximum number of entries kept in memory (least
            recently *used* entries are evicted first).
        path: optional JSON file; existing entries are loaded eagerly
            (corrupt or version-mismatched files are ignored, not
            fatal -- the cache simply starts cold).  Call :meth:`save`
            to persist; saving is atomic (write + rename).

    Keys are ``(fingerprint, config_token)`` string pairs; values must
    be JSON-serializable.
    """

    def __init__(self, capacity: int = 256, path: str | None = None):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._path = path
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.stats = CacheStats()
        if path is not None and os.path.exists(path):
            self._load(path)

    @staticmethod
    def _key(fingerprint: str, config_token: str) -> str:
        return f"{fingerprint}|{config_token}"

    # -- lookups ---------------------------------------------------------

    def get(self, fingerprint: str, config_token: str) -> dict | None:
        """The cached value, or None; refreshes LRU position on hit."""
        key = self._key(fingerprint, config_token)
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, fingerprint: str, config_token: str, value: dict) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        key = self._key(fingerprint, config_token)
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def contains(self, fingerprint: str, config_token: str) -> bool:
        """Membership test that does not touch stats or LRU order."""
        return self._key(fingerprint, config_token) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()

    # -- persistence -----------------------------------------------------

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            return
        entries = payload.get("entries")
        if not isinstance(entries, list):
            return
        for item in entries[-self._capacity:]:
            if (
                isinstance(item, list)
                and len(item) == 2
                and isinstance(item[0], str)
                and isinstance(item[1], dict)
            ):
                self._entries[item[0]] = item[1]

    def save(self) -> None:
        """Persist all entries (LRU order preserved); no-op when pathless."""
        if self._path is None:
            return
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [[key, value] for key, value in self._entries.items()],
        }
        directory = os.path.dirname(os.path.abspath(self._path))
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".cache-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(temp_path, self._path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

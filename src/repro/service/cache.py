"""Result caches for the layout solver service.

Two tiers:

* :class:`ResultCache` -- an in-memory LRU keyed by ``(request
  fingerprint, portfolio/scheme token)`` with optional JSON
  persistence, so a service restart -- or the next invocation of the
  batch CLI -- serves repeat programs without re-running any solver.
  Values are plain JSON-serializable dicts (the portfolio layer owns
  (de)serialization of its results), which keeps the cache format
  inspectable with nothing but a text editor.  Entries may carry a
  time-to-live; expired entries are dropped on lookup and on load.
  ``save(merge=True)`` folds the file's current contents back in under
  an advisory file lock, so concurrent processes persisting to one
  path lose no entries.

* :class:`ShardedResultCache` -- N :class:`ResultCache` shards keyed
  by fingerprint prefix, each with its own LRU bound, JSON file, and
  stats.  Concurrent writers hash to different shards and stop
  contending on one file; the resident daemon persists one shard at a
  time.

Hit/miss/eviction counters live in :class:`CacheStats`; the batch
report surfaces them ("served N% from cache").
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass

try:  # advisory save lock: POSIX only, gracefully absent elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

#: On-disk format version; bump on incompatible layout changes.
#: Version 2 added per-entry store timestamps (TTL support).
_FORMAT_VERSION = 2


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime.

    Attributes:
        hits: successful lookups.
        misses: failed lookups.
        stores: values inserted (including overwrites).
        evictions: entries dropped to respect the capacity bound.
        expirations: entries dropped because their TTL elapsed.
        saves: persistence passes that wrote the cache file.
        merge_saves: the subset of saves that folded the file's
            current contents back in under the advisory lock first.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    expirations: int = 0
    saves: int = 0
    merge_saves: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }

    def add(self, other: "CacheStats") -> None:
        """Fold another instance's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.expirations += other.expirations


@contextlib.contextmanager
def _save_lock(path: str):
    """Advisory exclusive lock serializing merge-saves on one path.

    Uses a ``<path>.lock`` sidecar (never replaced, so every process
    locks the same inode).  On platforms without :mod:`fcntl` the lock
    degrades to a no-op: saves stay atomic (temp + ``os.replace``),
    merge-saves merely lose their read-modify-write atomicity.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield
        return
    lock_path = f"{path}.lock"
    handle = open(lock_path, "a+")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        with contextlib.suppress(OSError):
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()


class ResultCache:
    """LRU cache of solver results, optionally persisted to a JSON file.

    Args:
        capacity: maximum number of entries kept in memory (least
            recently *used* entries are evicted first).
        path: optional JSON file; existing entries are loaded eagerly
            (corrupt, truncated, or version-mismatched files are
            discarded with a logged warning, never fatal -- the cache
            simply starts cold).  Call :meth:`save` to persist; saving
            is atomic (write-to-temp + ``os.replace``), so concurrent
            readers never observe a torn file.
        ttl_seconds: optional time-to-live; entries older than this
            (by wall clock, so the bound survives process restarts)
            are dropped on lookup and on load.

    Keys are ``(fingerprint, config_token)`` string pairs; values must
    be JSON-serializable.
    """

    def __init__(
        self,
        capacity: int = 256,
        path: str | None = None,
        ttl_seconds: float | None = None,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self._capacity = capacity
        self._path = path
        self._ttl = ttl_seconds
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._stored_at: dict[str, float] = {}
        self.stats = CacheStats()
        if path is not None and os.path.exists(path):
            loaded = self._read_file(path)
            if loaded:
                self._absorb(loaded)

    @property
    def path(self) -> str | None:
        """The persistence path (None for a memory-only cache)."""
        return self._path

    @staticmethod
    def _key(fingerprint: str, config_token: str) -> str:
        return f"{fingerprint}|{config_token}"

    def _expired(self, key: str, now: float) -> bool:
        if self._ttl is None:
            return False
        return now - self._stored_at.get(key, now) > self._ttl

    # -- lookups ---------------------------------------------------------

    def get(self, fingerprint: str, config_token: str) -> dict | None:
        """The cached value, or None; refreshes LRU position on hit."""
        key = self._key(fingerprint, config_token)
        value = self._entries.get(key)
        if value is not None and self._expired(key, time.time()):
            del self._entries[key]
            self._stored_at.pop(key, None)
            self.stats.expirations += 1
            value = None
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, fingerprint: str, config_token: str, value: dict) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        key = self._key(fingerprint, config_token)
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._stored_at[key] = time.time()
        self.stats.stores += 1
        while len(self._entries) > self._capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._stored_at.pop(evicted, None)
            self.stats.evictions += 1

    def contains(self, fingerprint: str, config_token: str) -> bool:
        """Membership test that does not touch stats or LRU order.

        Expired entries count as absent (but are not reaped here).
        """
        key = self._key(fingerprint, config_token)
        return key in self._entries and not self._expired(key, time.time())

    def __len__(self) -> int:
        return len(self._entries)

    def bytes_on_disk(self) -> int:
        """Size of the persisted cache file (0 when absent/memory-only).

        A point-in-time ``os.stat`` of the file as last saved -- not
        the in-memory footprint -- so cluster roll-ups can compare the
        on-disk tier across members without opening any shard file.
        """
        if self._path is None:
            return 0
        try:
            return os.stat(self._path).st_size
        except OSError:
            return 0

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()
        self._stored_at.clear()

    # -- persistence -----------------------------------------------------

    def _read_file(self, path: str) -> list[tuple[str, dict, float]]:
        """Parse a cache file into (key, value, stored_at) triples.

        Anything unreadable -- a partial write, truncated JSON, binary
        garbage, a format-version mismatch, a malformed entry -- is
        discarded with a logged warning; loading never raises.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            # ValueError covers json.JSONDecodeError and the
            # UnicodeDecodeError a truncated/binary file raises.
            logger.warning("discarding unreadable result cache %s: %s", path, exc)
            return []
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            version = payload.get("version") if isinstance(payload, dict) else None
            logger.warning(
                "discarding result cache %s: format version %r != %d",
                path,
                version,
                _FORMAT_VERSION,
            )
            return []
        entries = payload.get("entries")
        if not isinstance(entries, list):
            logger.warning("discarding result cache %s: malformed entry table", path)
            return []
        now = time.time()
        triples: list[tuple[str, dict, float]] = []
        dropped = 0
        for item in entries:
            if (
                isinstance(item, list)
                and len(item) == 3
                and isinstance(item[0], str)
                and isinstance(item[1], dict)
                and isinstance(item[2], (int, float))
            ):
                stored_at = float(item[2])
                if self._ttl is not None and now - stored_at > self._ttl:
                    self.stats.expirations += 1
                    continue
                triples.append((item[0], item[1], stored_at))
            else:
                dropped += 1
        if dropped:
            logger.warning(
                "result cache %s: dropped %d malformed entries", path, dropped
            )
        return triples

    def _absorb(self, triples: list[tuple[str, dict, float]]) -> None:
        """Install loaded triples, respecting the capacity bound."""
        for key, value, stored_at in triples[-self._capacity:]:
            self._entries[key] = value
            self._stored_at[key] = stored_at

    def save(self, merge: bool = False) -> None:
        """Persist all entries (LRU order preserved); no-op when pathless.

        Args:
            merge: fold the file's *current* entries back in first
                (own entries win on key collisions), under an advisory
                file lock -- so several processes saving to one path
                lose none of each other's entries.  The default
                overwrite semantics suit a single-writer CLI (and keep
                :meth:`clear` + :meth:`save` meaning "empty the file").
        """
        if self._path is None:
            return
        self.stats.saves += 1
        if not merge:
            self._write_file(dict(self._entries))
            return
        self.stats.merge_saves += 1
        with _save_lock(self._path):
            merged: OrderedDict[str, dict] = OrderedDict()
            stored_at: dict[str, float] = {}
            if os.path.exists(self._path):
                for key, value, when in self._read_file(self._path):
                    merged[key] = value
                    stored_at[key] = when
            for key, value in self._entries.items():
                if key in merged:
                    del merged[key]  # re-append: own entries are fresher
                merged[key] = value
                stored_at[key] = self._stored_at.get(key, time.time())
            while len(merged) > self._capacity:
                dropped, _ = merged.popitem(last=False)
                stored_at.pop(dropped, None)
            self._write_file(merged, stored_at)

    def _write_file(
        self, entries: dict[str, dict], stored_at: dict[str, float] | None = None
    ) -> None:
        """Atomically replace the cache file with the given entries."""
        if stored_at is None:
            stored_at = self._stored_at
        now = time.time()
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                [key, value, stored_at.get(key, now)]
                for key, value in entries.items()
            ],
        }
        directory = os.path.dirname(os.path.abspath(self._path))
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".cache-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self._path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


def shard_index(fingerprint: str, shards: int) -> int:
    """Which shard a fingerprint belongs to.

    Fingerprints are hex digests (:mod:`repro.service.fingerprint`),
    so the leading 8 hex characters give a uniform integer; arbitrary
    strings (tests, foreign keys) fall back to CRC-32.  Stable across
    processes and interpreter runs -- shard files must mean the same
    thing to every writer.
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    prefix = fingerprint[:8]
    try:
        value = int(prefix, 16)
    except ValueError:
        value = zlib.crc32(fingerprint.encode("utf-8"))
    return value % shards


class ShardedResultCache:
    """N independent :class:`ResultCache` shards keyed by fingerprint prefix.

    Each shard has its own LRU bound, JSON file (``shard-00.json`` ...
    under ``directory``), and stats, so concurrent writers hash to
    different files instead of contending on one.  The interface
    mirrors :class:`ResultCache` (get/put/contains/save/clear/len),
    so every cache consumer in the service layer accepts either.

    Args:
        shards: shard count (fixed for the life of the directory: the
            shard of a fingerprint must not move between runs).
        capacity: LRU bound *per shard*.
        directory: optional persistence directory, created on demand;
            None keeps all shards memory-only.
        ttl_seconds: per-entry time-to-live applied by every shard.
    """

    def __init__(
        self,
        shards: int = 4,
        capacity: int = 1024,
        directory: str | None = None,
        ttl_seconds: float | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be positive")
        self._directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._shards = [
            ResultCache(
                capacity=capacity,
                path=(
                    os.path.join(directory, f"shard-{index:02d}.json")
                    if directory is not None
                    else None
                ),
                ttl_seconds=ttl_seconds,
            )
            for index in range(shards)
        ]

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def directory(self) -> str | None:
        """The persistence directory (None for memory-only)."""
        return self._directory

    def shard_for(self, fingerprint: str) -> ResultCache:
        """The shard owning a fingerprint."""
        return self._shards[shard_index(fingerprint, len(self._shards))]

    def get(self, fingerprint: str, config_token: str) -> dict | None:
        return self.shard_for(fingerprint).get(fingerprint, config_token)

    def put(self, fingerprint: str, config_token: str, value: dict) -> None:
        self.shard_for(fingerprint).put(fingerprint, config_token, value)

    def contains(self, fingerprint: str, config_token: str) -> bool:
        return self.shard_for(fingerprint).contains(fingerprint, config_token)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def bytes_on_disk(self) -> int:
        """Aggregate size of all persisted shard files."""
        return sum(shard.bytes_on_disk() for shard in self._shards)

    def entry_counts(self) -> list[int]:
        """Live entry count per shard (index = shard number)."""
        return [len(shard) for shard in self._shards]

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def save(self, merge: bool = True) -> None:
        """Persist every shard (merge-saves by default: the sharded
        cache exists for concurrent writers)."""
        for shard in self._shards:
            shard.save(merge=merge)

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters across all shards (a snapshot)."""
        total = CacheStats()
        for shard in self._shards:
            total.add(shard.stats)
        return total

    def shard_stats(self) -> list[dict]:
        """Per-shard stats snapshot (for the daemon's ``stats`` kind)."""
        return [
            {
                "shard": index,
                "entries": len(shard),
                "bytes_on_disk": shard.bytes_on_disk(),
                "path": shard.path,
                **shard.stats.as_dict(),
            }
            for index, shard in enumerate(self._shards)
        ]

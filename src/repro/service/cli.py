"""Command-line front end of the layout solver service.

Batch mode::

    python -m repro.service --programs all --portfolio enhanced,cbj,weighted --workers 4

Takes a list of programs (the five Table 1 benchmarks by name, plus
optional synthetic load from the random generator), serves each through
the racing portfolio with a shared on-disk result cache, and prints the
per-program outcomes followed by the batch throughput report.  Run the
same command twice: the second run is served from the cache.

Daemon mode::

    python -m repro.service --serve --socket /tmp/repro.sock --shards 4

runs the resident solver daemon (persistent worker pool, sharded
persistent cache, JSON-lines streaming protocol -- see
:mod:`repro.service.daemon`); without ``--socket`` it serves stdin to
stdout.  Any batch invocation becomes a thin client of a running
daemon with ``--connect /tmp/repro.sock``.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import Sequence

from repro import __version__
from repro.bench.programs import (
    BENCHMARK_NAMES,
    benchmark_build_options,
    build_benchmark,
    random_suite,
)
from repro.ir.program import Program
from repro.service.batch import run_batch
from repro.service.cache import ResultCache
from repro.service.portfolio import DEFAULT_SCHEMES, PortfolioConfig, known_schemes

#: Default on-disk cache location (current directory: per-project).
DEFAULT_CACHE_PATH = ".repro-service-cache.json"

#: Default shard directory of the daemon's persistent cache.
DEFAULT_CACHE_DIR = ".repro-service-cache.d"


def build_parser() -> argparse.ArgumentParser:
    """The service CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Batched, cached, racing-portfolio layout optimization "
            "service over the paper's benchmark programs."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--programs",
        default="all",
        help=(
            "comma-separated benchmark names, or 'all' for the five "
            f"Table 1 programs (known: {', '.join(BENCHMARK_NAMES)}); "
            "'none' serves only --random programs"
        ),
    )
    parser.add_argument(
        "--random",
        type=int,
        default=0,
        metavar="N",
        help="append N deterministic synthetic programs to the batch",
    )
    parser.add_argument(
        "--random-seed",
        type=int,
        default=0,
        help="seed for the synthetic program suite (default 0)",
    )
    parser.add_argument(
        "--portfolio",
        default=",".join(DEFAULT_SCHEMES),
        help=(
            "comma-separated schemes to race "
            f"(known: {', '.join(known_schemes())})"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="program-level worker pool size (default 2)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=120.0,
        help="per-program racing deadline in seconds (default 120)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="solver RNG seed (default 0)"
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "bitset", "numpy", "native"),
        default="auto",
        help=(
            "propagation kernel: the machine-int bitset engine, the "
            "vectorized numpy engine, the compiled-C native engine, "
            "or auto-sized per network (default auto; results are "
            "identical either way)"
        ),
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run each program's schemes sequentially instead of racing",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE_PATH,
        metavar="PATH",
        help=f"result cache file (default {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="drop all cached results before serving",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="also print the per-scheme outcome table for every program",
    )
    pipeline = parser.add_argument_group(
        "pass pipeline",
        "run the batch through an explicit optimizer pass pipeline "
        "(see repro.opt.passes) instead of the racing batch runner",
    )
    pipeline.add_argument(
        "--passes",
        default=None,
        metavar="NAME,...",
        help=(
            "comma-separated optimizer passes, e.g. "
            "'build,solve,repair,transform' (the default pipeline), "
            "'default,dynamic', or 'build,solve,repair,joint,dynamic'; "
            "'default' expands to the configured default order"
        ),
    )
    pipeline.add_argument(
        "--refine",
        default=None,
        metavar="MODEL",
        help=(
            "cost model for the refine/joint passes with --passes "
            "(see repro.eval: analytic, weighted, simulated)"
        ),
    )
    daemon = parser.add_argument_group(
        "daemon mode",
        "run as a resident streaming service (JSON-lines protocol, "
        "persistent worker pool, sharded result cache) or talk to one",
    )
    daemon.add_argument(
        "--serve",
        action="store_true",
        help="run the resident daemon instead of a one-shot batch",
    )
    daemon.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="unix socket to listen on with --serve (default: stdin/stdout)",
    )
    daemon.add_argument(
        "--connect",
        default=None,
        metavar="ADDR[,ADDR...]",
        help=(
            "send this batch to a daemon (or cluster) instead of "
            "solving here; a comma-separated list enables client-side "
            "consistent-hash routing straight to each request's owner"
        ),
    )
    daemon.add_argument(
        "--serve-cluster",
        type=int,
        default=None,
        metavar="N",
        help=(
            "spawn N cluster member daemons (own process, pool and "
            "cache shards each) and run the fingerprint-routing "
            "front end on --socket"
        ),
    )
    daemon.add_argument(
        "--members",
        default=None,
        metavar="ADDR,...",
        help=(
            "explicit member addresses: with --serve-cluster the "
            "members are spawned there; with --serve alone an "
            "already-running member set is fronted as-is"
        ),
    )
    daemon.add_argument(
        "--replicas",
        type=int,
        default=2,
        metavar="K",
        help=(
            "how many ring-preference members a routed request may "
            "try before failing (owner + K-1 failover replicas, "
            "default 2)"
        ),
    )
    daemon.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="N",
        help="result-cache shard count for --serve (default 4)",
    )
    daemon.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        metavar="N",
        help="bound on concurrently served daemon requests (default 32)",
    )
    daemon.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"daemon shard directory (default {DEFAULT_CACHE_DIR})",
    )
    daemon.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="drop cached results older than this (default: keep forever)",
    )
    evaluation = parser.add_argument_group(
        "evaluation requests",
        "price programs under a cost model instead of (only) optimizing "
        "them; layouts come from the racing portfolio, the machine "
        "model from --hierarchy",
    )
    evaluation.add_argument(
        "--evaluate",
        action="store_true",
        help="serve 'evaluate' requests: optimize, then score the winner",
    )
    evaluation.add_argument(
        "--cost-model",
        default="simulated",
        help="cost model for --evaluate (see repro.eval; default simulated)",
    )
    evaluation.add_argument(
        "--hierarchy",
        default="",
        metavar="FIELD=N,...",
        help=(
            "per-request cache hierarchy overrides for --evaluate, e.g. "
            "l1_size=16384,l2_latency=9 (fields of HierarchyConfig)"
        ),
    )
    evaluation.add_argument(
        "--sim-cap",
        type=int,
        default=None,
        metavar="N",
        help="iteration-space sampling cap per nest for --evaluate",
    )
    observability = parser.add_argument_group(
        "observability",
        "request tracing and structured logging (daemon metrics are "
        "always collected; scrape them with the 'metrics' request kind)",
    )
    observability.add_argument(
        "--trace-log",
        default=None,
        metavar="PATH",
        help=(
            "append each served request's span tree as one JSON line "
            "to PATH (--serve only)"
        ),
    )
    observability.add_argument(
        "--log-level",
        default=os.environ.get("REPRO_LOG_LEVEL", "info"),
        choices=("debug", "info", "warning", "error"),
        help=(
            "logging threshold; the REPRO_LOG_LEVEL environment "
            "variable sets the default (info)"
        ),
    )
    observability.add_argument(
        "--log-json",
        action="store_true",
        help="log one JSON object per line (ts/level/logger/message)",
    )
    return parser


def _configure_logging(args: argparse.Namespace) -> None:
    """Install the service's stderr log handler per the CLI flags."""
    try:
        level = getattr(logging, args.log_level.upper())
    except AttributeError:
        raise SystemExit(f"unknown log level {args.log_level!r}")
    handler = logging.StreamHandler(sys.stderr)
    if args.log_json:
        from repro.obs import JsonLogFormatter

        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    root = logging.getLogger()
    root.addHandler(handler)
    root.setLevel(level)


def _resolve_programs(args: argparse.Namespace) -> list[Program]:
    programs: list[Program] = []
    spec = args.programs.strip().lower()
    if spec == "all":
        programs.extend(build_benchmark(name) for name in BENCHMARK_NAMES)
    elif spec not in ("none", ""):
        for name in args.programs.split(","):
            name = name.strip()
            if not name:
                continue
            try:
                programs.append(build_benchmark(name))
            except KeyError:
                raise SystemExit(
                    f"unknown benchmark {name!r}; know {', '.join(BENCHMARK_NAMES)}"
                )
    if args.random:
        programs.extend(random_suite(args.random, seed=args.random_seed))
    if not programs:
        raise SystemExit("empty batch: give --programs and/or --random N")
    return programs


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    if args.engine != "auto":
        # The env override propagates the forced engine into every
        # racing scheme child and pool worker this process spawns.
        # The env resolution path soft-degrades on numpy-free hosts
        # (right for a fleet-wide knob, wrong for an explicit flag),
        # so reject the impossible request here instead.
        from repro.csp.vectorized import (
            ENGINE_ENV,
            native_available,
            numpy_available,
        )

        if args.engine == "numpy" and not numpy_available():
            raise SystemExit("--engine numpy requires numpy, which is not installed")
        if args.engine == "native" and not native_available():
            raise SystemExit(
                "--engine native requires a C compiler (cc/gcc/clang) "
                "or a previously built kernel cache"
            )
        os.environ[ENGINE_ENV] = args.engine
    try:
        config = PortfolioConfig.parse(
            args.portfolio,
            seed=args.seed,
            deadline_seconds=args.deadline,
            parallel=not args.sequential,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.workers < 1:
        raise SystemExit("--workers must be positive")
    if args.random < 0:
        raise SystemExit("--random must be non-negative")
    serving = args.serve or args.serve_cluster is not None
    if serving and args.connect:
        raise SystemExit("--serve/--serve-cluster and --connect are mutually exclusive")
    if args.serve_cluster is not None and args.serve_cluster < 1:
        raise SystemExit("--serve-cluster needs at least one member")
    if args.replicas < 1:
        raise SystemExit("--replicas must be positive")
    if args.trace_log and not serving:
        raise SystemExit("--trace-log requires --serve")
    if args.passes and (serving or args.connect or args.evaluate):
        raise SystemExit(
            "--passes runs a local pipeline batch; it cannot be combined "
            "with --serve, --connect or --evaluate"
        )
    if args.refine is not None and not args.passes:
        raise SystemExit("--refine requires --passes")

    if args.serve_cluster is not None:
        return _run_cluster(args, config)

    if args.serve:
        if args.members:
            return _run_router(args, config)
        return _run_daemon(args, config)

    if args.passes:
        return _run_pipeline(args, config)

    client = None
    if args.connect is not None:
        from repro.service.stream import DaemonClient

        addresses = [a.strip() for a in args.connect.split(",") if a.strip()]
        if not addresses:
            raise SystemExit("--connect needs at least one address")
        try:
            client = DaemonClient(
                addresses if len(addresses) > 1 else addresses[0],
                options=benchmark_build_options(),
            )
        except OSError as exc:
            raise SystemExit(f"cannot connect to daemon at {args.connect}: {exc}")

    programs = _resolve_programs(args)

    cache = None
    if client is None and not args.no_cache:
        cache = ResultCache(capacity=4096, path=args.cache)
        if args.clear_cache:
            cache.clear()

    if args.evaluate:
        return _run_evaluation(args, config, programs, cache, client)

    source = (
        f"daemon {args.connect}"
        if client is not None
        else ("off" if cache is None else args.cache)
    )
    print(
        f"repro layout service v{__version__} -- "
        f"portfolio [{', '.join(config.schemes)}], "
        f"workers={args.workers}, deadline={args.deadline:.0f}s, "
        f"cache={source}"
    )
    report = run_batch(
        programs,
        config=config,
        options=benchmark_build_options(),
        cache=cache,
        workers=args.workers,
        client=client,
    )
    for result in report.results:
        source = "cache" if result.from_cache else f"winner={result.winner}"
        exactness = "exact" if result.exact else "best-effort"
        print(
            f"  {result.program:<12} {source:<24} {exactness:<12} "
            f"{result.solve_seconds * 1000:8.1f}ms"
        )
        if args.verbose and not result.from_cache:
            for outcome in result.outcomes:
                print(
                    f"      {outcome.scheme:<18} {outcome.status:<10} "
                    f"{outcome.seconds * 1000:8.1f}ms  {outcome.detail}"
                )
    print()
    print(report.format())
    if cache is not None:
        cache.save()
        stats = cache.stats
        print(
            f"  cache stats: hits={stats.hits} misses={stats.misses} "
            f"stores={stats.stores} evictions={stats.evictions} "
            f"entries={len(cache)}"
        )
    if client is not None:
        client.close()
    failures = sum(1 for result in report.results if result.winner is None)
    return 1 if failures else 0


def _run_pipeline(args, config) -> int:
    """The ``--passes`` path: explicit pass pipeline, one program at a time.

    Uses the configured portfolio when several schemes were given,
    otherwise the single scheme directly (so the build/solve/repair
    passes all run locally), and prints each program's full
    optimization report including the per-pass timing table.
    """
    from repro.opt.optimizer import LayoutOptimizer
    from repro.opt.passes import PipelineError
    from repro.opt.report import optimization_report

    programs = _resolve_programs(args)
    names = [name.strip() for name in args.passes.split(",") if name.strip()]
    if not names:
        raise SystemExit("--passes needs at least one pass name")
    scheme = config if len(config.schemes) > 1 else config.schemes[0]
    try:
        optimizer = LayoutOptimizer(
            scheme=scheme,
            seed=args.seed,
            options=benchmark_build_options(),
            refine=args.refine,
            passes=names,
        )
    except (PipelineError, ValueError) as exc:
        raise SystemExit(str(exc))
    print(
        f"repro layout service v{__version__} -- pipeline "
        f"[{', '.join(optimizer.pipeline.names)}], "
        f"scheme={optimizer.scheme_name}, seed={args.seed}"
    )
    for program in programs:
        outcome = optimizer.optimize(program)
        print()
        print(optimization_report(outcome))
    return 0


def _run_daemon(args, config) -> int:
    """The ``--serve`` path: run the resident daemon until shutdown."""
    from repro.service.daemon import DaemonConfig, serve

    try:
        daemon_config = DaemonConfig(
            workers=args.workers,
            max_inflight=args.max_inflight,
            shards=args.shards,
            cache_dir=None if args.no_cache else args.cache_dir,
            ttl_seconds=args.ttl,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    where = args.socket if args.socket else "stdin/stdout"
    print(
        f"repro layout daemon v{__version__} -- "
        f"portfolio [{', '.join(config.schemes)}], workers={args.workers}, "
        f"shards={args.shards}, max_inflight={args.max_inflight}, "
        f"cache={'memory-only' if args.no_cache else args.cache_dir}, "
        f"listening on {where}",
        file=sys.stderr,
        flush=True,
    )
    try:
        return serve(
            config=config,
            options=benchmark_build_options(),
            daemon_config=daemon_config,
            socket_path=args.socket,
            trace_log=args.trace_log,
        )
    except KeyboardInterrupt:
        return 0


def _run_cluster(args, config) -> int:
    """The ``--serve-cluster N`` path: spawn N member daemons and run
    the fingerprint-routing front end on ``--socket``."""
    from repro.service.cluster import serve_cluster

    if not args.socket:
        raise SystemExit("--serve-cluster requires --socket (router address)")
    if args.members:
        members = [m.strip() for m in args.members.split(",") if m.strip()]
        if len(members) != args.serve_cluster:
            raise SystemExit(
                f"--members lists {len(members)} addresses but "
                f"--serve-cluster asked for {args.serve_cluster}"
            )
    print(
        f"repro layout cluster v{__version__} -- "
        f"{args.serve_cluster} members, replicas={args.replicas}, "
        f"portfolio [{', '.join(config.schemes)}], "
        f"workers={args.workers}/member, router on {args.socket}",
        file=sys.stderr,
        flush=True,
    )
    base_dir = args.socket + ".members"
    os.makedirs(base_dir, exist_ok=True)
    try:
        return serve_cluster(
            args.serve_cluster,
            base_dir,
            args.socket,
            replicas=args.replicas,
            config=config,
            options=benchmark_build_options(),
            trace_log=args.trace_log,
            members=(
                [m.strip() for m in args.members.split(",") if m.strip()]
                if args.members
                else None
            ),
            workers=args.workers,
            max_inflight=args.max_inflight,
            shards=args.shards,
            cache_dir=None if args.no_cache else args.cache_dir,
            ttl_seconds=args.ttl,
        )
    except KeyboardInterrupt:
        return 0


def _run_router(args, config) -> int:
    """The ``--serve --members ...`` path: front an already-running
    member set with the routing front end (no members are spawned)."""
    import asyncio

    from repro.service.cluster import ClusterConfig, ClusterRouter

    if not args.socket:
        raise SystemExit("a router needs --socket (its listen address)")
    members = tuple(m.strip() for m in args.members.split(",") if m.strip())
    if not members:
        raise SystemExit("--members needs at least one address")
    print(
        f"repro layout router v{__version__} -- fronting "
        f"{len(members)} members, replicas={args.replicas}, "
        f"listening on {args.socket}",
        file=sys.stderr,
        flush=True,
    )
    router = ClusterRouter(
        ClusterConfig(members=members, replicas=args.replicas),
        options=benchmark_build_options(),
        trace_log=args.trace_log,
    )
    try:
        asyncio.run(router.serve_address(args.socket))
        return 0
    except KeyboardInterrupt:
        return 0


def _run_evaluation(args, config, programs, cache, client=None) -> int:
    """Serve the batch as 'evaluate' requests and print the price list."""
    from repro.eval import available_cost_models
    from repro.service.evaluate import (
        EvaluationRequest,
        parse_hierarchy_overrides,
        run_evaluation_batch,
    )

    if args.cost_model not in available_cost_models():
        raise SystemExit(
            f"unknown cost model {args.cost_model!r}; "
            f"know {', '.join(available_cost_models())}"
        )
    if args.sim_cap is not None and args.sim_cap <= 0:
        raise SystemExit("--sim-cap must be positive")
    try:
        hierarchy = (
            parse_hierarchy_overrides(args.hierarchy) if args.hierarchy else None
        )
        requests = [
            EvaluationRequest(
                program=program,
                cost_model=args.cost_model,
                hierarchy=hierarchy,
                max_iterations_per_nest=args.sim_cap,
            )
            for program in programs
        ]
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"repro layout service v{__version__} -- evaluate "
        f"[{args.cost_model}] portfolio [{', '.join(config.schemes)}], "
        f"hierarchy={'paper' if hierarchy is None else args.hierarchy}, "
        f"workers={args.workers}, "
        f"cache={_cache_label(args, cache, client)}"
    )
    results = run_evaluation_batch(
        requests,
        config=config,
        options=benchmark_build_options(),
        cache=cache,
        workers=args.workers,
        client=client,
    )
    for result in results:
        source = "cache" if result.from_cache else (
            f"winner={result.winner}" if result.winner else "explicit-layouts"
        )
        print(
            f"  {result.program:<12} {source:<24} "
            f"{result.value:>16,.0f} {result.unit:<16} "
            f"{result.seconds * 1000:8.1f}ms"
        )
        report = result.details.get("cache_report")
        if args.verbose and report:
            rates = "  ".join(
                f"{level} {100.0 * stats.get('hit_rate', 0.0):.1f}%"
                for level, stats in report.items()
            )
            print(f"      hit rates: {rates}")
    if cache is not None:
        cache.save()
    if client is not None:
        client.close()
    return 0


def _cache_label(args, cache, client) -> str:
    if client is not None:
        return f"daemon {args.connect}"
    return "off" if cache is None else args.cache

"""The resident solver daemon: an async streaming front end.

``python -m repro.service`` used to be a one-shot batch CLI: every
invocation paid process-pool spin-up, re-read the JSON cache from
disk, and exited.  The daemon keeps all of that resident:

* a **persistent** :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers hold warm state -- a reusable
  :class:`~repro.service.portfolio.PortfolioSolver` and
  :class:`~repro.service.evaluate.EvaluationService` instance plus a
  bounded ``fingerprint -> LayoutNetwork`` memo -- so repeat requests
  never rebuild or recompile a constraint network;
* a **sharded** :class:`~repro.service.cache.ShardedResultCache`
  consulted in the parent, so warm requests answer without touching a
  worker at all;
* an **asyncio** serving loop reading JSON-lines requests (see
  :mod:`repro.service.stream`) from a unix socket or stdin, answering
  out of order as work completes;
* **backpressure** via a bounded in-flight semaphore: when
  ``max_inflight`` requests are being served, the daemon stops
  *reading* from the connection, the socket buffer fills, and the
  client's writes block -- flow control falls out of TCP/pipe
  semantics instead of an unbounded queue;
* **in-flight deduplication**: concurrent identical misses (same
  fingerprint and config token) share one worker dispatch.

The batch front end stays available -- ``run_batch(..., client=...)``
turns it into a thin client of a running daemon.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import multiprocessing
import os
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro import __version__
from repro.csp.vectorized import native_available, numpy_available, unlink_shared
from repro.ir.program import Program
from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    TraceJsonWriter,
    capture,
    prometheus_text,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.obs.trace import NOOP_SPAN, Span
from repro.opt.passes.base import PASS_SECONDS_METRIC
from repro.opt.network_builder import BuildOptions
from repro.service import stream
from repro.service.cache import ShardedResultCache
from repro.service.routing import (
    DEFAULT_VIRTUAL_NODES,
    HashRing,
    open_address,
    parse_address,
    reclaim_stale_socket,
)
from repro.service.evaluate import (
    EvaluationRequest,
    EvaluationService,
    hierarchy_from_overrides,
)
from repro.service.fingerprint import request_fingerprint
from repro.service.portfolio import PortfolioConfig, PortfolioSolver
from repro.service.stream import ProtocolError

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DaemonConfig:
    """Resident-service knobs (the portfolio itself lives in
    :class:`~repro.service.portfolio.PortfolioConfig`).

    Attributes:
        workers: size of the persistent solve/evaluate process pool.
        max_inflight: bound on concurrently served requests; beyond it
            the daemon stops reading and lets the transport push back.
        shards: result-cache shard count.
        cache_dir: shard persistence directory (None = memory only).
        cache_capacity: LRU bound per shard.
        ttl_seconds: optional per-entry time-to-live.
        network_memo: per-worker bound on memoized built networks.
        save_every: persist dirty shards after this many fresh stores
            (and always on shutdown).
        max_shared_kernels: bound on live shared-memory kernel
            segments; beyond it the least-recently-served fingerprint's
            segment is unlinked (workers still holding it keep their
            mapping; the next miss republishes).  Keeps ``/dev/shm``
            bounded on a long-lived daemon serving many distinct
            programs.
        peers: all cluster member addresses (unix paths or
            ``host:port``), *including this daemon's own*.  Empty
            (the default) runs a classic standalone daemon.  When set,
            a cache miss on a fingerprint owned by another member asks
            that owner's cache first -- one bounded hop over the same
            wire protocol, never recursive -- before paying a solve.
        self_address: this member's own entry in ``peers``.
        peer_timeout: bound on one peer cache-lookup hop; on timeout
            or connection loss the member simply solves locally.
        virtual_nodes: consistent-hash ring points per member (must
            match across the cluster so everyone routes identically).
    """

    workers: int = 2
    max_inflight: int = 32
    shards: int = 4
    cache_dir: str | None = None
    cache_capacity: int = 1024
    ttl_seconds: float | None = None
    network_memo: int = 64
    save_every: int = 64
    max_shared_kernels: int = 64
    peers: tuple[str, ...] = ()
    self_address: str | None = None
    peer_timeout: float = 5.0
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be positive")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if self.network_memo < 1:
            raise ValueError("network_memo must be positive")
        if self.save_every < 1:
            raise ValueError("save_every must be positive")
        if self.max_shared_kernels < 1:
            raise ValueError("max_shared_kernels must be positive")
        if self.peers:
            if self.self_address is None:
                raise ValueError("clustered daemons need self_address")
            if self.self_address not in self.peers:
                raise ValueError(
                    f"self_address {self.self_address!r} missing from peers"
                )
        if self.peer_timeout <= 0:
            raise ValueError("peer_timeout must be positive")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")


# -- warm worker processes ----------------------------------------------

#: Per-process state of one pool worker, built once by the initializer
#: and reused for every request the worker ever serves.
_WORKER_STATE: dict | None = None


class _BoundedMemo(OrderedDict):
    """A tiny LRU mapping: the per-worker built-network memo."""

    def __init__(self, capacity: int):
        super().__init__()
        self._capacity = capacity

    def get(self, key, default=None):
        value = super().get(key, default)
        if key in self:
            self.move_to_end(key)
        return value

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self._capacity:
            self.popitem(last=False)


def _init_worker(
    config: PortfolioConfig, options: BuildOptions, memo_capacity: int
) -> None:
    """Pool initializer: build the reusable per-process serving state.

    Workers opt into shared vectorized kernels: the first worker to
    serve a fingerprint publishes the numpy planes into a
    shared-memory segment and its siblings attach zero-copy (the
    daemon parent unlinks the segments it saw at shutdown).
    """
    global _WORKER_STATE
    network_memo = _BoundedMemo(memo_capacity)
    _WORKER_STATE = {
        "solver": PortfolioSolver(
            config,
            options=options,
            network_cache=network_memo,
            shared_kernels=True,
        ),
        "evaluator": EvaluationService(
            config=config,
            options=options,
            network_cache=network_memo,
            shared_kernels=True,
        ),
        "networks": network_memo,
    }


def _worker_solve(program: Program, fingerprint: str) -> dict:
    """Serve one solve miss on a warm worker.

    The solve runs inside an observability capture: the worker's span
    tree and metric delta ship back piggybacked on the result
    (``telemetry`` is a sibling of ``result``, so it is never cached
    and never reaches the client wire form).
    """
    with capture("worker_solve", fingerprint=fingerprint) as telemetry:
        result = _WORKER_STATE["solver"].optimize(
            program, fingerprint=fingerprint
        )
    return {
        "result": result.to_dict(),
        "exact": result.exact,
        "engine": result.engine,
        "kernel_source": result.kernel_source,
        "telemetry": telemetry.telemetry(),
    }


def _worker_evaluate(request: EvaluationRequest) -> dict:
    """Serve one evaluate miss on a warm worker."""
    with capture("worker_evaluate") as telemetry:
        result = _WORKER_STATE["evaluator"].evaluate(request)
    return {
        "result": result.to_dict(),
        "exact": result.exact,
        "engine": result.engine,
        "kernel_source": result.kernel_source,
        "telemetry": telemetry.telemetry(),
    }


def _pool_context():
    """``fork`` keeps worker start cheap and warm (inherited imports);
    platforms without it use the default context."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# -- the daemon ----------------------------------------------------------


class SolverDaemon:
    """A resident, async, streaming layout-solver service.

    Args:
        config: portfolio raced for solve misses (and evaluate
            requests without explicit layouts).
        options: network-construction options shared by all requests.
        daemon_config: resident-service knobs (pool size, shards,
            backpressure bound, TTL, persistence directory).
        cache: pre-built result cache to serve from; by default one is
            constructed from ``daemon_config`` (sharded, persistent
            when ``cache_dir`` is set).  Passing a cache explicitly is
            how benchmarks warm a daemon from a cold batch run.
        trace_log: path (or writable stream) receiving one JSON line
            per served solve/evaluate request's span tree.  Setting it
            also makes every request record a real span tree even when
            the client did not ask for ``"trace": true``.
    """

    def __init__(
        self,
        config: PortfolioConfig | None = None,
        options: BuildOptions | None = None,
        daemon_config: DaemonConfig | None = None,
        cache=None,
        trace_log=None,
    ):
        self._config = config if config is not None else PortfolioConfig()
        self._options = options if options is not None else BuildOptions()
        self._daemon_config = (
            daemon_config if daemon_config is not None else DaemonConfig()
        )
        if cache is not None:
            self.cache = cache
        else:
            self.cache = ShardedResultCache(
                shards=self._daemon_config.shards,
                capacity=self._daemon_config.cache_capacity,
                directory=self._daemon_config.cache_dir,
                ttl_seconds=self._daemon_config.ttl_seconds,
            )
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: asyncio.Semaphore | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._shutdown = asyncio.Event()
        # Monotonic, so a system clock step never makes uptime jump
        # (or go negative) in `stats`.
        self._started_at = time.monotonic()
        self._unsaved_stores = 0
        #: The daemon's own metrics registry: request latency recorded
        #: by the event loop, plus every worker's shipped delta folded
        #: in by the dedup owner.  Explicit (not the module-global
        #: convenience API) because the async loop interleaves
        #: requests on one thread.
        self.registry = MetricsRegistry()
        self._trace_writer = (
            TraceJsonWriter(trace_log) if trace_log is not None else None
        )
        # Ordered set (dict keys) of fingerprints with a live shared
        # kernel segment, least-recently-served first.
        self._shared_segments: dict[str, None] = {}
        self.counters = {
            "requests": 0,
            "solve": 0,
            "evaluate": 0,
            "cache_served": 0,
            "deduplicated": 0,
            "errors": 0,
        }
        #: Per-engine serving breakdown of worker-dispatched misses:
        #: which propagation engine ran, and how each worker obtained
        #: its vectorized kernel (shared-memory attach vs publish vs
        #: local build).  `scripts/daemon_smoke.py` asserts on this.
        self.engine_counters = {
            "numpy": 0,
            "bitset": 0,
            "native": 0,
            "shared_attached": 0,
            "shared_published": 0,
            "shared_cached": 0,
            "local": 0,
        }
        #: Split-search serving breakdown: subtree and steal totals
        #: folded from every worker-dispatched miss's outcome table.
        self.split_counters = {"subtrees": 0, "steals": 0}
        #: Cache-peering breakdown (all zero on a standalone daemon):
        #: outbound lookups that hit/missed/errored on the owner, and
        #: inbound ``cache_lookup`` requests this member answered.
        self.peer_counters = {
            "hits": 0,
            "misses": 0,
            "errors": 0,
            "lookups_served": 0,
        }
        #: The cluster ring (None when standalone).  Built from the
        #: same member list every other member and every router uses,
        #: so ownership agrees cluster-wide.
        self._ring: HashRing | None = (
            HashRing(
                self._daemon_config.peers,
                self._daemon_config.virtual_nodes,
            )
            if self._daemon_config.peers
            else None
        )
        # One lazily opened (reader, writer) pair per peer, serialized
        # by a lock so concurrent misses never interleave lines on the
        # same connection.
        self._peer_connections: dict[str, tuple] = {}
        self._peer_locks: dict[str, asyncio.Lock] = {}
        self._peer_seq = 0

    # -- lifecycle -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._daemon_config.workers,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(
                    self._config,
                    self._options,
                    self._daemon_config.network_memo,
                ),
            )
        return self._pool

    def _semaphore(self) -> asyncio.Semaphore:
        if self._inflight is None:
            self._inflight = asyncio.Semaphore(self._daemon_config.max_inflight)
        return self._inflight

    def warm_up(self) -> None:
        """Spin the pool up eagerly (first request pays nothing)."""
        pool = self._ensure_pool()
        # A no-op round through every worker forces initializer runs.
        for _ in pool.map(_noop, range(self._daemon_config.workers)):
            pass

    def close(self) -> None:
        """Persist the cache, release the pool, unlink shared kernels."""
        self.cache.save()
        self._unsaved_stores = 0
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=False, cancel_futures=True)
            # The exit sentinel can race the call-queue feeder thread
            # and leave an idle worker blocked on the queue forever
            # (observed on 3.11; cpython gh-94440 family).  A stuck
            # worker would then deadlock *this* process's interpreter
            # exit, which joins all multiprocessing children -- so
            # give workers a short grace, then terminate stragglers.
            workers = list((getattr(pool, "_processes", None) or {}).values())
            deadline = time.monotonic() + 5.0
            for worker in workers:
                worker.join(max(0.1, deadline - time.monotonic()))
                if worker.is_alive():
                    logger.warning(
                        "terminating pool worker %s stuck past shutdown",
                        worker.pid,
                    )
                    worker.terminate()
        # The daemon owns the lifetime of every kernel segment its
        # workers published (Linux keeps the memory mapped for any
        # process still attached; unlinking only removes the name).
        for fingerprint in list(self._shared_segments):
            unlink_shared(fingerprint)
        self._shared_segments.clear()
        for address in list(self._peer_connections):
            self._drop_peer(address)
        if self._trace_writer is not None:
            self._trace_writer.close()
            self._trace_writer = None

    # -- request handling ------------------------------------------------

    async def handle_line(self, line: str | bytes) -> dict:
        """Serve one raw request line; always returns a response dict."""
        try:
            payload = stream.decode_request(line)
        except ProtocolError as exc:
            self.counters["errors"] += 1
            request_id = _best_effort_id(line)
            return stream.error_response(request_id, str(exc))
        return await self.handle_request(payload)

    async def handle_request(self, payload: dict) -> dict:
        """Serve one decoded request under the in-flight bound."""
        if payload.get("kind") in ("solve", "evaluate"):
            async with self._semaphore():
                return await self._serve_decoded(payload)
        return await self._serve_decoded(payload)

    async def _serve_decoded(self, payload: dict) -> dict:
        """Serve one decoded request; the caller owns any permit."""
        self.counters["requests"] += 1
        request_id = payload.get("id")
        kind = payload["kind"]
        try:
            if kind == "ping":
                return self._hello(request_id)
            if kind == "stats":
                return {
                    "id": request_id,
                    "ok": True,
                    "kind": "stats",
                    "result": self.stats(),
                }
            if kind == "metrics":
                if payload.get("raw"):
                    # Mergeable registry snapshot for cluster roll-up:
                    # the router folds these member-by-member via
                    # MetricsRegistry.merge_snapshot (sum semantics).
                    return {
                        "id": request_id,
                        "ok": True,
                        "kind": "metrics",
                        "result": {"snapshot": self.metrics_snapshot()},
                    }
                return {
                    "id": request_id,
                    "ok": True,
                    "kind": "metrics",
                    "result": {
                        "text": prometheus_text(self.metrics_snapshot()),
                        "content_type": CONTENT_TYPE,
                    },
                }
            if kind == "cache_lookup":
                return self._handle_cache_lookup(payload)
            if kind == "shutdown":
                self._shutdown.set()
                return {"id": request_id, "ok": True, "kind": "shutdown"}
            if kind == "solve":
                return await self._handle_solve(payload)
            return await self._handle_evaluate(payload)
        except ProtocolError as exc:
            self.counters["errors"] += 1
            return stream.error_response(request_id, str(exc))
        except Exception as exc:  # worker/validation failures stay on-wire
            self.counters["errors"] += 1
            logger.exception("request %r failed", request_id)
            return stream.error_response(request_id, repr(exc))

    def _hello(self, request_id) -> dict:
        result = {
            "version": __version__,
            "schemes": list(self._config.schemes),
            "workers": self._daemon_config.workers,
            "max_inflight": self._daemon_config.max_inflight,
            "numpy": numpy_available(),
            "native": native_available(),
            "shards": self.cache.shard_count
            if hasattr(self.cache, "shard_count")
            else 1,
        }
        if self._ring is not None:
            result["cluster"] = {
                "self": self._daemon_config.self_address,
                "members": list(self._ring.members),
                "virtual_nodes": self._ring.virtual_nodes,
            }
        return {
            "id": request_id,
            "ok": True,
            "kind": "ping",
            "result": result,
        }

    def _handle_cache_lookup(self, payload: dict) -> dict:
        """Answer a peer's cache probe from the *local* cache only.

        Deliberately never consults the pool, the pending-dispatch
        table, or other peers: the reply is cheap (control path, no
        in-flight permit) and peering stays one bounded hop -- a
        member asking an owner can never trigger a further hop.
        """
        self.peer_counters["lookups_served"] += 1
        cached = self.cache.get(payload["fingerprint"], payload["token"])
        response = {
            "id": payload.get("id"),
            "ok": True,
            "kind": "cache_lookup",
            "hit": cached is not None,
        }
        if cached is not None:
            response["result"] = cached
        return response

    def stats(self) -> dict:
        """Serving counters plus cache statistics and engine breakdown."""
        snapshot = {
            "uptime_seconds": time.monotonic() - self._started_at,
            "counters": dict(self.counters),
            "engines": dict(self.engine_counters),
            "split": dict(self.split_counters),
            "peer": dict(self.peer_counters),
            "cache": {
                "entries": len(self.cache),
                **self.cache.stats.as_dict(),
            },
            "passes": self._pass_stats(),
        }
        if hasattr(self.cache, "bytes_on_disk"):
            snapshot["cache"]["bytes_on_disk"] = self.cache.bytes_on_disk()
        if hasattr(self.cache, "shard_stats"):
            snapshot["cache"]["shards"] = self.cache.shard_stats()
        if self._ring is not None:
            snapshot["cluster"] = {
                "self": self._daemon_config.self_address,
                "members": list(self._ring.members),
            }
        return snapshot

    def _pass_stats(self) -> dict:
        """Per-pass wall clock accumulated from worker telemetry.

        Workers run the optimizer phases under the shared
        ``repro_pass_seconds{pass}`` histogram; their per-request
        metric deltas are merged into the daemon registry, so the
        breakdown here covers every solve the daemon dispatched.
        """
        passes: dict[str, dict] = {}
        for name, label_items, instrument in self.registry.iter_metrics():
            if name != PASS_SECONDS_METRIC:
                continue
            label = dict(label_items).get("pass", "")
            passes[label] = {
                "seconds": instrument.sum,
                "count": instrument.count,
            }
        return passes

    def metrics_snapshot(self) -> dict:
        """One coherent exposition-ready snapshot of everything.

        Folds the live registry (request latency + accumulated worker
        deltas) together with the serving counters, the per-engine
        breakdown, and per-shard cache statistics -- always into a
        *fresh* registry, so scraping twice never double-counts: each
        scrape re-derives totals from the live sources of truth.
        """
        registry = MetricsRegistry()
        registry.merge_snapshot(self.registry.snapshot())
        registry.gauge(
            "repro_daemon_uptime_seconds",
            help="Seconds since the daemon object was constructed.",
        ).set(time.monotonic() - self._started_at)
        for event, count in self.counters.items():
            registry.counter(
                "repro_daemon_requests_total",
                {"event": event},
                help="Requests served, by lifecycle event.",
            ).inc(count)
        for engine, count in self.engine_counters.items():
            registry.counter(
                "repro_daemon_engine_total",
                {"engine": engine},
                help="Worker-dispatched misses by engine and kernel source.",
            ).inc(count)
        for event, count in self.split_counters.items():
            registry.counter(
                "repro_daemon_split_total",
                {"event": event},
                help="Split-search subtrees run and steals, from misses.",
            ).inc(count)
        for event, count in self.peer_counters.items():
            registry.counter(
                "repro_cluster_peer_total",
                {"event": event},
                help="Cache-peering lookups by outcome (outbound "
                "hit/miss/error, inbound lookups_served).",
            ).inc(count)
        if hasattr(self.cache, "shard_stats"):
            shard_rows = self.cache.shard_stats()
        else:
            shard_rows = [
                {"shard": 0, "entries": len(self.cache), **self.cache.stats.as_dict()}
            ]
        for row in shard_rows:
            labels = {"shard": str(row["shard"])}
            registry.gauge(
                "repro_cache_entries",
                labels,
                help="Live entries per result-cache shard.",
            ).set(row.get("entries", 0))
            if "bytes_on_disk" in row:
                registry.gauge(
                    "repro_cache_bytes_on_disk",
                    labels,
                    help="Persisted bytes per result-cache shard.",
                ).set(row["bytes_on_disk"])
            for field in (
                "hits",
                "misses",
                "stores",
                "evictions",
                "expirations",
                "saves",
                "merge_saves",
            ):
                registry.counter(
                    f"repro_cache_{field}_total",
                    labels,
                    help=f"Result-cache {field.replace('_', '-')} per shard.",
                ).inc(row.get(field, 0))
        return registry.snapshot()

    def _record_engine(self, fingerprint: str, data: dict) -> None:
        """Fold one worker miss's engine telemetry into the breakdown."""
        engine = data.get("engine")
        if engine in ("numpy", "bitset", "native"):
            self.engine_counters[engine] += 1
        source = data.get("kernel_source")
        key = {
            "attached": "shared_attached",
            "published": "shared_published",
            "cached": "shared_cached",
            "local": "local",
        }.get(source)
        if key is not None:
            self.engine_counters[key] += 1
        if source in ("attached", "published", "cached"):
            self._shared_segments.pop(fingerprint, None)
            self._shared_segments[fingerprint] = None
            while len(self._shared_segments) > self._daemon_config.max_shared_kernels:
                oldest = next(iter(self._shared_segments))
                del self._shared_segments[oldest]
                unlink_shared(oldest)

    def _record_split(self, data: dict) -> None:
        """Fold split-search effort from a worker miss's outcome table.

        Derived from the result payload (not the shipped metric delta)
        so the breakdown works even when a worker ran with metrics
        disabled; the registry's ``repro_split_*`` counters arrive
        separately via the telemetry merge and are deliberately not
        re-derived here.  Owner-only, like `_record_engine`.
        """
        result = data.get("result") or {}
        for outcome in result.get("outcomes", ()):
            stats = outcome.get("stats") or {}
            self.split_counters["subtrees"] += int(stats.get("subtrees", 0))
            self.split_counters["steals"] += int(stats.get("steals", 0))

    def _request_span(self, payload: dict, kind: str):
        """A real root span when anyone will look at it, else the no-op.

        Real when the client asked (``"trace": true``) or the daemon
        tees span trees to a trace log; otherwise requests pay the
        shared no-op span's one-branch cost.
        """
        if payload.get("trace") or self._trace_writer is not None:
            return Span(f"request:{kind}", attributes={"kind": kind})
        return NOOP_SPAN

    def _finish(self, root, payload: dict, response: dict, start: float) -> dict:
        """Stamp latency, record it, and flush/attach the span tree."""
        seconds = time.perf_counter() - start
        response["seconds"] = seconds
        self.registry.histogram(
            "repro_request_seconds",
            {"kind": response["kind"]},
            help="Daemon request latency by request kind.",
            bounds=DEFAULT_LATENCY_BUCKETS,
        ).observe(seconds)
        if root:
            root.set_attribute("id", payload.get("id"))
            root.set_attribute("from_cache", response.get("from_cache", False))
            root.end()
            if self._trace_writer is not None:
                self._trace_writer.write(root.to_dict())
            if payload.get("trace"):
                response["trace"] = root.to_dict()
        return response

    async def _handle_solve(self, payload: dict) -> dict:
        start = time.perf_counter()
        self.counters["solve"] += 1
        root = self._request_span(payload, "solve")
        with root.phase("decode"):
            program = stream.program_from_wire(payload["program"])
        with root.phase("fingerprint"):
            fingerprint = request_fingerprint(program, self._options)
            token = self._config.token()
        with root.phase("cache_lookup"):
            cached = self.cache.get(fingerprint, token)
        peer = None
        if cached is None:
            cached, peer = await self._maybe_peer_lookup(
                root, fingerprint, token
            )
        if cached is not None:
            self.counters["cache_served"] += 1
            with root.phase("encode"):
                result = dict(cached)
                result["program"] = program.name  # may be a renamed twin
            response = {
                "id": payload.get("id"),
                "ok": True,
                "kind": "solve",
                "from_cache": True,
                "result": result,
            }
            if peer is not None:
                response["peer"] = peer
            return self._finish(root, payload, response, start)
        data = await self._dispatch(
            fingerprint, token, root, _worker_solve, program, fingerprint
        )
        with root.phase("encode"):
            result = dict(data["result"])
            result["program"] = program.name
        response = {
            "id": payload.get("id"),
            "ok": True,
            "kind": "solve",
            "from_cache": False,
            "result": result,
        }
        return self._finish(root, payload, response, start)

    async def _handle_evaluate(self, payload: dict) -> dict:
        start = time.perf_counter()
        self.counters["evaluate"] += 1
        root = self._request_span(payload, "evaluate")
        with root.phase("decode"):
            program = stream.program_from_wire(payload["program"])
            request = _evaluation_request(program, payload)
        with root.phase("fingerprint"):
            fingerprint = request_fingerprint(program, self._options)
            token = request.token(self._config.token())
        with root.phase("cache_lookup"):
            cached = self.cache.get(fingerprint, token)
        peer = None
        if cached is None:
            cached, peer = await self._maybe_peer_lookup(
                root, fingerprint, token
            )
        if cached is not None:
            self.counters["cache_served"] += 1
            with root.phase("encode"):
                result = dict(cached)
                result["program"] = program.name
            response = {
                "id": payload.get("id"),
                "ok": True,
                "kind": "evaluate",
                "from_cache": True,
                "result": result,
            }
            if peer is not None:
                response["peer"] = peer
            return self._finish(root, payload, response, start)
        data = await self._dispatch(
            fingerprint, token, root, _worker_evaluate, request
        )
        with root.phase("encode"):
            result = dict(data["result"])
            result["program"] = program.name
        response = {
            "id": payload.get("id"),
            "ok": True,
            "kind": "evaluate",
            "from_cache": False,
            "result": result,
        }
        return self._finish(root, payload, response, start)

    def _merge_worker_telemetry(self, data: dict) -> None:
        """Fold a worker's shipped metric delta into the live registry.

        Owner-only (like `_record_engine`): the merge is a sum, so the
        fold must see each worker capture exactly once.
        """
        telemetry = data.get("telemetry")
        if telemetry and telemetry.get("metrics"):
            self.registry.merge_snapshot(telemetry["metrics"])

    async def _dispatch(
        self, fingerprint: str, token: str, request_span, worker_fn, *args
    ) -> dict:
        """Run a miss on the warm pool, deduplicating concurrent twins.

        Only the dedup *owner* (the task that actually dispatched to
        the pool) stores the result -- twins share the answer without
        re-storing it, so store counters and the periodic shard
        persistence see each fresh result exactly once.
        """
        key = f"{fingerprint}|{token}"
        existing = self._pending.get(key)
        if existing is not None:
            self.counters["deduplicated"] += 1
            with request_span.phase("dedup_wait") as wait_span:
                data = await asyncio.shield(existing)
            # Every request's trace shows the worker's phases, twin or
            # not (adopt() builds fresh Span objects per call, so the
            # owner's and each twin's trees never alias).
            _adopt_worker_spans(wait_span, data)
            return data
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[key] = future
        try:
            with request_span.phase("dispatch") as dispatch_span:
                data = await loop.run_in_executor(
                    self._ensure_pool(), worker_fn, *args
                )
            # Only the owner records: dedup twins share this payload,
            # and one worker miss must count once in the breakdown.
            self._record_engine(fingerprint, data)
            self._record_split(data)
            self._merge_worker_telemetry(data)
            _adopt_worker_spans(dispatch_span, data)
            if data["exact"]:
                self._store(fingerprint, token, data["result"])
            future.set_result(data)
            return data
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # A twin may or may not be waiting; don't warn if not.
                future.exception()
            raise
        finally:
            self._pending.pop(key, None)

    def _store(self, fingerprint: str, token: str, value: dict) -> None:
        """Cache a fresh exact result; persist shards periodically."""
        self.cache.put(fingerprint, token, value)
        self._unsaved_stores += 1
        if self._unsaved_stores >= self._daemon_config.save_every:
            self.cache.save()
            self._unsaved_stores = 0

    # -- cache peering ---------------------------------------------------

    async def _maybe_peer_lookup(
        self, root, fingerprint: str, token: str
    ) -> tuple[dict | None, str | None]:
        """Ask the fingerprint's owner for its cached result (one hop).

        Returns ``(cached, owner)``; ``(None, None)`` when standalone,
        when this member *is* the owner, or on a peer miss/failure --
        every degradation lands on the same safe path: solve locally.
        A peer hit is served without re-storing locally, so the entry
        keeps living exactly once (on its owner).
        """
        if self._ring is None:
            return None, None
        owner = self._ring.owner(fingerprint)
        if owner == self._daemon_config.self_address:
            return None, None
        with root.phase("peer_lookup", owner=owner):
            cached = await self._peer_lookup(owner, fingerprint, token)
        if cached is None:
            return None, None
        return cached, owner

    async def _peer_lookup(
        self, owner: str, fingerprint: str, token: str
    ) -> dict | None:
        """One bounded ``cache_lookup`` hop to a peer; None on miss or
        any failure (timeout, connection loss, malformed reply)."""
        self._peer_seq += 1
        payload = stream.cache_lookup_request(
            fingerprint, token, request_id=f"peer-{self._peer_seq}"
        )
        try:
            response = await asyncio.wait_for(
                self._peer_request(owner, payload),
                timeout=self._daemon_config.peer_timeout,
            )
        except (OSError, ValueError, asyncio.TimeoutError) as exc:
            self.peer_counters["errors"] += 1
            self._drop_peer(owner)
            logger.warning("peer cache lookup at %s failed: %r", owner, exc)
            return None
        if response.get("ok") and response.get("hit"):
            self.peer_counters["hits"] += 1
            return response.get("result")
        self.peer_counters["misses"] += 1
        return None

    async def _peer_request(self, address: str, payload: dict) -> dict:
        """One request/response over this member's peer connection.

        The per-peer lock serializes concurrent misses onto the one
        connection; the id check catches a stale line left behind by a
        timed-out predecessor (the connection is dropped and rebuilt
        rather than served out of step).
        """
        lock = self._peer_locks.setdefault(address, asyncio.Lock())
        async with lock:
            connection = self._peer_connections.get(address)
            if connection is None:
                connection = await open_address(address)
                self._peer_connections[address] = connection
            reader, writer = connection
            writer.write(stream.encode_response(payload))
            await writer.drain()
            line = await reader.readline()
        if not line:
            raise ConnectionError(f"peer {address} closed the connection")
        response = json.loads(line)
        if response.get("id") != payload["id"]:
            raise ConnectionError(
                f"peer {address} answered out of step; resetting"
            )
        return response

    def _drop_peer(self, address: str) -> None:
        connection = self._peer_connections.pop(address, None)
        if connection is not None:
            with contextlib.suppress(Exception):
                connection[1].close()

    # -- serving loops ---------------------------------------------------

    async def _next_line(self, read_line) -> bytes:
        """One line, or b"" on EOF *or* shutdown (whichever first).

        Racing the read against the shutdown event means a ``shutdown``
        request served on any connection unblocks every other reader
        -- including a stdio daemon whose client keeps stdin open.
        """
        read_task = asyncio.ensure_future(read_line())
        shutdown_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            await asyncio.wait(
                {read_task, shutdown_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            shutdown_task.cancel()
        if read_task.done():
            return read_task.result()
        read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await read_task
        return b""

    async def _acquire_or_shutdown(self) -> bool:
        """Wait for a serving permit; False when shutdown wins the wait."""
        acquire_task = asyncio.ensure_future(self._semaphore().acquire())
        shutdown_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            await asyncio.wait(
                {acquire_task, shutdown_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            shutdown_task.cancel()
        if not acquire_task.done():
            acquire_task.cancel()
            return False
        if self._shutdown.is_set():
            self._semaphore().release()
            return False
        return True

    async def _serve_stream(self, read_line, write_line) -> None:
        """Core loop: read lines, serve each as its own task, stream
        responses back in completion order.

        Backpressure is event-driven: a solve/evaluate line is only
        *read into a task* once an in-flight permit is held, so a full
        daemon stops reading and the transport pushes back on the
        client.  Control kinds (ping/stats/shutdown) bypass the bound:
        a saturated daemon stays inspectable and stoppable.
        """
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(response: dict) -> None:
            async with write_lock:
                await write_line(stream.encode_response(response))

        async def serve_decoded(payload: dict, permit: bool) -> None:
            try:
                response = await self._serve_decoded(payload)
            finally:
                if permit:
                    self._semaphore().release()
            await respond(response)

        def spawn(coroutine) -> None:
            task = asyncio.create_task(coroutine)
            tasks.add(task)
            task.add_done_callback(tasks.discard)

        while not self._shutdown.is_set():
            line = await self._next_line(read_line)
            if not line:  # EOF or shutdown
                break
            if not line.strip():
                continue
            try:
                payload = stream.decode_request(line)
            except ProtocolError as exc:
                self.counters["requests"] += 1
                self.counters["errors"] += 1
                spawn(respond(stream.error_response(_best_effort_id(line), str(exc))))
                continue
            if payload["kind"] in ("solve", "evaluate"):
                if not await self._acquire_or_shutdown():
                    break
                spawn(serve_decoded(payload, permit=True))
            else:
                spawn(serve_decoded(payload, permit=False))
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one socket connection until EOF or shutdown."""

        async def write_line(data: bytes) -> None:
            writer.write(data)
            await writer.drain()

        try:
            await self._serve_stream(reader.readline, write_line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def serve_unix(self, socket_path: str) -> None:
        """Listen on a unix socket until a ``shutdown`` request.

        The socket file is removed on exit.  A stale file left by a
        SIGKILL-ed predecessor is reclaimed on entry -- but only after
        a probe connection confirms nothing live is accepting on it
        (:func:`~repro.service.routing.reclaim_stale_socket`), so two
        daemons can never silently fight over one path.
        """
        reclaim_stale_socket(socket_path)
        self.warm_up()
        server = await asyncio.start_unix_server(
            self.serve_connection, path=socket_path
        )
        logger.info("daemon listening on %s", socket_path)
        try:
            async with server:
                await self._shutdown.wait()
                # Give connection tasks a beat to flush their final
                # (shutdown-acknowledging) response lines.
                await asyncio.sleep(0.05)
        finally:
            with contextlib.suppress(OSError):
                os.unlink(socket_path)
            self.close()

    async def serve_tcp(self, host: str, port: int) -> None:
        """Listen on a TCP socket until a ``shutdown`` request
        (cluster members spanning hosts route over TCP; same wire
        protocol, same loop as :meth:`serve_unix`)."""
        self.warm_up()
        server = await asyncio.start_server(
            self.serve_connection, host=host, port=port
        )
        logger.info("daemon listening on %s:%d", host, port)
        try:
            async with server:
                await self._shutdown.wait()
                await asyncio.sleep(0.05)
        finally:
            self.close()

    async def serve_address(self, address: str) -> None:
        """Serve one member address (unix path or ``host:port``)."""
        parsed = parse_address(address)
        if parsed[0] == "unix":
            await self.serve_unix(parsed[1])
        else:
            await self.serve_tcp(parsed[1], parsed[2])

    async def serve_stdio(self) -> None:
        """Serve JSON lines from stdin to stdout (one-shot pipelines:
        ``printf '...requests...' | python -m repro.service --serve``).

        Reads via a daemon pump thread feeding a *bounded* asyncio
        queue, so stdin may be a pipe, a redirected regular file, or a
        tty; the queue bound keeps stdin backpressure real, awaiting
        the queue stays cancellable (a ``shutdown`` request exits even
        while the client holds stdin open), and the pump thread dies
        with the process instead of pinning interpreter exit.
        """
        loop = asyncio.get_running_loop()
        self.warm_up()
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=self._daemon_config.max_inflight
        )

        def pump() -> None:
            try:
                for line in iter(sys.stdin.buffer.readline, b""):
                    asyncio.run_coroutine_threadsafe(queue.put(line), loop).result()
            except (RuntimeError, OSError):  # loop closed mid-shutdown
                return
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(queue.put_nowait, b"")

        threading.Thread(
            target=pump, daemon=True, name="repro-stdin-pump"
        ).start()

        async def write_line(data: bytes) -> None:
            sys.stdout.buffer.write(data)
            sys.stdout.buffer.flush()

        try:
            await self._serve_stream(queue.get, write_line)
        finally:
            self.close()


def _noop(_: int) -> None:
    """Pool warm-up probe (must be a picklable top-level function)."""
    return None


def _adopt_worker_spans(parent, data: dict) -> None:
    """Re-parent a worker's shipped span tree under a request phase."""
    if not parent:
        return
    telemetry = data.get("telemetry") or {}
    for payload in telemetry.get("spans", ()):
        if payload:
            with contextlib.suppress(ValueError):
                parent.adopt(payload)


def _best_effort_id(line: str | bytes):
    """Recover a request id from an invalid line, when possible."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(payload, dict):
        return payload.get("id")
    return None


def _evaluation_request(program: Program, payload: dict) -> EvaluationRequest:
    """Decode the evaluate-specific request fields.

    Raises:
        ProtocolError: for malformed fields (so the daemon answers
            with an error line instead of a stack trace).
    """
    hierarchy = None
    if payload.get("hierarchy") is not None:
        overrides = payload["hierarchy"]
        if not isinstance(overrides, dict):
            raise ProtocolError("'hierarchy' must be a field-override object")
        try:
            hierarchy = hierarchy_from_overrides(overrides)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    layouts = None
    if payload.get("layouts") is not None:
        if not isinstance(payload["layouts"], dict):
            raise ProtocolError("'layouts' must be an object")
        layouts = stream.layouts_from_wire(payload["layouts"])
    sim_cap = payload.get("sim_cap")
    if sim_cap is not None and (isinstance(sim_cap, bool) or not isinstance(sim_cap, int)):
        raise ProtocolError("'sim_cap' must be an integer")
    cost_model = payload.get("cost_model", "simulated")
    if not isinstance(cost_model, str):
        raise ProtocolError("'cost_model' must be a string")
    try:
        return EvaluationRequest(
            program=program,
            cost_model=cost_model,
            hierarchy=hierarchy,
            layouts=layouts,
            max_iterations_per_nest=sim_cap,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def serve(
    config: PortfolioConfig | None = None,
    options: BuildOptions | None = None,
    daemon_config: DaemonConfig | None = None,
    socket_path: str | None = None,
    trace_log: str | None = None,
    address: str | None = None,
) -> int:
    """Blocking entry point used by the CLI's ``--serve``.

    ``socket_path`` keeps the historical unix-only spelling;
    ``address`` accepts the cluster vocabulary (unix path *or*
    ``host:port``).  With neither, the daemon serves stdio.
    """
    daemon = SolverDaemon(
        config=config,
        options=options,
        daemon_config=daemon_config,
        trace_log=trace_log,
    )
    if socket_path is not None:
        asyncio.run(daemon.serve_unix(socket_path))
    elif address is not None:
        asyncio.run(daemon.serve_address(address))
    else:
        asyncio.run(daemon.serve_stdio())
    return 0

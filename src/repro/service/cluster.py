"""Fingerprint-routed daemon cluster: the scale-out tier.

One :class:`~repro.service.daemon.SolverDaemon` on one host is the
warm-path ceiling; this module runs N of them as *members* behind
consistent-hash routing of request fingerprints, so each
fingerprint's result-cache entry, network memo, and shared-memory
kernel segment lives on exactly one owner and warm-path reuse
survives scale-out:

* :class:`ClusterRouter` is an asyncio front end speaking the same
  JSON-lines wire protocol as the daemon (:mod:`repro.service.stream`)
  -- clients cannot tell a router from a daemon.  Every solve or
  evaluate line is fingerprinted and forwarded to the fingerprint's
  owner on the :class:`~repro.service.routing.HashRing`; on timeout or
  connection loss the router retries with backoff, then fails over
  through the ring's replica preference list.
* members run cache peering (see ``DaemonConfig.peers``): a member
  handling a miss it does not own asks the owner's cache first over
  one bounded ``cache_lookup`` hop, so even requests that bypass the
  router (a direct :class:`~repro.service.stream.DaemonClient`
  connection) reuse cluster-wide warm state.
* ``stats`` and ``metrics`` requests roll the whole cluster up: member
  registries ship as mergeable snapshots (``"raw": true``) and fold
  into one exposition through
  :meth:`repro.obs.metrics.MetricsRegistry.merge_snapshot` -- the
  merge the metrics layer was designed for.  Router-side
  ``repro_cluster_*`` counters (route hits, peer hits, failovers,
  retries) make the routing behaviour itself observable, and router
  spans thread through the trace layer like daemon spans do.

Single-box clusters (benchmarks, CI smoke, ``--serve-cluster N``) use
:func:`spawn_member`/:func:`member_addresses`: each member is its own
process with its own pool, cache shards, and unix socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro import __version__
from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    TraceJsonWriter,
    prometheus_text,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.obs.trace import NOOP_SPAN, Span
from repro.opt.network_builder import BuildOptions
from repro.service import stream
from repro.service.portfolio import PortfolioConfig
from repro.service.routing import (
    DEFAULT_VIRTUAL_NODES,
    HashRing,
    open_address,
    parse_address,
    reclaim_stale_socket,
)
from repro.service.stream import ProtocolError

logger = logging.getLogger(__name__)

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "member_addresses",
    "spawn_member",
    "serve_cluster",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Router knobs.

    Attributes:
        members: member addresses (unix paths or ``host:port``); the
            ring canonicalizes order, so every router and member built
            from the same set routes identically.
        replicas: how many ring-preference members a request may try
            (owner first, then failover replicas).
        virtual_nodes: ring points per member; must match the members'
            ``DaemonConfig.virtual_nodes``.
        retries: extra attempts per member before failing over.
        backoff_seconds: base sleep between retry attempts (linear:
            ``backoff_seconds * attempt``).
        request_timeout: bound on one forwarded request attempt.
        health_interval: seconds between background member pings.
        health_timeout: bound on one health-check ping.
        max_inflight: bound on concurrently routed solve/evaluate
            requests (control kinds bypass, like the daemon).
    """

    members: tuple[str, ...] = ()
    replicas: int = 2
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    retries: int = 1
    backoff_seconds: float = 0.05
    request_timeout: float = 600.0
    health_interval: float = 2.0
    health_timeout: float = 1.0
    max_inflight: int = 64

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("cluster needs at least one member")
        if self.replicas < 1:
            raise ValueError("replicas must be positive")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.health_interval <= 0:
            raise ValueError("health_interval must be positive")
        if self.health_timeout <= 0:
            raise ValueError("health_timeout must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")


class _MemberChannel:
    """One multiplexed wire connection from the router to a member.

    Many routed requests share the connection concurrently: outgoing
    ids are rewritten to channel-internal ones (clients on different
    connections may reuse ids), a background reader task resolves each
    response line to its waiting future, and the original id is
    restored before the response goes back to the client.
    """

    def __init__(self, address: str):
        self.address = address
        self._reader = None
        self._writer = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._seq = 0
        self._connect_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()

    async def _ensure_connected(self) -> None:
        async with self._connect_lock:
            if self._writer is not None:
                return
            self._reader, self._writer = await open_address(self.address)
            self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    logger.warning(
                        "member %s sent an unparseable line", self.address
                    )
                    continue
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._fail_pending(
                ConnectionError(f"member {self.address} connection lost")
            )

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        self._writer = None
        self._reader = None

    async def request(self, payload: dict, timeout: float) -> dict:
        """Forward one request; returns the member's response with the
        caller's original id restored.

        Raises:
            OSError/ConnectionError: connect or mid-flight failure.
            asyncio.TimeoutError: no response within ``timeout``.
        """
        await self._ensure_connected()
        self._seq += 1
        internal_id = f"r{self._seq}"
        original_id = payload.get("id")
        wire = dict(payload)
        wire["id"] = internal_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[internal_id] = future
        try:
            async with self._write_lock:
                writer = self._writer
                if writer is None:
                    raise ConnectionError(
                        f"member {self.address} connection lost"
                    )
                writer.write(stream.encode_response(wire))
                await writer.drain()
            response = await asyncio.wait_for(future, timeout=timeout)
        finally:
            self._pending.pop(internal_id, None)
        response["id"] = original_id
        return response

    def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
        self._fail_pending(ConnectionError("router shutting down"))


class ClusterRouter:
    """The consistent-hash routing front end over N daemon members.

    Args:
        config: member set and routing knobs.
        options: network-construction options -- must match the
            members', because the routing key is the same canonical
            request fingerprint the members cache under.  (A mismatch
            only costs a peer hop on the member side, never
            correctness.)
        trace_log: path or stream receiving one JSON line per routed
            solve/evaluate span tree.
    """

    def __init__(
        self,
        config: ClusterConfig,
        options: BuildOptions | None = None,
        trace_log=None,
    ):
        self._config = config
        self._options = options if options is not None else BuildOptions()
        self._ring = HashRing(config.members, config.virtual_nodes)
        self._channels = {
            address: _MemberChannel(address) for address in self._ring.members
        }
        #: Last health-check verdict per member; requests prefer
        #: healthy members but will still try an unhealthy owner last
        #: (it may have recovered since the last probe).
        self._healthy = {address: True for address in self._ring.members}
        self._shutdown = asyncio.Event()
        self._started_at = time.monotonic()
        self._inflight: asyncio.Semaphore | None = None
        self.registry = MetricsRegistry()
        self._trace_writer = (
            TraceJsonWriter(trace_log) if trace_log is not None else None
        )
        self.counters = {
            "requests": 0,
            "routed": 0,
            "route_hits": 0,
            "failovers": 0,
            "retries": 0,
            "errors": 0,
            "member_down": 0,
        }

    # -- routing ---------------------------------------------------------

    def _routing_key(self, payload: dict) -> str | None:
        kind = payload.get("kind")
        if kind in ("solve", "evaluate"):
            from repro.service.fingerprint import request_fingerprint

            program = stream.program_from_wire(payload["program"])
            return request_fingerprint(program, self._options)
        if kind == "cache_lookup":
            return payload.get("fingerprint")
        return None

    def _targets(self, key: str | None) -> list[str]:
        """Preference-ordered targets: the owner and its replicas,
        healthy members first within that order."""
        if key is None:
            ordered = list(self._ring.members)[: self._config.replicas]
        else:
            ordered = self._ring.preference(key, self._config.replicas)
        healthy = [a for a in ordered if self._healthy.get(a, True)]
        sick = [a for a in ordered if not self._healthy.get(a, True)]
        return healthy + sick or ordered

    async def _forward(self, payload: dict, root) -> dict:
        """Route one request: owner first, bounded retry with backoff,
        then failover through the replica preference list."""
        with root.phase("route"):
            key = self._routing_key(payload)
            targets = self._targets(key)
        owner = targets[0] if targets else None
        last_error: Exception | None = None
        for position, address in enumerate(targets):
            if position > 0:
                self.counters["failovers"] += 1
                self.registry.counter(
                    "repro_cluster_requests_total",
                    {"event": "failover"},
                    help="Routed requests by routing event.",
                ).inc()
            for attempt in range(1 + self._config.retries):
                if attempt > 0:
                    self.counters["retries"] += 1
                    self.registry.counter(
                        "repro_cluster_requests_total",
                        {"event": "retry"},
                        help="Routed requests by routing event.",
                    ).inc()
                    await asyncio.sleep(
                        self._config.backoff_seconds * attempt
                    )
                try:
                    with root.phase("forward", member=address) as span:
                        response = await self._channels[address].request(
                            payload, self._config.request_timeout
                        )
                    self._healthy[address] = True
                    self.counters["routed"] += 1
                    if address == owner:
                        self.counters["route_hits"] += 1
                    if response.get("peer") is not None:
                        self.registry.counter(
                            "repro_cluster_requests_total",
                            {"event": "peer_hit"},
                            help="Routed requests by routing event.",
                        ).inc()
                    _adopt_member_trace(span, response)
                    return response
                except (OSError, asyncio.TimeoutError) as exc:
                    last_error = exc
                    if self._healthy.get(address, True):
                        self._healthy[address] = False
                        self.counters["member_down"] += 1
                    logger.warning(
                        "member %s failed (attempt %d): %r",
                        address,
                        attempt + 1,
                        exc,
                    )
        self.counters["errors"] += 1
        raise ConnectionError(
            f"all {len(targets)} routing targets failed for this request"
        ) from last_error

    # -- request handling ------------------------------------------------

    def _semaphore(self) -> asyncio.Semaphore:
        if self._inflight is None:
            self._inflight = asyncio.Semaphore(self._config.max_inflight)
        return self._inflight

    async def handle_request(self, payload: dict) -> dict:
        """Serve one decoded request line (wire-compatible with the
        daemon: a client pointed at a router sees the same kinds)."""
        self.counters["requests"] += 1
        request_id = payload.get("id")
        kind = payload.get("kind")
        start = time.perf_counter()
        try:
            if kind == "ping":
                return self._hello(request_id)
            if kind == "stats":
                return {
                    "id": request_id,
                    "ok": True,
                    "kind": "stats",
                    "result": await self.stats(),
                }
            if kind == "metrics":
                return await self._handle_metrics(payload)
            if kind == "shutdown":
                await self._broadcast_shutdown()
                self._shutdown.set()
                return {"id": request_id, "ok": True, "kind": "shutdown"}
            root = self._request_span(payload, kind)
            trace_dict = None
            try:
                response = await self._forward(payload, root)
            except (OSError, asyncio.TimeoutError) as exc:
                return stream.error_response(request_id, repr(exc))
            finally:
                trace_dict = self._finish_span(root, payload)
            seconds = time.perf_counter() - start
            self.registry.histogram(
                "repro_cluster_route_seconds",
                {"kind": str(kind)},
                help="Router end-to-end latency by request kind.",
                bounds=DEFAULT_LATENCY_BUCKETS,
            ).observe(seconds)
            if payload.get("trace") and response.get("ok") and trace_dict:
                # The router's span tree already adopted the member's
                # (see _adopt_member_trace), so it supersedes the
                # member-only tree the response carried.
                response["trace"] = trace_dict
            return response
        except ProtocolError as exc:
            self.counters["errors"] += 1
            return stream.error_response(request_id, str(exc))
        except Exception as exc:
            self.counters["errors"] += 1
            logger.exception("routing request %r failed", request_id)
            return stream.error_response(request_id, repr(exc))

    def _request_span(self, payload: dict, kind: str):
        if payload.get("trace") or self._trace_writer is not None:
            return Span(f"route:{kind}", attributes={"kind": kind})
        return NOOP_SPAN

    def _finish_span(self, root, payload: dict) -> dict | None:
        if root:
            root.set_attribute("id", payload.get("id"))
            root.end()
            if self._trace_writer is not None:
                self._trace_writer.write(root.to_dict())
            if payload.get("trace"):
                return root.to_dict()
        return None

    def _hello(self, request_id) -> dict:
        return {
            "id": request_id,
            "ok": True,
            "kind": "ping",
            "result": {
                "version": __version__,
                "role": "router",
                "members": list(self._ring.members),
                "replicas": self._config.replicas,
                "virtual_nodes": self._ring.virtual_nodes,
                "healthy": dict(self._healthy),
            },
        }

    async def _broadcast_shutdown(self) -> None:
        for address, channel in self._channels.items():
            try:
                await channel.request(
                    {"id": None, "kind": "shutdown"},
                    self._config.health_timeout,
                )
            except (OSError, asyncio.TimeoutError):
                logger.warning("member %s unreachable for shutdown", address)

    # -- cluster-wide observability --------------------------------------

    async def _member_request(self, address: str, payload: dict):
        """Best-effort control-plane request; None when unreachable."""
        try:
            return await self._channels[address].request(
                payload, self._config.health_timeout * 5
            )
        except (OSError, asyncio.TimeoutError):
            return None

    async def stats(self) -> dict:
        """Router counters plus every member's stats and a numeric
        roll-up (summed counters across reachable members)."""
        members: dict[str, dict] = {}
        responses = await asyncio.gather(
            *(
                self._member_request(address, {"id": None, "kind": "stats"})
                for address in self._ring.members
            )
        )
        for address, response in zip(self._ring.members, responses):
            if response is not None and response.get("ok"):
                members[address] = response["result"]
        aggregate: dict[str, dict] = {}
        for section in ("counters", "engines", "split", "peer"):
            totals: dict[str, float] = {}
            for member_stats in members.values():
                for key, value in (member_stats.get(section) or {}).items():
                    if isinstance(value, (int, float)):
                        totals[key] = totals.get(key, 0) + value
            aggregate[section] = totals
        aggregate["cache"] = {
            "entries": sum(
                (m.get("cache") or {}).get("entries", 0)
                for m in members.values()
            ),
            "bytes_on_disk": sum(
                (m.get("cache") or {}).get("bytes_on_disk", 0)
                for m in members.values()
            ),
        }
        return {
            "router": {
                "uptime_seconds": time.monotonic() - self._started_at,
                "counters": dict(self.counters),
                "members": list(self._ring.members),
                "healthy": dict(self._healthy),
                "reachable": sorted(members),
            },
            "members": members,
            "aggregate": aggregate,
        }

    async def metrics_snapshot(self) -> dict:
        """One mergeable snapshot for the whole cluster.

        Each reachable member ships its registry snapshot
        (``metrics`` with ``"raw": true``); snapshots merge by sum --
        the associative/commutative contract from
        :mod:`repro.obs.metrics` -- together with the router's own
        ``repro_cluster_*`` counters, into a fresh registry so
        scraping twice never double-counts.
        """
        registry = MetricsRegistry()
        registry.merge_snapshot(self.registry.snapshot())
        for event, count in self.counters.items():
            registry.counter(
                "repro_cluster_router_total",
                {"event": event},
                help="Router lifecycle counters.",
            ).inc(count)
        registry.gauge(
            "repro_cluster_members",
            help="Configured cluster member count.",
        ).set(len(self._ring))
        responses = await asyncio.gather(
            *(
                self._member_request(
                    address, {"id": None, "kind": "metrics", "raw": True}
                )
                for address in self._ring.members
            )
        )
        reachable = 0
        for response in responses:
            if response is not None and response.get("ok"):
                reachable += 1
                registry.merge_snapshot(response["result"]["snapshot"])
        registry.gauge(
            "repro_cluster_members_reachable",
            help="Members that answered the last metrics roll-up.",
        ).set(reachable)
        return registry.snapshot()

    async def _handle_metrics(self, payload: dict) -> dict:
        snapshot = await self.metrics_snapshot()
        if payload.get("raw"):
            result = {"snapshot": snapshot}
        else:
            result = {
                "text": prometheus_text(snapshot),
                "content_type": CONTENT_TYPE,
            }
        return {
            "id": payload.get("id"),
            "ok": True,
            "kind": "metrics",
            "result": result,
        }

    # -- health checks ---------------------------------------------------

    async def check_health(self) -> dict[str, bool]:
        """Ping every member once; updates and returns the verdicts."""

        async def probe(address: str) -> None:
            try:
                response = await self._channels[address].request(
                    {"id": None, "kind": "ping"},
                    self._config.health_timeout,
                )
                self._healthy[address] = bool(response.get("ok"))
            except (OSError, asyncio.TimeoutError):
                if self._healthy.get(address, True):
                    self.counters["member_down"] += 1
                self._healthy[address] = False

        await asyncio.gather(*(probe(a) for a in self._ring.members))
        return dict(self._healthy)

    async def _health_loop(self) -> None:
        while not self._shutdown.is_set():
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._shutdown.wait(),
                    timeout=self._config.health_interval,
                )
                return
            await self.check_health()

    # -- serving loops ---------------------------------------------------

    async def serve_connection(self, reader, writer) -> None:
        """Serve one client connection until EOF or shutdown (same
        line discipline as the daemon: responses stream back in
        completion order)."""
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(response: dict) -> None:
            async with write_lock:
                writer.write(stream.encode_response(response))
                await writer.drain()

        async def serve_one(payload: dict, permit: bool) -> None:
            try:
                response = await self.handle_request(payload)
            finally:
                if permit:
                    self._semaphore().release()
            await respond(response)

        def spawn(coroutine) -> None:
            task = asyncio.create_task(coroutine)
            tasks.add(task)
            task.add_done_callback(tasks.discard)

        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = stream.decode_request(line)
                except ProtocolError as exc:
                    self.counters["requests"] += 1
                    self.counters["errors"] += 1
                    spawn(respond(stream.error_response(None, str(exc))))
                    continue
                if payload["kind"] in ("solve", "evaluate"):
                    await self._semaphore().acquire()
                    spawn(serve_one(payload, permit=True))
                else:
                    spawn(serve_one(payload, permit=False))
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def serve_address(self, address: str) -> None:
        """Listen for clients on a unix path or ``host:port`` until a
        ``shutdown`` request (which is also broadcast to members)."""
        parsed = parse_address(address)
        if parsed[0] == "unix":
            reclaim_stale_socket(parsed[1])
            server = await asyncio.start_unix_server(
                self.serve_connection, path=parsed[1]
            )
        else:
            server = await asyncio.start_server(
                self.serve_connection, host=parsed[1], port=parsed[2]
            )
        logger.info(
            "cluster router on %s fronting %d members",
            address,
            len(self._ring),
        )
        health_task = asyncio.create_task(self._health_loop())
        try:
            async with server:
                await self._shutdown.wait()
                await asyncio.sleep(0.05)
        finally:
            health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await health_task
            if parsed[0] == "unix":
                with contextlib.suppress(OSError):
                    os.unlink(parsed[1])
            self.close()

    def close(self) -> None:
        for channel in self._channels.values():
            channel.close()
        if self._trace_writer is not None:
            self._trace_writer.close()
            self._trace_writer = None


def _adopt_member_trace(span, response: dict) -> None:
    """Re-parent a member's span tree under the router's forward phase
    (the member only ships one when the client asked to trace)."""
    if not span:
        return
    member_trace = response.get("trace")
    if member_trace:
        with contextlib.suppress(ValueError):
            span.adopt(member_trace)


# -- single-box cluster plumbing -----------------------------------------


def member_addresses(base_dir: str, count: int) -> list[str]:
    """Unix-socket addresses for an N-member single-box cluster."""
    if count < 1:
        raise ValueError("cluster needs at least one member")
    return [
        os.path.join(base_dir, f"member-{index}.sock")
        for index in range(count)
    ]


def _member_main(
    address: str,
    peers: tuple[str, ...],
    config: PortfolioConfig | None,
    options: BuildOptions | None,
    daemon_kwargs: dict,
) -> None:
    """Process target for one spawned cluster member (top-level so it
    pickles under any multiprocessing start method)."""
    from repro.service.daemon import DaemonConfig, SolverDaemon

    daemon = SolverDaemon(
        config=config,
        options=options,
        daemon_config=DaemonConfig(
            peers=tuple(peers),
            self_address=address,
            **daemon_kwargs,
        ),
    )
    asyncio.run(daemon.serve_address(address))


def spawn_member(
    address: str,
    peers,
    config: PortfolioConfig | None = None,
    options: BuildOptions | None = None,
    **daemon_kwargs,
) -> multiprocessing.Process:
    """Start one cluster member in its own process (own pool, own
    cache shards, own socket); returns the started Process."""
    # Not daemonic: members run their own worker pools, and daemonic
    # processes may not have children.  Callers own the join/terminate
    # (serve_cluster and the smoke script both do).
    process = multiprocessing.Process(
        target=_member_main,
        args=(address, tuple(peers), config, options, dict(daemon_kwargs)),
        name=f"repro-member-{os.path.basename(str(address))}",
        daemon=False,
    )
    process.start()
    return process


def wait_for_members(addresses, timeout: float = 30.0) -> None:
    """Block until every member address accepts connections."""
    from repro.service.routing import connect_address

    deadline = time.monotonic() + timeout
    for address in addresses:
        while True:
            try:
                connect_address(address, timeout=1.0).close()
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"member {address} did not come up in {timeout}s"
                    ) from None
                time.sleep(0.05)


def serve_cluster(
    count: int,
    base_dir: str,
    router_address: str,
    replicas: int = 2,
    config: PortfolioConfig | None = None,
    options: BuildOptions | None = None,
    trace_log=None,
    members=None,
    cache_dir: str | None = None,
    **daemon_kwargs,
) -> int:
    """Blocking single-box cluster entry (the CLI's ``--serve-cluster``):
    spawn ``count`` member processes, run the router in this one.

    ``members`` overrides the auto-generated unix-socket addresses;
    ``cache_dir`` (when set) gives each member its *own* shard
    directory beneath it -- members must never share shard files.
    """
    addresses = (
        [str(member) for member in members]
        if members
        else member_addresses(base_dir, count)
    )
    if len(addresses) != count:
        raise ValueError(
            f"{len(addresses)} member addresses for a {count}-member cluster"
        )
    processes = [
        spawn_member(
            address,
            addresses,
            config=config,
            options=options,
            cache_dir=(
                os.path.join(cache_dir, f"member-{index}")
                if cache_dir is not None
                else None
            ),
            **daemon_kwargs,
        )
        for index, address in enumerate(addresses)
    ]
    try:
        wait_for_members(addresses)
        router = ClusterRouter(
            ClusterConfig(members=tuple(addresses), replicas=replicas),
            options=options,
            trace_log=trace_log,
        )
        asyncio.run(router.serve_address(router_address))
        return 0
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

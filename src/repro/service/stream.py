"""JSON-lines wire protocol of the resident solver daemon.

One request per line, one response per line, both UTF-8 JSON objects.
Responses stream back as work completes, so they may arrive out of
request order; the ``id`` field (echoed verbatim) matches them up.

Request kinds::

    {"id": 1, "kind": "solve", "program": {...}}
    {"id": 2, "kind": "evaluate", "program": {...}, "cost_model": "analytic",
     "hierarchy": {"l1_size": 16384}, "sim_cap": 50000, "layouts": {...}}
    {"id": 3, "kind": "ping"}
    {"id": 4, "kind": "stats"}
    {"id": 5, "kind": "metrics"}
    {"id": 6, "kind": "shutdown"}

A solve/evaluate request may add ``"trace": true`` to get the served
request's span tree back in ``response["trace"]``; the ``metrics``
kind answers with the daemon's Prometheus text exposition in
``result.text``.

Responses::

    {"id": 1, "ok": true, "kind": "solve", "from_cache": false,
     "seconds": 0.41, "result": {...PortfolioResult.to_dict()...}}
    {"id": 6, "ok": false, "error": "unknown request kind 'solv'"}

The program wire form round-trips :class:`repro.ir.program.Program`
exactly (name, array declarations, loop nests with affine subscripts),
so any JSON-speaking client can submit programs the daemon has never
seen -- the service is not limited to the named paper benchmarks.

:class:`DaemonClient` is the synchronous client used by the batch CLI
(``--connect``), the benchmarks, and the CI smoke script.  It
pipelines: ``request_many`` writes every request line before reading
the first response, which is what makes the warm daemon path a
throughput measurement instead of a ping-pong latency one.
"""

from __future__ import annotations

import json
import socket
from typing import Iterable, Mapping, Sequence

from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef
from repro.layout.layout import Layout


class ProtocolError(ValueError):
    """A malformed request or response line."""


# -- program wire form ---------------------------------------------------


def _expr_to_wire(expr: AffineExpr) -> list:
    return [[[name, coeff] for name, coeff in expr.coeffs], expr.const]


def _expr_from_wire(data) -> AffineExpr:
    coeffs, const = data
    return AffineExpr.from_mapping(
        {name: int(coeff) for name, coeff in coeffs}, int(const)
    )


def program_to_wire(program: Program) -> dict:
    """JSON-encodable form of a program (exact round trip)."""
    return {
        "name": program.name,
        "arrays": [
            [decl.name, list(decl.extents), decl.element_type]
            for decl in program.arrays
        ],
        "nests": [
            {
                "name": nest.name,
                "weight": nest.weight,
                "loops": [
                    [loop.index, loop.lower, loop.upper] for loop in nest.loops
                ],
                "body": [
                    [
                        ref.array,
                        [_expr_to_wire(subscript) for subscript in ref.subscripts],
                        ref.kind.value,
                    ]
                    for ref in nest.body
                ],
            }
            for nest in program.nests
        ],
    }


def program_from_wire(data: Mapping) -> Program:
    """Rebuild a program from its wire form.

    Raises:
        ProtocolError: for structurally invalid data (the IR layer's
            own validation errors are re-raised as protocol errors so
            the daemon answers with an error line instead of dying).
    """
    try:
        arrays = tuple(
            ArrayDecl(name, tuple(int(e) for e in extents), element_type)
            for name, extents, element_type in data["arrays"]
        )
        nests = tuple(
            LoopNest(
                name=nest["name"],
                loops=tuple(
                    Loop(index, int(lower), int(upper))
                    for index, lower, upper in nest["loops"]
                ),
                body=tuple(
                    ArrayRef(
                        array,
                        tuple(_expr_from_wire(s) for s in subscripts),
                        AccessKind(kind),
                    )
                    for array, subscripts, kind in nest["body"]
                ),
                weight=int(nest.get("weight", 1)),
            )
            for nest in data["nests"]
        )
        return Program(data["name"], arrays, nests)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed program payload: {exc}") from exc


def layouts_to_wire(layouts: Mapping[str, Layout]) -> dict:
    """JSON-encodable form of a layout assignment."""
    return {
        name: {"dimension": layout.dimension, "rows": [list(r) for r in layout.rows]}
        for name, layout in layouts.items()
    }


def layouts_from_wire(data: Mapping) -> dict[str, Layout]:
    """Rebuild a layout assignment from its wire form."""
    try:
        return {
            name: Layout(entry["dimension"], [tuple(r) for r in entry["rows"]])
            for name, entry in data.items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed layouts payload: {exc}") from exc


# -- request/response lines ----------------------------------------------

#: Request kinds the daemon understands.
REQUEST_KINDS = ("solve", "evaluate", "ping", "stats", "metrics", "shutdown")


def decode_request(line: str | bytes) -> dict:
    """Parse one request line.

    Raises:
        ProtocolError: for non-JSON lines, non-object payloads, or an
            unknown/missing ``kind``.
    """
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    kind = payload.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r}; know {list(REQUEST_KINDS)}"
        )
    if kind in ("solve", "evaluate") and not isinstance(
        payload.get("program"), dict
    ):
        raise ProtocolError(f"{kind} request needs a 'program' object")
    return payload


def encode_response(response: Mapping) -> bytes:
    """One response line, newline-terminated, ready for the socket."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def error_response(request_id, message: str) -> dict:
    """The error line for a failed or unparseable request."""
    return {"id": request_id, "ok": False, "error": message}


def solve_request(program: Program, request_id=None, trace: bool = False) -> dict:
    """Build a solve request line payload.

    ``trace=True`` asks the daemon to attach the request's span tree
    to the response (``response["trace"]``).
    """
    payload = {"id": request_id, "kind": "solve", "program": program_to_wire(program)}
    if trace:
        payload["trace"] = True
    return payload


def evaluate_request(
    program: Program,
    cost_model: str = "simulated",
    hierarchy: Mapping[str, int] | None = None,
    layouts: Mapping[str, Layout] | None = None,
    sim_cap: int | None = None,
    request_id=None,
    trace: bool = False,
) -> dict:
    """Build an evaluate request line payload.

    ``hierarchy`` is a field-override mapping (the wire form of the
    CLI's ``--hierarchy l1_size=16384,...``), not a full config.
    ``trace=True`` asks for the request's span tree in the response.
    """
    payload = {
        "id": request_id,
        "kind": "evaluate",
        "program": program_to_wire(program),
        "cost_model": cost_model,
    }
    if hierarchy is not None:
        payload["hierarchy"] = dict(hierarchy)
    if layouts is not None:
        payload["layouts"] = layouts_to_wire(layouts)
    if sim_cap is not None:
        payload["sim_cap"] = sim_cap
    if trace:
        payload["trace"] = True
    return payload


# -- synchronous client --------------------------------------------------


class DaemonClient:
    """Blocking JSON-lines client for a running solver daemon.

    Args:
        address: unix-domain socket path to connect to.
        timeout: per-read socket timeout in seconds (None blocks
            forever; solves can legitimately take a while, so the
            default is generous).

    The client assigns request ids automatically when the caller did
    not, and matches out-of-order responses back to request order.
    Use as a context manager to close the connection deterministically.
    """

    def __init__(self, address: str, timeout: float | None = 600.0):
        self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._socket.settimeout(timeout)
        self._socket.connect(address)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read_response(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"daemon sent invalid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("daemon response must be a JSON object")
        return payload

    def request(self, payload: Mapping) -> dict:
        """Send one request and wait for its response."""
        return self.request_many([payload])[0]

    def request_many(self, payloads: Sequence[Mapping]) -> list[dict]:
        """Pipeline a batch: write every line, then collect responses.

        Responses are returned in *request* order regardless of the
        order the daemon finished them in.  Auto-assigned ids skip any
        caller-supplied ones, and duplicate caller ids are rejected --
        ids are the only way responses pair back to requests.

        Raises:
            ProtocolError: when two payloads share a request id.
        """
        used = {
            payload.get("id")
            for payload in payloads
            if payload.get("id") is not None
        }
        prepared: list[dict] = []
        for payload in payloads:
            prepared_payload = dict(payload)
            if prepared_payload.get("id") is None:
                request_id = self._take_id()
                while request_id in used:
                    request_id = self._take_id()
                used.add(request_id)
                prepared_payload["id"] = request_id
            prepared.append(prepared_payload)
        ids = [payload["id"] for payload in prepared]
        if len(set(ids)) != len(ids):
            duplicates = sorted(
                {str(i) for i in ids if ids.count(i) > 1}
            )
            raise ProtocolError(
                f"duplicate request ids in batch: {', '.join(duplicates)}"
            )
        self._socket.sendall(b"".join(encode_response(p) for p in prepared))
        by_id: dict = {}
        wanted = [p["id"] for p in prepared]
        outstanding = set(wanted)
        while outstanding:
            response = self._read_response()
            response_id = response.get("id")
            if response_id in outstanding:
                outstanding.discard(response_id)
                by_id[response_id] = response
            # responses for ids we never sent (stale pipeline) are dropped
        return [by_id[request_id] for request_id in wanted]

    # -- convenience wrappers -------------------------------------------

    def ping(self) -> dict:
        """Round-trip liveness check; returns the daemon's hello."""
        return self.request({"kind": "ping"})

    def stats(self) -> dict:
        """The daemon's serving/cache statistics snapshot."""
        response = self.request({"kind": "stats"})
        if not response.get("ok"):
            raise ProtocolError(response.get("error", "stats request failed"))
        return response["result"]

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (scrape body)."""
        response = self.request({"kind": "metrics"})
        if not response.get("ok"):
            raise ProtocolError(response.get("error", "metrics request failed"))
        return response["result"]["text"]

    def shutdown(self) -> dict:
        """Ask the daemon to stop serving (it answers first)."""
        return self.request({"kind": "shutdown"})

    def solve(self, program: Program, trace: bool = False) -> dict:
        """Solve one program; returns the full response line."""
        return self.request(solve_request(program, trace=trace))

    def solve_many(self, programs: Iterable[Program]) -> list[dict]:
        """Pipeline a batch of solve requests (responses in order)."""
        return self.request_many([solve_request(p) for p in programs])

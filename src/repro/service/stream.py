"""JSON-lines wire protocol of the resident solver daemon.

One request per line, one response per line, both UTF-8 JSON objects.
Responses stream back as work completes, so they may arrive out of
request order; the ``id`` field (echoed verbatim) matches them up.

Request kinds::

    {"id": 1, "kind": "solve", "program": {...}}
    {"id": 2, "kind": "evaluate", "program": {...}, "cost_model": "analytic",
     "hierarchy": {"l1_size": 16384}, "sim_cap": 50000, "layouts": {...}}
    {"id": 3, "kind": "ping"}
    {"id": 4, "kind": "stats"}
    {"id": 5, "kind": "metrics"}
    {"id": 6, "kind": "shutdown"}
    {"id": 7, "kind": "cache_lookup", "fingerprint": "...", "token": "..."}

A solve/evaluate request may add ``"trace": true`` to get the served
request's span tree back in ``response["trace"]``; the ``metrics``
kind answers with the daemon's Prometheus text exposition in
``result.text`` (or, with ``"raw": true``, the mergeable registry
snapshot in ``result.snapshot`` -- the cluster router's roll-up
form).  ``cache_lookup`` is the cluster cache-peering kind: it
answers from the member's local result cache only (a single bounded
hop -- the serving member never peers onward), so a cluster of
members turns their sharded on-disk caches into one distributed tier.

Responses::

    {"id": 1, "ok": true, "kind": "solve", "from_cache": false,
     "seconds": 0.41, "result": {...PortfolioResult.to_dict()...}}
    {"id": 6, "ok": false, "error": "unknown request kind 'solv'"}

The program wire form round-trips :class:`repro.ir.program.Program`
exactly (name, array declarations, loop nests with affine subscripts),
so any JSON-speaking client can submit programs the daemon has never
seen -- the service is not limited to the named paper benchmarks.

:class:`DaemonClient` is the synchronous client used by the batch CLI
(``--connect``), the benchmarks, and the CI smoke script.  It
pipelines: ``request_many`` writes every request line before reading
the first response, which is what makes the warm daemon path a
throughput measurement instead of a ping-pong latency one.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef
from repro.layout.layout import Layout


class ProtocolError(ValueError):
    """A malformed request or response line."""


# -- program wire form ---------------------------------------------------


def _expr_to_wire(expr: AffineExpr) -> list:
    return [[[name, coeff] for name, coeff in expr.coeffs], expr.const]


def _expr_from_wire(data) -> AffineExpr:
    coeffs, const = data
    return AffineExpr.from_mapping(
        {name: int(coeff) for name, coeff in coeffs}, int(const)
    )


def program_to_wire(program: Program) -> dict:
    """JSON-encodable form of a program (exact round trip)."""
    return {
        "name": program.name,
        "arrays": [
            [decl.name, list(decl.extents), decl.element_type]
            for decl in program.arrays
        ],
        "nests": [
            {
                "name": nest.name,
                "weight": nest.weight,
                "loops": [
                    [loop.index, loop.lower, loop.upper] for loop in nest.loops
                ],
                "body": [
                    [
                        ref.array,
                        [_expr_to_wire(subscript) for subscript in ref.subscripts],
                        ref.kind.value,
                    ]
                    for ref in nest.body
                ],
            }
            for nest in program.nests
        ],
    }


def program_from_wire(data: Mapping) -> Program:
    """Rebuild a program from its wire form.

    Raises:
        ProtocolError: for structurally invalid data (the IR layer's
            own validation errors are re-raised as protocol errors so
            the daemon answers with an error line instead of dying).
    """
    try:
        arrays = tuple(
            ArrayDecl(name, tuple(int(e) for e in extents), element_type)
            for name, extents, element_type in data["arrays"]
        )
        nests = tuple(
            LoopNest(
                name=nest["name"],
                loops=tuple(
                    Loop(index, int(lower), int(upper))
                    for index, lower, upper in nest["loops"]
                ),
                body=tuple(
                    ArrayRef(
                        array,
                        tuple(_expr_from_wire(s) for s in subscripts),
                        AccessKind(kind),
                    )
                    for array, subscripts, kind in nest["body"]
                ),
                weight=int(nest.get("weight", 1)),
            )
            for nest in data["nests"]
        )
        return Program(data["name"], arrays, nests)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed program payload: {exc}") from exc


def layouts_to_wire(layouts: Mapping[str, Layout]) -> dict:
    """JSON-encodable form of a layout assignment."""
    return {
        name: {"dimension": layout.dimension, "rows": [list(r) for r in layout.rows]}
        for name, layout in layouts.items()
    }


def layouts_from_wire(data: Mapping) -> dict[str, Layout]:
    """Rebuild a layout assignment from its wire form."""
    try:
        return {
            name: Layout(entry["dimension"], [tuple(r) for r in entry["rows"]])
            for name, entry in data.items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed layouts payload: {exc}") from exc


# -- request/response lines ----------------------------------------------

#: Request kinds the daemon understands.
REQUEST_KINDS = (
    "solve",
    "evaluate",
    "ping",
    "stats",
    "metrics",
    "shutdown",
    "cache_lookup",
)


def decode_request(line: str | bytes) -> dict:
    """Parse one request line.

    Raises:
        ProtocolError: for non-JSON lines, non-object payloads, or an
            unknown/missing ``kind``.
    """
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    kind = payload.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r}; know {list(REQUEST_KINDS)}"
        )
    if kind in ("solve", "evaluate") and not isinstance(
        payload.get("program"), dict
    ):
        raise ProtocolError(f"{kind} request needs a 'program' object")
    if kind == "cache_lookup":
        for field in ("fingerprint", "token"):
            if not isinstance(payload.get(field), str):
                raise ProtocolError(
                    f"cache_lookup request needs a string '{field}'"
                )
    return payload


def encode_response(response: Mapping) -> bytes:
    """One response line, newline-terminated, ready for the socket."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def error_response(request_id, message: str) -> dict:
    """The error line for a failed or unparseable request."""
    return {"id": request_id, "ok": False, "error": message}


def cache_lookup_request(fingerprint: str, token: str, request_id=None) -> dict:
    """Build a cache-peering lookup line (cluster members only).

    The answering member consults its *local* result cache and returns
    ``{"hit": bool, "result": {...}|null}`` -- it never forwards the
    lookup onward, which is what bounds peering to a single hop.
    """
    return {
        "id": request_id,
        "kind": "cache_lookup",
        "fingerprint": fingerprint,
        "token": token,
    }


def solve_request(program: Program, request_id=None, trace: bool = False) -> dict:
    """Build a solve request line payload.

    ``trace=True`` asks the daemon to attach the request's span tree
    to the response (``response["trace"]``).
    """
    payload = {"id": request_id, "kind": "solve", "program": program_to_wire(program)}
    if trace:
        payload["trace"] = True
    return payload


def evaluate_request(
    program: Program,
    cost_model: str = "simulated",
    hierarchy: Mapping[str, int] | None = None,
    layouts: Mapping[str, Layout] | None = None,
    sim_cap: int | None = None,
    request_id=None,
    trace: bool = False,
) -> dict:
    """Build an evaluate request line payload.

    ``hierarchy`` is a field-override mapping (the wire form of the
    CLI's ``--hierarchy l1_size=16384,...``), not a full config.
    ``trace=True`` asks for the request's span tree in the response.
    """
    payload = {
        "id": request_id,
        "kind": "evaluate",
        "program": program_to_wire(program),
        "cost_model": cost_model,
    }
    if hierarchy is not None:
        payload["hierarchy"] = dict(hierarchy)
    if layouts is not None:
        payload["layouts"] = layouts_to_wire(layouts)
    if sim_cap is not None:
        payload["sim_cap"] = sim_cap
    if trace:
        payload["trace"] = True
    return payload


# -- synchronous client --------------------------------------------------


class DaemonClient:
    """Blocking JSON-lines client for one daemon -- or a whole cluster.

    Args:
        address: a member address (unix-socket path or TCP
            ``host:port``), or a sequence of them.  With several
            addresses the client routes each solve/evaluate request to
            the member that *owns* its fingerprint on the cluster's
            consistent-hash ring -- the same ring every member and the
            router build -- so the hot path needs no router process at
            all; on connection failure it falls back through the
            remaining members (the contacted member then peers with
            the owner for cache hits).
        timeout: per-read socket timeout in seconds (None blocks
            forever; solves can legitimately take a while, so the
            default is generous).
        options: the :class:`BuildOptions` the daemons fingerprint
            with; only consulted for client-side routing (a mismatch
            never changes answers -- requests merely land on a
            non-owner, which costs one bounded peer hop).
        retry: reconnect and resend outstanding requests once per
            member on a transient connection error
            (``ConnectionResetError``/``BrokenPipeError``/timeout)
            mid-pipeline, instead of raising to the caller.

    The client assigns request ids automatically when the caller did
    not, and matches out-of-order responses back to request order.
    Use as a context manager to close the connections deterministically.
    """

    def __init__(
        self,
        address: str | Sequence[str],
        timeout: float | None = 600.0,
        options=None,
        retry: bool = True,
    ):
        if isinstance(address, str):
            addresses = [address]
        else:
            addresses = [str(item) for item in address]
        if not addresses:
            raise ValueError("DaemonClient needs at least one address")
        # Lazy imports keep the module importable without the opt layer
        # in pathological embedding scenarios; these are stdlib-cheap.
        from repro.service.routing import HashRing

        self._addresses = addresses
        self._timeout = timeout
        self._options = options
        self._retry = retry
        self._ring = HashRing(addresses) if len(addresses) > 1 else None
        # address -> (socket, buffered reader); opened on first use so
        # a 3-member client talking to one member opens one socket.
        self._connections: dict[str, tuple] = {}
        self._next_id = 0
        # Fail fast on a bad primary address (matches the historical
        # constructor contract: creating a client to a dead daemon
        # raises immediately).
        self._connection(addresses[0])

    @property
    def addresses(self) -> tuple[str, ...]:
        """The member addresses this client may talk to."""
        return tuple(self._addresses)

    def _connection(self, address: str) -> tuple:
        entry = self._connections.get(address)
        if entry is None:
            from repro.service.routing import connect_address

            sock = connect_address(address, timeout=self._timeout)
            entry = (sock, sock.makefile("rb"))
            self._connections[address] = entry
        return entry

    def _drop_connection(self, address: str) -> None:
        entry = self._connections.pop(address, None)
        if entry is not None:
            sock, reader = entry
            try:
                reader.close()
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        for address in list(self._connections):
            self._drop_connection(address)

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @staticmethod
    def _read_response(reader) -> dict:
        line = reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"daemon sent invalid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("daemon response must be a JSON object")
        return payload

    # -- client-side routing --------------------------------------------

    def _routing_key(self, payload: Mapping) -> str | None:
        """The fingerprint a routable request hashes to, or None."""
        kind = payload.get("kind")
        if kind == "cache_lookup":
            return payload.get("fingerprint")
        if kind not in ("solve", "evaluate") or not isinstance(
            payload.get("program"), dict
        ):
            return None
        from repro.service.fingerprint import request_fingerprint

        try:
            program = program_from_wire(payload["program"])
        except ProtocolError:
            return None  # let the daemon produce the error line
        return request_fingerprint(program, self._options)

    def _target_for(self, payload: Mapping) -> str:
        """Owner member for routable requests; the primary otherwise."""
        if self._ring is None:
            return self._addresses[0]
        key = self._routing_key(payload)
        if key is None:
            return self._addresses[0]
        return self._ring.owner(key)

    def request(self, payload: Mapping) -> dict:
        """Send one request and wait for its response."""
        return self.request_many([payload])[0]

    def request_member(self, address: str, payload: Mapping) -> dict:
        """Send one request to a *specific* member, bypassing routing.

        The address must be one of this client's configured addresses.
        Cluster smoke tests use this to target a non-owner and watch
        the cache-peering hop; operators use it to inspect one member.
        """
        if address not in self._addresses:
            raise ValueError(f"{address!r} is not a configured member")
        prepared = dict(payload)
        if prepared.get("id") is None:
            prepared["id"] = self._take_id()
        return self._deliver(address, [prepared], failover=False)[prepared["id"]]

    def request_many(self, payloads: Sequence[Mapping]) -> list[dict]:
        """Pipeline a batch: write every line, then collect responses.

        Responses are returned in *request* order regardless of the
        order the daemon finished them in.  Auto-assigned ids skip any
        caller-supplied ones, and duplicate caller ids are rejected --
        ids are the only way responses pair back to requests.  With
        several addresses the batch is partitioned by fingerprint
        owner and each partition is pipelined to its member.

        Raises:
            ProtocolError: when two payloads share a request id.
        """
        used = {
            payload.get("id")
            for payload in payloads
            if payload.get("id") is not None
        }
        prepared: list[dict] = []
        for payload in payloads:
            prepared_payload = dict(payload)
            if prepared_payload.get("id") is None:
                request_id = self._take_id()
                while request_id in used:
                    request_id = self._take_id()
                used.add(request_id)
                prepared_payload["id"] = request_id
            prepared.append(prepared_payload)
        ids = [payload["id"] for payload in prepared]
        if len(set(ids)) != len(ids):
            duplicates = sorted(
                {str(i) for i in ids if ids.count(i) > 1}
            )
            raise ProtocolError(
                f"duplicate request ids in batch: {', '.join(duplicates)}"
            )
        wanted = [p["id"] for p in prepared]
        groups: dict[str, list[dict]] = {}
        for payload in prepared:
            groups.setdefault(self._target_for(payload), []).append(payload)
        by_id: dict = {}
        for address, group in groups.items():
            by_id.update(self._deliver(address, group))
        return [by_id[request_id] for request_id in wanted]

    def _deliver(
        self, address: str, payloads: Sequence[Mapping], failover: bool = True
    ) -> dict:
        """Pipeline payloads to a member; reconnect-retry, then fail over.

        Per member: one reconnect+resend retry on a transient
        connection error (daemon restarted, socket reset mid-batch).
        Responses collected before the error are kept -- only the
        outstanding remainder is resent; resends are safe because
        every request kind is idempotent (solves are cached and
        deduplicated on the daemon).  When the member stays down and
        the client knows other members, the remainder fails over
        through them in address order.
        """
        outstanding = {payload["id"]: payload for payload in payloads}
        collected: dict = {}
        targets = [address]
        if failover and self._ring is not None:
            targets.extend(a for a in self._addresses if a != address)
        last_error: Exception | None = None
        for target in targets:
            # One *blind* retry per member: an attempt that collected
            # responses before dying proves the daemon is serving (it
            # was restarted, or the socket reset mid-batch), so
            # reconnecting again is progress, not spinning -- only
            # attempts that yield nothing consume the retry budget.
            blind_retries = 1 if self._retry else 0
            while True:
                if not outstanding:
                    return collected
                before = len(collected)
                try:
                    sock, reader = self._connection(target)
                    sock.sendall(
                        b"".join(
                            encode_response(p) for p in outstanding.values()
                        )
                    )
                    while outstanding:
                        response = self._read_response(reader)
                        response_id = response.get("id")
                        if response_id in outstanding:
                            del outstanding[response_id]
                            collected[response_id] = response
                        # responses for ids we never sent (stale
                        # pipeline) are dropped
                    return collected
                except (ConnectionError, OSError) as exc:
                    # Covers ConnectionResetError, BrokenPipeError,
                    # socket.timeout and refused reconnects alike.
                    self._drop_connection(target)
                    last_error = exc
                    if not self._retry:
                        break
                    if len(collected) == before:
                        if blind_retries == 0:
                            break
                        blind_retries -= 1
        raise ConnectionError(
            f"no daemon at {targets} answered "
            f"{len(outstanding)} outstanding request(s): {last_error}"
        ) from last_error

    # -- convenience wrappers -------------------------------------------

    def ping(self) -> dict:
        """Round-trip liveness check; returns the daemon's hello."""
        return self.request({"kind": "ping"})

    def stats(self) -> dict:
        """The daemon's serving/cache statistics snapshot."""
        response = self.request({"kind": "stats"})
        if not response.get("ok"):
            raise ProtocolError(response.get("error", "stats request failed"))
        return response["result"]

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (scrape body)."""
        response = self.request({"kind": "metrics"})
        if not response.get("ok"):
            raise ProtocolError(response.get("error", "metrics request failed"))
        return response["result"]["text"]

    def metrics_snapshot(self) -> dict:
        """The daemon's mergeable metrics snapshot (cluster roll-ups)."""
        response = self.request({"kind": "metrics", "raw": True})
        if not response.get("ok"):
            raise ProtocolError(response.get("error", "metrics request failed"))
        return response["result"]["snapshot"]

    def cache_lookup(self, fingerprint: str, token: str) -> dict:
        """Peer-style cache probe: ``{"hit": bool, "result": ...}``."""
        response = self.request(cache_lookup_request(fingerprint, token))
        if not response.get("ok"):
            raise ProtocolError(
                response.get("error", "cache_lookup request failed")
            )
        return response

    def shutdown(self) -> dict:
        """Ask the daemon to stop serving (it answers first)."""
        return self.request({"kind": "shutdown"})

    def solve(self, program: Program, trace: bool = False) -> dict:
        """Solve one program; returns the full response line."""
        return self.request(solve_request(program, trace=trace))

    def solve_many(self, programs: Iterable[Program]) -> list[dict]:
        """Pipeline a batch of solve requests (responses in order)."""
        return self.request_many([solve_request(p) for p in programs])

"""repro -- constraint-network based memory layout optimization.

A from-scratch Python reproduction of G. Chen, M. Kandemir and
M. Karakoy, "A Constraint Network Based Approach to Memory Layout
Optimization", DATE 2005.

Quickstart::

    from repro import parse_program, LayoutOptimizer

    program = parse_program('''
        array Q1[512][512]
        array Q2[512][512]
        nest fig2 {
            for i1 = 0 .. 255 {
                for i2 = 0 .. 255 {
                    Q1[i1+i2][i2] = Q2[i1+i2][i1]
                }
            }
        }
    ''')
    outcome = LayoutOptimizer(scheme="enhanced").optimize(program)
    for array, layout in outcome.layouts.items():
        print(array, layout.describe())

For production-style serving -- many programs, racing solver
portfolios, result caching -- see :mod:`repro.service` and the batch
CLI ``python -m repro.service`` (README.md has a walkthrough).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison.
"""

#: Package version; surfaced by ``python -m repro.service --version``.
#: Defined before the subpackage imports below: the service daemon
#: reports it in its hello and imports it mid-package-init.
__version__ = "1.10.0"

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    AccessKind,
    Loop,
    LoopNest,
    Program,
    parse_program,
)
from repro.layout import (
    Hyperplane,
    Layout,
    LayoutMapping,
    row_major,
    column_major,
    diagonal,
    antidiagonal,
)
from repro.csp import (
    ConstraintNetwork,
    BacktrackingSolver,
    EnhancedSolver,
    EnhancementConfig,
)
from repro.opt import (
    BuildOptions,
    LayoutOptimizer,
    HeuristicOptimizer,
    DynamicLayoutPlanner,
    build_layout_network,
    select_transforms,
)
from repro.simul import simulate_program
from repro.cachesim import HierarchyConfig, paper_hierarchy
from repro.eval import (
    Cost,
    CostModel,
    available_cost_models,
    get_cost_model,
    register_cost_model,
)
from repro.service import (
    EvaluationRequest,
    EvaluationService,
    PortfolioConfig,
    PortfolioSolver,
    ResultCache,
    ShardedResultCache,
    SolverDaemon,
    run_batch,
    run_evaluation_batch,
)

__all__ = [
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "AccessKind",
    "Loop",
    "LoopNest",
    "Program",
    "parse_program",
    "Hyperplane",
    "Layout",
    "LayoutMapping",
    "row_major",
    "column_major",
    "diagonal",
    "antidiagonal",
    "ConstraintNetwork",
    "BacktrackingSolver",
    "EnhancedSolver",
    "EnhancementConfig",
    "BuildOptions",
    "LayoutOptimizer",
    "HeuristicOptimizer",
    "DynamicLayoutPlanner",
    "build_layout_network",
    "select_transforms",
    "simulate_program",
    "HierarchyConfig",
    "paper_hierarchy",
    "Cost",
    "CostModel",
    "available_cost_models",
    "get_cost_model",
    "register_cost_model",
    "EvaluationRequest",
    "EvaluationService",
    "PortfolioConfig",
    "PortfolioSolver",
    "ResultCache",
    "ShardedResultCache",
    "SolverDaemon",
    "run_batch",
    "run_evaluation_batch",
    "__version__",
]

"""Whole-program container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.ir.arrays import ArrayDecl
from repro.ir.loops import LoopNest


@dataclass(frozen=True)
class Program:
    """An array program: declarations plus a sequence of loop nests.

    Attributes:
        name: program identifier (used in reports).
        arrays: declarations, keyed by array name.
        nests: loop nests in program order.
    """

    name: str
    arrays: tuple[ArrayDecl, ...]
    nests: tuple[LoopNest, ...]

    def __post_init__(self) -> None:
        names = [decl.name for decl in self.arrays]
        if len(set(names)) != len(names):
            raise ValueError(f"program {self.name} declares an array twice")
        nest_names = [nest.name for nest in self.nests]
        if len(set(nest_names)) != len(nest_names):
            raise ValueError(f"program {self.name} repeats a nest name")

    def array(self, name: str) -> ArrayDecl:
        """Look up a declaration by name.

        Raises:
            KeyError: if no array with that name is declared.
        """
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def array_names(self) -> tuple[str, ...]:
        """Declared array names, in declaration order."""
        return tuple(decl.name for decl in self.arrays)

    def nests_referencing(self, array: str) -> tuple[LoopNest, ...]:
        """All nests that touch the given array."""
        return tuple(nest for nest in self.nests if array in nest.arrays())

    def total_data_bytes(self) -> int:
        """Sum of array footprints (the paper's Table 1 'Data Size')."""
        return sum(decl.byte_size for decl in self.arrays)

    def referenced_arrays(self) -> tuple[str, ...]:
        """Arrays referenced by at least one nest, in declaration order."""
        used = {name for nest in self.nests for name in nest.arrays()}
        return tuple(name for name in self.array_names() if name in used)

    def __str__(self) -> str:
        lines = [f"program {self.name}:"]
        lines.extend(f"  {decl}" for decl in self.arrays)
        lines.extend(f"  {nest}" for nest in self.nests)
        return "\n".join(lines)


def make_program(
    name: str,
    arrays: Iterable[ArrayDecl],
    nests: Iterable[LoopNest],
) -> Program:
    """Convenience constructor accepting any iterables."""
    return Program(name, tuple(arrays), tuple(nests))

"""Affine array references.

A reference ``Q[f1(I)]...[fm(I)]`` inside a nest with index vector
``I = (i1 ... in)`` is captured by its *access matrix* ``A`` (the
``m x n`` coefficient matrix of the subscripts) and *offset vector*
``b``, so the accessed element is ``d = A I + b``.  This is the object
Section 2 of the paper manipulates: the layout constraint for spatial
locality between iterations ``I`` and ``I + e`` is
``Y . (A e) = 0`` for every hyperplane row ``Y`` of the layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.ir.expr import AffineExpr


class AccessKind(enum.Enum):
    """Whether a reference reads or writes its array."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class ArrayRef:
    """An affine reference to an array.

    Attributes:
        array: name of the referenced array.
        subscripts: one affine expression per array dimension.
        kind: read or write.
    """

    array: str
    subscripts: tuple[AffineExpr, ...]
    kind: AccessKind = AccessKind.READ

    def __post_init__(self) -> None:
        if not self.subscripts:
            raise ValueError(f"reference to {self.array} has no subscripts")

    @property
    def rank(self) -> int:
        """Number of subscript dimensions."""
        return len(self.subscripts)

    @property
    def is_write(self) -> bool:
        """True for stores."""
        return self.kind is AccessKind.WRITE

    def access_matrix(self, index_order: Sequence[str]) -> tuple[tuple[int, ...], ...]:
        """The ``m x n`` coefficient matrix A for the given loop order.

        Raises:
            ValueError: if a subscript uses a variable not in
                ``index_order``.
        """
        return tuple(
            subscript.coefficients_for(index_order) for subscript in self.subscripts
        )

    def offset_vector(self) -> tuple[int, ...]:
        """The constant offset vector b."""
        return tuple(subscript.const for subscript in self.subscripts)

    def element_at(self, values: Mapping[str, int]) -> tuple[int, ...]:
        """The array element index touched at the given iteration point."""
        return tuple(subscript.evaluate(values) for subscript in self.subscripts)

    def substituted(self, bindings: Mapping[str, AffineExpr]) -> "ArrayRef":
        """A copy with loop indices rewritten (used by loop transforms)."""
        return ArrayRef(
            self.array,
            tuple(subscript.substitute(bindings) for subscript in self.subscripts),
            self.kind,
        )

    def __str__(self) -> str:
        subs = "".join(f"[{subscript}]" for subscript in self.subscripts)
        marker = "W" if self.is_write else "R"
        return f"{self.array}{subs}:{marker}"

"""Parser for the benchmark kernel mini-language.

Benchmarks are written in a small textual language mirroring the C
kernels the paper optimizes.  Example (the nest of Figure 2)::

    array Q1[512][512] : float32
    array Q2[512][512] : float32

    nest fig2 weight=1 {
        for i1 = 0 .. 255 {
            for i2 = 0 .. 255 {
                Q1[i1+i2][i2] = Q2[i1+i2][i1]
            }
        }
    }

Grammar (EBNF, ``#`` starts a line comment)::

    program    = { array_decl | nest } ;
    array_decl = "array" NAME { "[" INT "]" } [ ":" TYPE ] ;
    nest       = "nest" NAME [ "weight" "=" INT ] "{" loop "}" ;
    loop       = "for" NAME "=" INT ".." INT "{" ( loop | { stmt } ) "}" ;
    stmt       = ref "=" rhs              (* lhs is a store *)
               | "load" ref { "," ref }   (* explicit loads *)
               ;
    rhs        = ref { ("+"|"-"|"*") ref } ;
    ref        = NAME { "[" affine "]" } ;
    affine     = ["-"] aterm { ("+"|"-") aterm } ;
    aterm      = INT [ "*" NAME ] | NAME ;

Loop nests must be perfectly nested: statements may only appear in the
innermost loop.  In an assignment, the right-hand-side references are
READs (emitted in textual order) and the left-hand side is a WRITE
emitted last, matching load/store order of a compiled statement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.ir.arrays import ArrayDecl, ELEMENT_SIZES
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef


class ParseError(ValueError):
    """Raised on any syntactic or lexical error, with line information."""


@dataclass(frozen=True)
class _Token:
    kind: str  # NAME | INT | PUNCT
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>\#[^\n]*)
  | (?P<nl>\n)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<dots>\.\.)
  | (?P<punct>[\[\]{}=+\-*:,])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"line {line}: unexpected character {text[pos]!r}")
        pos = match.end()
        if match.lastgroup == "nl":
            line += 1
        elif match.lastgroup == "int":
            tokens.append(_Token("INT", match.group(), line))
        elif match.lastgroup == "name":
            tokens.append(_Token("NAME", match.group(), line))
        elif match.lastgroup in ("dots", "punct"):
            tokens.append(_Token("PUNCT", match.group(), line))
        # whitespace and comments are skipped
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"line {token.line}: expected {text!r}, found {token.text!r}"
            )
        return token

    def _expect_kind(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"line {token.line}: expected {kind}, found {token.text!r}"
            )
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    # -- grammar ------------------------------------------------------

    def parse_program(self, name: str) -> Program:
        arrays: list[ArrayDecl] = []
        nests: list[LoopNest] = []
        while self._peek() is not None:
            if self._at("array"):
                arrays.append(self._parse_array_decl())
            elif self._at("nest"):
                nests.append(self._parse_nest())
            else:
                token = self._peek()
                assert token is not None
                raise ParseError(
                    f"line {token.line}: expected 'array' or 'nest', "
                    f"found {token.text!r}"
                )
        return Program(name, tuple(arrays), tuple(nests))

    def _parse_array_decl(self) -> ArrayDecl:
        self._expect("array")
        name = self._expect_kind("NAME").text
        extents: list[int] = []
        while self._at("["):
            self._expect("[")
            extents.append(int(self._expect_kind("INT").text))
            self._expect("]")
        if not extents:
            raise ParseError(f"array {name} declared without dimensions")
        element_type = "float32"
        if self._at(":"):
            self._expect(":")
            type_token = self._expect_kind("NAME")
            if type_token.text not in ELEMENT_SIZES:
                raise ParseError(
                    f"line {type_token.line}: unknown element type "
                    f"{type_token.text!r}"
                )
            element_type = type_token.text
        return ArrayDecl(name, tuple(extents), element_type)

    def _parse_nest(self) -> LoopNest:
        self._expect("nest")
        name = self._expect_kind("NAME").text
        weight = 1
        if self._at("weight"):
            self._expect("weight")
            self._expect("=")
            weight = int(self._expect_kind("INT").text)
        self._expect("{")
        loops, body = self._parse_loop()
        self._expect("}")
        return LoopNest(name, tuple(loops), tuple(body), weight)

    def _parse_loop(self) -> tuple[list[Loop], list[ArrayRef]]:
        self._expect("for")
        index = self._expect_kind("NAME").text
        self._expect("=")
        lower = self._parse_signed_int()
        self._expect("..")
        upper = self._parse_signed_int()
        self._expect("{")
        loops = [Loop(index, lower, upper)]
        body: list[ArrayRef] = []
        if self._at("for"):
            inner_loops, body = self._parse_loop()
            loops.extend(inner_loops)
        else:
            while not self._at("}"):
                body.extend(self._parse_statement())
        self._expect("}")
        return loops, body

    def _parse_signed_int(self) -> int:
        negative = False
        if self._at("-"):
            self._expect("-")
            negative = True
        value = int(self._expect_kind("INT").text)
        return -value if negative else value

    def _parse_statement(self) -> list[ArrayRef]:
        if self._at("load"):
            self._expect("load")
            refs = [self._parse_ref(AccessKind.READ)]
            while self._at(","):
                self._expect(",")
                refs.append(self._parse_ref(AccessKind.READ))
            return refs
        # Assignment: lhs_ref = rhs
        target = self._parse_ref(AccessKind.WRITE)
        self._expect("=")
        reads = [self._parse_ref(AccessKind.READ)]
        while self._at("+") or self._at("-") or self._at("*"):
            self._next()
            reads.append(self._parse_ref(AccessKind.READ))
        return reads + [target]

    def _parse_ref(self, kind: AccessKind) -> ArrayRef:
        name = self._expect_kind("NAME").text
        subscripts: list[AffineExpr] = []
        while self._at("["):
            self._expect("[")
            subscripts.append(self._parse_affine())
            self._expect("]")
        if not subscripts:
            raise ParseError(f"reference to {name} has no subscripts")
        return ArrayRef(name, tuple(subscripts), kind)

    def _parse_affine(self) -> AffineExpr:
        result = self._parse_affine_term(negated=self._consume_leading_minus())
        while self._at("+") or self._at("-"):
            operator = self._next().text
            term = self._parse_affine_term(negated=(operator == "-"))
            result = result + term
        return result

    def _consume_leading_minus(self) -> bool:
        if self._at("-"):
            self._expect("-")
            return True
        return False

    def _parse_affine_term(self, negated: bool) -> AffineExpr:
        token = self._next()
        if token.kind == "INT":
            coefficient = int(token.text)
            if self._at("*"):
                self._expect("*")
                name = self._expect_kind("NAME").text
                term = AffineExpr.var(name, coefficient)
            else:
                term = AffineExpr.constant(coefficient)
        elif token.kind == "NAME":
            term = AffineExpr.var(token.text)
        else:
            raise ParseError(
                f"line {token.line}: expected subscript term, found {token.text!r}"
            )
        return -term if negated else term


def parse_program(text: str, name: str = "program") -> Program:
    """Parse mini-language source into a :class:`~repro.ir.Program`.

    Raises:
        ParseError: on any lexical or syntactic error.
    """
    return _Parser(_tokenize(text)).parse_program(name)

"""Loop-nest intermediate representation.

The paper's input is an array-intensive program: a sequence of perfectly
nested affine loop nests whose bodies reference arrays through affine
subscript functions ``F(I) = A I + b``.  This subpackage provides:

* :mod:`repro.ir.expr` -- affine expressions over loop index names.
* :mod:`repro.ir.arrays` -- array declarations (extents, element size).
* :mod:`repro.ir.reference` -- affine array references.
* :mod:`repro.ir.loops` -- loops and loop nests.
* :mod:`repro.ir.program` -- whole programs.
* :mod:`repro.ir.parser` -- a small textual language for writing
  benchmark kernels (see the module docstring for the grammar).
* :mod:`repro.ir.dependence` -- data-dependence analysis used to check
  legality of candidate loop transformations.
* :mod:`repro.ir.validate` -- semantic well-formedness checks.
"""

from repro.ir.expr import AffineExpr
from repro.ir.arrays import ArrayDecl
from repro.ir.reference import ArrayRef, AccessKind
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.parser import parse_program, ParseError
from repro.ir.dependence import (
    DependenceInfo,
    Dependence,
    analyze_nest_dependences,
)
from repro.ir.validate import validate_program, ValidationError

__all__ = [
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "AccessKind",
    "Loop",
    "LoopNest",
    "Program",
    "parse_program",
    "ParseError",
    "DependenceInfo",
    "Dependence",
    "analyze_nest_dependences",
    "validate_program",
    "ValidationError",
]

"""Semantic validation of parsed or constructed programs."""

from __future__ import annotations

from repro.ir.program import Program


class ValidationError(ValueError):
    """Raised when a program violates a semantic well-formedness rule."""


def validate_program(program: Program) -> None:
    """Check semantic well-formedness; raise ValidationError otherwise.

    Rules enforced:

    * every referenced array is declared;
    * reference rank matches the declared rank;
    * subscripts use only the indices of the enclosing nest;
    * every subscript stays within the declared extents over the whole
      iteration space (checked exactly via interval arithmetic).
    """
    declared = {decl.name: decl for decl in program.arrays}
    for nest in program.nests:
        index_set = set(nest.index_order)
        box = dict(zip(nest.index_order, nest.iteration_box()))
        for reference in nest.body:
            decl = declared.get(reference.array)
            if decl is None:
                raise ValidationError(
                    f"nest {nest.name}: reference to undeclared array "
                    f"{reference.array}"
                )
            if reference.rank != decl.rank:
                raise ValidationError(
                    f"nest {nest.name}: {reference.array} is "
                    f"{decl.rank}-dimensional but referenced with "
                    f"{reference.rank} subscripts"
                )
            for dim, subscript in enumerate(reference.subscripts):
                stray = set(subscript.variables()) - index_set
                if stray:
                    raise ValidationError(
                        f"nest {nest.name}: subscript of {reference.array} "
                        f"uses unknown variables {sorted(stray)}"
                    )
                low, high = _subscript_range(subscript, box)
                if low < 0 or high >= decl.extents[dim]:
                    raise ValidationError(
                        f"nest {nest.name}: subscript {subscript} of "
                        f"{reference.array} dim {dim} spans [{low}, {high}] "
                        f"outside [0, {decl.extents[dim] - 1}]"
                    )


def _subscript_range(subscript, box) -> tuple[int, int]:
    """Exact (min, max) of an affine subscript over the iteration box."""
    low = high = subscript.const
    for name, coefficient in subscript.coeffs:
        bound_low, bound_high = box[name]
        if coefficient >= 0:
            low += coefficient * bound_low
            high += coefficient * bound_high
        else:
            low += coefficient * bound_high
            high += coefficient * bound_low
    return (low, high)

"""Array declarations."""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bytes per element for the supported element types.
ELEMENT_SIZES: dict[str, int] = {
    "float32": 4,
    "float64": 8,
    "int8": 1,
    "int16": 2,
    "int32": 4,
    "int64": 8,
}


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of a program array.

    Attributes:
        name: array identifier, unique within a program.
        extents: inclusive sizes per dimension (e.g. ``(256, 256)``).
        element_type: one of :data:`ELEMENT_SIZES` keys.
    """

    name: str
    extents: tuple[int, ...]
    element_type: str = "float32"

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid array name: {self.name!r}")
        if not self.extents:
            raise ValueError(f"array {self.name} must have at least one dimension")
        if any(extent <= 0 for extent in self.extents):
            raise ValueError(f"array {self.name} has non-positive extent")
        if self.element_type not in ELEMENT_SIZES:
            raise ValueError(
                f"array {self.name}: unknown element type {self.element_type!r}"
            )

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.extents)

    @property
    def element_size(self) -> int:
        """Bytes per element."""
        return ELEMENT_SIZES[self.element_type]

    @property
    def element_count(self) -> int:
        """Total number of elements."""
        return math.prod(self.extents)

    @property
    def byte_size(self) -> int:
        """Total footprint in bytes."""
        return self.element_count * self.element_size

    def index_box(self) -> tuple[tuple[int, int], ...]:
        """Inclusive (low, high) index bounds per dimension."""
        return tuple((0, extent - 1) for extent in self.extents)

    def __str__(self) -> str:
        dims = "".join(f"[{extent}]" for extent in self.extents)
        return f"{self.element_type} {self.name}{dims}"

"""Loops and perfectly nested loop nests."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.ir.reference import ArrayRef


@dataclass(frozen=True)
class Loop:
    """A normalized loop ``for index = lower .. upper`` (inclusive, step 1).

    The paper's examples use C loops ``for (i=0; i<N; i++)``; the parser
    normalizes them to inclusive bounds ``0 .. N-1``.
    """

    index: str
    lower: int
    upper: int

    def __post_init__(self) -> None:
        if not self.index.isidentifier():
            raise ValueError(f"invalid loop index name: {self.index!r}")
        if self.lower > self.upper:
            raise ValueError(
                f"loop {self.index}: empty range {self.lower}..{self.upper}"
            )

    @property
    def trip_count(self) -> int:
        """Number of iterations."""
        return self.upper - self.lower + 1

    def __str__(self) -> str:
        return f"for {self.index} = {self.lower}..{self.upper}"


@dataclass(frozen=True)
class LoopNest:
    """A perfectly nested loop nest with an affine body.

    Attributes:
        name: nest identifier, unique within a program.
        loops: outermost-to-innermost loops.
        body: array references executed each innermost iteration, in
            program order (reads before the write of a statement).
        weight: relative importance multiplier (the heuristic of [9]
            orders nests by ``weight * trip_count``; it models e.g. a
            nest sitting inside an outer time-step loop).
    """

    name: str
    loops: tuple[Loop, ...]
    body: tuple[ArrayRef, ...]
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.loops:
            raise ValueError(f"nest {self.name} has no loops")
        if not self.body:
            raise ValueError(f"nest {self.name} has an empty body")
        if self.weight <= 0:
            raise ValueError(f"nest {self.name} has non-positive weight")
        names = [loop.index for loop in self.loops]
        if len(set(names)) != len(names):
            raise ValueError(f"nest {self.name} repeats a loop index")

    @property
    def depth(self) -> int:
        """Nesting depth (number of loops)."""
        return len(self.loops)

    @property
    def index_order(self) -> tuple[str, ...]:
        """Loop index names, outermost first."""
        return tuple(loop.index for loop in self.loops)

    @property
    def trip_count(self) -> int:
        """Total number of innermost iterations."""
        return math.prod(loop.trip_count for loop in self.loops)

    @property
    def estimated_cost(self) -> int:
        """Importance for nest ordering: weight x iterations x references."""
        return self.weight * self.trip_count * len(self.body)

    def arrays(self) -> tuple[str, ...]:
        """Distinct array names referenced, in first-appearance order."""
        seen: list[str] = []
        for reference in self.body:
            if reference.array not in seen:
                seen.append(reference.array)
        return tuple(seen)

    def references_to(self, array: str) -> tuple[ArrayRef, ...]:
        """All references to one array."""
        return tuple(ref for ref in self.body if ref.array == array)

    def iteration_box(self) -> tuple[tuple[int, int], ...]:
        """Inclusive (lower, upper) bounds per loop, outermost first."""
        return tuple((loop.lower, loop.upper) for loop in self.loops)

    def iterations(self) -> Iterator[tuple[int, ...]]:
        """Iterate the iteration space in lexicographic (program) order."""
        def recurse(prefix: tuple[int, ...], remaining: Sequence[Loop]) -> Iterator[tuple[int, ...]]:
            if not remaining:
                yield prefix
                return
            head = remaining[0]
            for value in range(head.lower, head.upper + 1):
                yield from recurse(prefix + (value,), remaining[1:])

        return recurse((), self.loops)

    def __str__(self) -> str:
        header = " / ".join(str(loop) for loop in self.loops)
        refs = ", ".join(str(ref) for ref in self.body)
        return f"nest {self.name} [{header}] {{ {refs} }}"

"""Affine expressions over loop index variables.

An :class:`AffineExpr` is an immutable integer-affine form
``sum_i c_i * x_i + k`` where each ``x_i`` is a loop index name.  Array
subscripts, loop bounds and dependence differences are all affine
expressions; the access matrix of a reference is assembled from the
coefficients of its subscript expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass(frozen=True)
class AffineExpr:
    """An integer affine expression ``sum(coeffs[name] * name) + const``.

    Instances are immutable and hashable; arithmetic returns new
    expressions.  Zero coefficients are never stored.
    """

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def constant(value: int) -> "AffineExpr":
        """The constant expression ``value``."""
        return AffineExpr((), int(value))

    @staticmethod
    def var(name: str, coefficient: int = 1) -> "AffineExpr":
        """The expression ``coefficient * name``."""
        if coefficient == 0:
            return AffineExpr((), 0)
        return AffineExpr(((name, int(coefficient)),), 0)

    @staticmethod
    def from_mapping(mapping: Mapping[str, int], const: int = 0) -> "AffineExpr":
        """Build from a name->coefficient mapping, dropping zeros."""
        items = tuple(
            sorted((name, int(c)) for name, c in mapping.items() if c != 0)
        )
        return AffineExpr(items, int(const))

    def coeff_map(self) -> dict[str, int]:
        """The name->coefficient mapping (zero coefficients absent)."""
        return dict(self.coeffs)

    def coefficient(self, name: str) -> int:
        """Coefficient of ``name`` (0 when absent)."""
        return dict(self.coeffs).get(name, 0)

    def variables(self) -> tuple[str, ...]:
        """Names with nonzero coefficient, sorted."""
        return tuple(name for name, _ in self.coeffs)

    def is_constant(self) -> bool:
        """True when no variable has a nonzero coefficient."""
        return not self.coeffs

    def coefficients_for(self, order: Sequence[str]) -> tuple[int, ...]:
        """Coefficient row for the given variable order.

        Raises:
            ValueError: if the expression mentions a variable missing
                from ``order``.
        """
        mapping = dict(self.coeffs)
        row = tuple(mapping.pop(name, 0) for name in order)
        if mapping:
            missing = ", ".join(sorted(mapping))
            raise ValueError(f"expression uses variables not in order: {missing}")
        return row

    def evaluate(self, values: Mapping[str, int]) -> int:
        """Evaluate at a point; missing variables raise ``KeyError``."""
        return self.const + sum(c * values[name] for name, c in self.coeffs)

    def substitute(self, bindings: Mapping[str, "AffineExpr"]) -> "AffineExpr":
        """Replace variables by affine expressions (unbound names kept)."""
        result = AffineExpr.constant(self.const)
        for name, coefficient in self.coeffs:
            replacement = bindings.get(name, AffineExpr.var(name))
            result = result + replacement * coefficient
        return result

    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            other = AffineExpr.constant(other)
        merged = dict(self.coeffs)
        for name, coefficient in other.coeffs:
            merged[name] = merged.get(name, 0) + coefficient
        return AffineExpr.from_mapping(merged, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(
            tuple((name, -c) for name, c in self.coeffs), -self.const
        )

    def __sub__(self, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            other = AffineExpr.constant(other)
        return self + (-other)

    def __rsub__(self, other: int) -> "AffineExpr":
        return AffineExpr.constant(other) - self

    def __mul__(self, factor: int) -> "AffineExpr":
        if not isinstance(factor, int):
            raise TypeError("affine expressions only scale by integers")
        if factor == 0:
            return AffineExpr.constant(0)
        return AffineExpr(
            tuple((name, c * factor) for name, c in self.coeffs),
            self.const * factor,
        )

    __rmul__ = __mul__

    def __str__(self) -> str:
        parts: list[str] = []
        for name, coefficient in self.coeffs:
            if coefficient == 1:
                term = name
            elif coefficient == -1:
                term = f"-{name}"
            else:
                term = f"{coefficient}*{name}"
            if parts and not term.startswith("-"):
                parts.append(f"+{term}")
            else:
                parts.append(term)
        if self.const or not parts:
            if parts and self.const >= 0:
                parts.append(f"+{self.const}")
            else:
                parts.append(str(self.const))
        return "".join(parts)

"""Data-dependence analysis for loop nests.

Loop transformations must respect data dependences (the paper's
Section 1 lists "checking dependences (legality issues)" among the
drawbacks of loop restructuring; our candidate-transform enumeration in
:mod:`repro.transform` therefore needs distance vectors).

The analysis implemented here is exact for the common case of the
benchmark kernels -- pairs of references with *equal access matrices*
(uniformly generated references), where the dependence distance is the
unique solution of ``A (I2 - I1) = b1 - b2``:

* If the access matrix has full column rank and the rational solution
  is integral, the distance is a single constant vector.
* If the system is inconsistent (or the GCD test fails), there is no
  dependence.
* Otherwise the dependence is recorded with ``distance=None``
  ("unknown"), which makes every non-identity transform illegal for the
  nest -- a conservative but safe fallback.

Read-read pairs never induce dependences.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.ir.loops import LoopNest
from repro.ir.reference import ArrayRef
from repro.linalg.matrices import rank as matrix_rank
from repro.linalg.vectors import gcd_many


@dataclass(frozen=True)
class Dependence:
    """A dependence between two references in one nest.

    Attributes:
        array: the array carrying the dependence.
        source_index: body position of the source reference.
        sink_index: body position of the sink reference.
        distance: lexicographically non-negative distance vector, or
            ``None`` when the distance is not a single known constant.
        ray: for self-aliasing pairs whose solution set is a line (a
            read and write with identical subscripts in a nest with a
            one-dimensional null space -- e.g. the ``T[i][j]``
            accumulation of a matrix multiply), the canonical
            lex-positive direction vector: the distance set is exactly
            ``{lambda * ray : lambda > 0}``.
    """

    array: str
    source_index: int
    sink_index: int
    distance: tuple[int, ...] | None
    ray: tuple[int, ...] | None = None

    @property
    def is_loop_independent(self) -> bool:
        """True when the dependence stays within one iteration."""
        return self.distance is not None and all(d == 0 for d in self.distance)

    @property
    def is_unknown(self) -> bool:
        """True when neither a constant distance nor a ray is known."""
        return self.distance is None and self.ray is None


@dataclass(frozen=True)
class DependenceInfo:
    """All dependences of a nest plus convenience queries."""

    nest_name: str
    dependences: tuple[Dependence, ...]

    @property
    def has_unknown(self) -> bool:
        """True if any dependence lacks a constant distance vector."""
        return any(dep.is_unknown for dep in self.dependences)

    def distance_vectors(self) -> tuple[tuple[int, ...], ...]:
        """Distinct known, non-zero distance vectors."""
        seen: list[tuple[int, ...]] = []
        for dep in self.dependences:
            if dep.distance is not None and any(dep.distance):
                if dep.distance not in seen:
                    seen.append(dep.distance)
        return tuple(seen)

    def rays(self) -> tuple[tuple[int, ...], ...]:
        """Distinct dependence rays (direction families)."""
        seen: list[tuple[int, ...]] = []
        for dep in self.dependences:
            if dep.ray is not None and dep.ray not in seen:
                seen.append(dep.ray)
        return tuple(seen)


def _solve_uniform_distance(
    matrix: Sequence[Sequence[int]],
    rhs: Sequence[int],
) -> tuple[str, tuple[int, ...] | None]:
    """Solve ``A x = rhs`` for a unique integer ``x``.

    Returns:
        ("none", None)     -- provably no integer solution;
        ("unique", x)      -- unique integer solution x;
        ("unknown", None)  -- solutions exist but are not unique, or
                              uniqueness could not be established.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0

    # GCD test per row: a*x = c has integer solutions only if gcd(a) | c.
    for row, value in zip(matrix, rhs):
        divisor = gcd_many(row)
        if divisor == 0:
            if value != 0:
                return ("none", None)
        elif value % divisor != 0:
            return ("none", None)

    if cols == 0:
        return ("unique", ())

    if matrix_rank(matrix) < cols:
        return ("unknown", None)

    # Full column rank: solve by exact elimination on the augmented system.
    work = [[Fraction(matrix[r][c]) for c in range(cols)] + [Fraction(rhs[r])]
            for r in range(rows)]
    pivot_row = 0
    pivots: list[int] = []
    for col in range(cols):
        chosen = None
        for r in range(pivot_row, rows):
            if work[r][col] != 0:
                chosen = r
                break
        if chosen is None:
            continue
        work[pivot_row], work[chosen] = work[chosen], work[pivot_row]
        pivot = work[pivot_row][col]
        work[pivot_row] = [entry / pivot for entry in work[pivot_row]]
        for r in range(rows):
            if r != pivot_row and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    entry - factor * p
                    for entry, p in zip(work[r], work[pivot_row])
                ]
        pivots.append(col)
        pivot_row += 1
    # Inconsistent rows: 0 = nonzero.
    for r in range(pivot_row, rows):
        if work[r][cols] != 0:
            return ("none", None)
    solution: list[int] = []
    for i, col in enumerate(pivots):
        value = work[i][cols]
        if value.denominator != 1:
            return ("none", None)
        solution.append(int(value))
    if len(solution) != cols:
        return ("unknown", None)
    return ("unique", tuple(solution))


def _lex_nonneg(vector: Sequence[int]) -> bool:
    """True if vector is lexicographically >= 0."""
    for component in vector:
        if component != 0:
            return component > 0
    return True


def analyze_nest_dependences(nest: LoopNest) -> DependenceInfo:
    """Compute the dependences of one nest.

    Every ordered pair of references to the same array with at least one
    write is tested.  Distances are normalized to be lexicographically
    non-negative (a dependence always flows from the earlier iteration
    to the later one); loop-independent (zero) distances are kept so
    callers can distinguish them from "no dependence".
    """
    order = nest.index_order
    dependences: list[Dependence] = []
    body = nest.body
    for i, first in enumerate(body):
        for j in range(i, len(body)):
            second = body[j]
            if first.array != second.array:
                continue
            if not (first.is_write or second.is_write):
                continue
            if i == j and not first.is_write:
                continue
            dep = _pair_dependence(first, second, i, j, order)
            if dep is not None:
                dependences.append(dep)
    return DependenceInfo(nest.name, tuple(dependences))


def _pair_dependence(
    first: ArrayRef,
    second: ArrayRef,
    first_index: int,
    second_index: int,
    order: Sequence[str],
) -> Dependence | None:
    """Dependence between one pair of same-array references, or None."""
    matrix_a = first.access_matrix(order)
    matrix_b = second.access_matrix(order)
    if matrix_a != matrix_b:
        # Non-uniform pair: fall back to a cheap GCD-style disproof on
        # the difference system; otherwise record an unknown dependence.
        return Dependence(first.array, first_index, second_index, None)
    rhs = tuple(
        a - b for a, b in zip(first.offset_vector(), second.offset_vector())
    )
    status, distance = _solve_uniform_distance(matrix_a, rhs)
    if status == "none":
        return None
    if status == "unknown":
        # Identical subscripts with a one-dimensional solution space:
        # the distance set is a ray {lambda * n : lambda > 0}, which
        # legality can check exactly (e.g. the matmul accumulation
        # T[i][j], whose ray is the innermost-loop direction).
        if all(value == 0 for value in rhs):
            from repro.linalg.nullspace import nullspace_basis

            basis = nullspace_basis(matrix_a)
            if len(basis) == 1:
                return Dependence(
                    first.array, first_index, second_index, None, basis[0]
                )
        return Dependence(first.array, first_index, second_index, None)
    assert distance is not None
    if not _lex_nonneg(distance):
        distance = tuple(-component for component in distance)
    if all(component == 0 for component in distance) and first_index == second_index:
        # A reference trivially "depends" on itself at the same
        # iteration; this never constrains reordering.
        return None
    return Dependence(first.array, first_index, second_index, distance)

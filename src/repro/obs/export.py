"""Exposition surfaces: Prometheus text, JSON-lines traces, JSON logs.

``prometheus_text`` renders a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot in the text exposition format (version 0.0.4): ``# HELP`` /
``# TYPE`` headers, escaped label values, cumulative ``le`` histogram
buckets ending in ``+Inf``, and ``_sum`` / ``_count`` series.
``parse_prometheus_text`` is the minimal inverse used by tests and the
CI smoke to assert the output actually parses.

``TraceJsonWriter`` tees span trees to a JSON-lines file (the
``--trace-log`` CLI flag); one request's full tree per line, flushed
eagerly so a crashed daemon still leaves complete lines behind.

``JsonLogFormatter`` backs the service CLI's ``--log-json`` mode: one
JSON object per line with ts/level/logger/message, plus whatever
extras (fingerprint, request id) the log call attached.
"""

from __future__ import annotations

import json
import logging
import math
import time
from typing import IO, Mapping

__all__ = [
    "CONTENT_TYPE",
    "JsonLogFormatter",
    "TraceJsonWriter",
    "parse_prometheus_text",
    "prometheus_text",
]

#: The content type Prometheus scrapers expect for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(label_items) -> str:
    if not label_items:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in label_items
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _bound_text(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(float(bound))


def prometheus_text(snapshot: Mapping) -> str:
    """Render a registry snapshot as Prometheus text exposition."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for entry in snapshot.get("metrics", ()):
        name = entry["name"]
        kind = entry["kind"]
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = entry.get("help") or ""
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
        labels = [tuple(pair) for pair in entry.get("labels", ())]
        if kind in ("counter", "gauge"):
            lines.append(
                f"{name}{_labels_text(labels)} "
                f"{_format_value(entry['value'])}"
            )
        elif kind == "histogram":
            # Bucket counts are cumulative by construction
            # (Histogram.observe increments every bucket the value
            # fits under), matching the `le` semantics directly.
            for bound, count in zip(entry["bounds"], entry["buckets"]):
                bucket_labels = labels + [("le", _bound_text(bound))]
                lines.append(
                    f"{name}_bucket{_labels_text(bucket_labels)} {count}"
                )
            inf_labels = labels + [("le", "+Inf")]
            lines.append(
                f"{name}_bucket{_labels_text(inf_labels)} {entry['count']}"
            )
            lines.append(
                f"{name}_sum{_labels_text(labels)} "
                f"{_format_value(entry['sum'])}"
            )
            lines.append(
                f"{name}_count{_labels_text(labels)} {entry['count']}"
            )
        else:
            raise ValueError(f"unknown metric kind {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(text: str) -> dict:
    """Parse the ``{k="v",...}`` part of a sample line."""
    labels: dict = {}
    index = 0
    while index < len(text):
        equals = text.index("=", index)
        key = text[index:equals].strip().lstrip(",").strip()
        if text[equals + 1] != '"':
            raise ValueError(f"unquoted label value in {text!r}")
        cursor = equals + 2
        value_chars: list[str] = []
        while True:
            char = text[cursor]
            if char == "\\":
                escape = text[cursor + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escape, escape)
                )
                cursor += 2
            elif char == '"':
                cursor += 1
                break
            else:
                value_chars.append(char)
                cursor += 1
        labels[key] = "".join(value_chars)
        index = cursor
        while index < len(text) and text[index] in ", ":
            index += 1
    return labels


def parse_prometheus_text(text: str) -> dict:
    """Parse exposition text back into ``{"types": ..., "samples": ...}``.

    ``types`` maps metric name to declared type; ``samples`` is a list
    of ``(series name, labels dict, float value)`` tuples.  Minimal by
    design -- enough for round-trip tests and smoke assertions, not a
    general scraper.

    Raises:
        ValueError: on any line that is not valid exposition format.
    """
    types: dict = {}
    helps: dict = {}
    samples: list = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"bad TYPE line: {raw_line!r}")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rindex("}")
            series = line[:brace]
            labels = _parse_labels(line[brace + 1 : close])
            value_text = line[close + 1 :].strip()
        else:
            series, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        if not series or not value_text:
            raise ValueError(f"bad sample line: {raw_line!r}")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.append((series, labels, value))
    return {"types": types, "helps": helps, "samples": samples}


class TraceJsonWriter:
    """Tees span trees to a JSON-lines file (``--trace-log``).

    One complete tree per line, flushed per write: a killed daemon
    leaves a prefix of complete lines, never a torn one.
    """

    def __init__(self, path_or_stream):
        if hasattr(path_or_stream, "write"):
            self._stream: IO = path_or_stream
            self._owns_stream = False
        else:
            self._stream = open(path_or_stream, "a", encoding="utf-8")
            self._owns_stream = True

    def write(self, tree: Mapping) -> None:
        self._stream.write(json.dumps(tree, sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "TraceJsonWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line: ts/level/logger/message + extras.

    Extras are whatever the log call passed via ``extra=``; the daemon
    attaches ``fingerprint`` and ``request_id`` where it has them so
    production logs are greppable per request.
    """

    #: LogRecord attributes that are plumbing, not payload.
    _STANDARD = frozenset(
        logging.LogRecord("", 0, "", 0, "", (), None).__dict__
    ) | {"message", "asctime", "taskName"}

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            entry["exc_info"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key not in self._STANDARD and not key.startswith("_"):
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                entry[key] = value
        return json.dumps(entry, sort_keys=True)


def _utc_ts() -> float:  # pragma: no cover - trivial indirection
    return time.time()

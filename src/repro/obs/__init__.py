"""Observability layer: span tracing, mergeable metrics, exposition.

Three modules, one contract:

* :mod:`repro.obs.trace` -- span trees over ``perf_counter_ns`` with a
  contextvar current-span and an explicit no-op mode (one branch when
  disabled).
* :mod:`repro.obs.metrics` -- process-local counter/gauge/histogram
  registry whose snapshots merge by summation (associative and
  commutative, so worker completion order never matters).
* :mod:`repro.obs.export` -- Prometheus text exposition, a JSON-lines
  trace sink, and a JSON log formatter for the service CLI.

:func:`capture` bundles the worker side of the cross-process story:
run the solve inside it, then ship ``telemetry()`` back piggybacked on
the result for the daemon to merge.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs import metrics, trace
from repro.obs.export import (
    CONTENT_TYPE,
    JsonLogFormatter,
    TraceJsonWriter,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    EFFORT_BUCKETS,
    MetricsRegistry,
    merge_snapshot,
)
from repro.obs.trace import NOOP_SPAN, Span, recording, span, span_from_dict

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "EFFORT_BUCKETS",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "TraceJsonWriter",
    "capture",
    "merge_snapshot",
    "metrics",
    "parse_prometheus_text",
    "prometheus_text",
    "recording",
    "span",
    "span_from_dict",
    "trace",
]


class Capture:
    """The telemetry a worker accumulated for one request."""

    __slots__ = ("root", "registry")

    def __init__(self, root: Span, registry: MetricsRegistry):
        self.root = root
        self.registry = registry

    def telemetry(self) -> dict:
        """The piggyback payload: one span tree + one metrics delta."""
        return {
            "spans": [self.root.to_dict()],
            "metrics": self.registry.snapshot(),
        }


@contextmanager
def capture(root_name: str, **attributes):
    """Record one unit of work's spans and metric deltas together.

    The pool-worker entry point: wraps :func:`trace.recording` and
    :func:`metrics.collecting` so everything the ambient APIs record
    inside the block lands in one :class:`Capture`, ready to ship back
    across the process boundary.  Single-threaded processes only (the
    enable flags are process-global).
    """
    with trace.recording(root_name, **attributes) as root:
        with metrics.collecting() as registry:
            yield Capture(root, registry)

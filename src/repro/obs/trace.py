"""Lightweight request tracing: span trees over ``perf_counter_ns``.

The serving stack spans five layers (authoring -> compiled bitset ->
numpy kernel -> batch simulator -> resident daemon); a flat counter
dict cannot answer "where did this request's 40 ms go?".  A *span* is
one named, timed phase with attributes and child spans; a request's
span tree is its latency budget, phase by phase.

Design constraints, in order:

* **The hot path pays one branch when tracing is off.**  Library code
  instruments itself with :func:`span`; when tracing is disabled that
  call returns a shared no-op handle without allocating anything.
* **Phase granularity, not node granularity.**  Spans wrap a network
  build, a scheme race, a worker dispatch -- never a solver's inner
  loop.  The machine-independent effort counters
  (:class:`repro.csp.stats.SolverStats`) remain the per-node
  measurement discipline, exactly as the paper's Table 2 / Figure 4
  report nodes and consistency checks instead of wall clock.
* **Spans cross process boundaries.**  A warm pool worker records its
  sub-spans locally and ships them back piggybacked on the result
  (:meth:`Span.to_dict` / :func:`span_from_dict` round-trip exactly);
  the daemon re-parents them under the request's dispatch span with
  :meth:`Span.adopt`.  Durations are timebase-independent, so the
  merged tree's latency budget is correct even where raw
  ``perf_counter_ns`` values are not comparable across processes.

Two usage styles share the same :class:`Span`:

* *Ambient* (library code): ``with span("build_network"): ...``
  attaches to the contextvar-tracked current span.  Roots are opened
  with :func:`recording`, which also force-enables tracing for its
  dynamic extent -- this is how a daemon worker captures one
  request's sub-spans without flipping the global switch.
* *Explicit* (the daemon): build a :class:`Span`, open children with
  :meth:`Span.phase`, and pass the tree around by hand.  The async
  serving loop interleaves many requests on one thread, so ambient
  state would be a bug factory there.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Iterator, Mapping

__all__ = [
    "NOOP_SPAN",
    "Span",
    "current_span",
    "enabled",
    "recording",
    "set_enabled",
    "span",
    "span_from_dict",
]

#: Global switch of the ambient API.  Off by default: importing the
#: library must not make every optimize() call start allocating spans.
_ENABLED = False

#: The ambient current span (per thread of control; asyncio tasks and
#: threads each see their own value).
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


def set_enabled(on: bool) -> None:
    """Turn the ambient tracing API on or off globally."""
    global _ENABLED
    _ENABLED = bool(on)


def enabled() -> bool:
    """True when the ambient tracing API is recording."""
    return _ENABLED


def current_span() -> "Span | None":
    """The ambient current span (None outside any recording)."""
    return _CURRENT.get()


class Span:
    """One named, timed phase with attributes and child spans.

    Args:
        name: phase name (the trace vocabulary is documented in the
            README's span phase glossary).
        attributes: initial attribute mapping (copied).
        start_ns: explicit start timestamp (``perf_counter_ns`` by
            default; deserialization passes the recorded value).
    """

    __slots__ = ("name", "start_ns", "end_ns", "attributes", "children")

    def __init__(
        self,
        name: str,
        attributes: Mapping | None = None,
        start_ns: int | None = None,
    ):
        self.name = name
        self.start_ns = (
            time.perf_counter_ns() if start_ns is None else int(start_ns)
        )
        self.end_ns: int | None = None
        self.attributes: dict = dict(attributes) if attributes else {}
        self.children: list[Span] = []

    # -- lifecycle -------------------------------------------------------

    def end(self) -> "Span":
        """Close the span (idempotent: the first end wins)."""
        if self.end_ns is None:
            self.end_ns = time.perf_counter_ns()
        return self

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (to "now" while the span is open)."""
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return max(end - self.start_ns, 0)

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds."""
        return self.duration_ns / 1e9

    def set_attribute(self, key: str, value) -> "Span":
        self.attributes[key] = value
        return self

    # -- tree building ---------------------------------------------------

    def child(self, name: str, **attributes) -> "Span":
        """Open (and attach) a child span; the caller must end() it."""
        child = Span(name, attributes=attributes)
        self.children.append(child)
        return child

    def phase(self, name: str, **attributes) -> "_PhaseHandle":
        """A context manager recording one child phase of this span."""
        return _PhaseHandle(self.child(name, **attributes))

    def adopt(self, payload: Mapping) -> "Span":
        """Re-parent a serialized span (a worker's sub-tree) under self.

        The worker recorded the sub-tree in its own process; after the
        result crosses the pool boundary the daemon attaches it here.
        Raw timestamps are kept as recorded (on Linux
        ``perf_counter_ns`` is CLOCK_MONOTONIC and aligns across
        processes; elsewhere only the durations are meaningful).
        """
        child = span_from_dict(payload)
        self.children.append(child)
        return child

    # -- queries ---------------------------------------------------------

    def iter_spans(self) -> Iterator["Span"]:
        """Self plus every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, or None."""
        for candidate in self.iter_spans():
            if candidate.name == name:
                return candidate
        return None

    def phase_seconds(self) -> dict[str, float]:
        """Summed duration of each *direct* child phase, by name."""
        totals: dict[str, float] = {}
        for child in self.children:
            totals[child.name] = (
                totals.get(child.name, 0.0) + child.duration_seconds
            )
        return totals

    # -- wire form -------------------------------------------------------

    def to_dict(self) -> dict:
        """Exact JSON-encodable form (see :func:`span_from_dict`)."""
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ns}ns, "
            f"children={len(self.children)})"
        )


def span_from_dict(payload: Mapping) -> Span:
    """Rebuild a span tree from its wire form (byte-exact round trip).

    Raises:
        ValueError: for a structurally malformed payload.
    """
    try:
        rebuilt = Span(
            str(payload["name"]),
            attributes=payload.get("attributes") or {},
            start_ns=payload["start_ns"],
        )
        end_ns = payload.get("end_ns")
        rebuilt.end_ns = None if end_ns is None else int(end_ns)
        for child in payload.get("children", ()):
            rebuilt.children.append(span_from_dict(child))
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed span payload: {exc}") from exc
    return rebuilt


class _PhaseHandle:
    """Context manager pairing ``child()`` with ``end()``."""

    __slots__ = ("span",)

    def __init__(self, span: Span):
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        self.span.end()


class _NoopSpan:
    """The shared do-nothing span: every operation returns fast.

    Handed out when tracing is disabled, so instrumented code is
    written once and the disabled cost is one branch plus a method
    call that touches nothing.
    """

    __slots__ = ()

    name = "noop"
    start_ns = 0
    end_ns = 0
    attributes: dict = {}
    children: list = []
    duration_ns = 0
    duration_seconds = 0.0

    def end(self) -> "_NoopSpan":
        return self

    def set_attribute(self, key: str, value) -> "_NoopSpan":
        return self

    def child(self, name: str, **attributes) -> "_NoopSpan":
        return self

    def phase(self, name: str, **attributes) -> "_NoopHandle":
        return _NOOP_HANDLE

    def adopt(self, payload) -> "_NoopSpan":
        return self

    def iter_spans(self):
        return iter(())

    def find(self, name: str):
        return None

    def phase_seconds(self) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def __bool__(self) -> bool:
        # `if span:` distinguishes a live span from the no-op one.
        return False


class _NoopHandle:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return NOOP_SPAN

    def __exit__(self, *exc_info) -> None:
        return None


#: The shared no-op instances (allocation-free disabled path).
NOOP_SPAN = _NoopSpan()
_NOOP_HANDLE = _NoopHandle()


class _AmbientHandle:
    """Context manager of the ambient :func:`span` API."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: Span):
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        parent = _CURRENT.get()
        if parent is not None:
            parent.children.append(self._span)
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.end()
        if self._token is not None:
            _CURRENT.reset(self._token)


def span(name: str, **attributes):
    """Record one phase under the ambient current span.

    When tracing is disabled this is the one-branch no-op path; when
    enabled, the new span attaches to the contextvar-tracked parent
    (or floats as a root when there is none -- e.g. ad-hoc use in a
    REPL) and becomes the current span for its ``with`` body.
    """
    if not _ENABLED:
        return _NOOP_HANDLE
    return _AmbientHandle(Span(name, attributes=attributes or None))


class _RecordingHandle:
    """Context manager of :func:`recording`."""

    __slots__ = ("_span", "_token", "_was_enabled")

    def __init__(self, span: Span):
        self._span = span
        self._token = None
        self._was_enabled = False

    def __enter__(self) -> Span:
        global _ENABLED
        self._was_enabled = _ENABLED
        _ENABLED = True
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        global _ENABLED
        self._span.end()
        if self._token is not None:
            _CURRENT.reset(self._token)
        _ENABLED = self._was_enabled


def recording(name: str, **attributes) -> _RecordingHandle:
    """Open a root span and force-enable tracing for its extent.

    This is the capture entry point of a pool worker: everything the
    ambient :func:`span` API records inside the ``with`` body nests
    under the yielded root, which the worker then ships back
    (``root.to_dict()``) piggybacked on its result.

    The enable flag is process-global: use this from one thread of
    control at a time (daemon pool workers are single-threaded, the
    one place this runs in production).
    """
    return _RecordingHandle(Span(name, attributes=attributes or None))

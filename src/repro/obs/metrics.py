"""Process-local metrics: counters, gauges, histograms, merge.

The registry is a flat dict keyed by ``(metric name, sorted label
items)``; instruments are plain objects mutated in place.  There is no
locking: every writer in this codebase is either the daemon's event
loop (single-threaded) or a pool worker (single-threaded process), and
the cross-process path goes through snapshots, not shared mutation.

Snapshots are the transport and merge unit.  A warm pool worker runs
its request inside :func:`collecting`, which swaps in a fresh registry
and yields its snapshot at the end; the daemon folds that delta into
the global registry with :func:`merge_snapshot`.  Merge is defined as
*sum* for every instrument kind -- counters add, histogram buckets and
sums add, and gauges add too (a shipped gauge is a delta by
convention) -- so the fold is associative and commutative and the
final registry is independent of worker completion order.  A future
cluster router rolls up member daemons through this same path.

Like tracing, the module-level convenience API (:func:`counter`,
:func:`observe`, ...) is off by default and costs one branch when
disabled.  The daemon flips it on at startup; library code calls it
unconditionally.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "EFFORT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "counter",
    "enabled",
    "gauge",
    "get_registry",
    "merge_snapshot",
    "observe",
    "set_enabled",
    "set_registry",
]

#: Request/phase latency buckets in seconds: 1 ms .. 10 s, roughly
#: geometric.  Fixed (not configurable per call site) so histograms
#: from different processes always merge bucket-for-bucket.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Solver-effort buckets (nodes, consistency checks): powers of ten.
#: These bucket the paper's machine-independent counters, so the
#: exposition surface reports effort distributions per engine rather
#: than non-portable wall clock.
EFFORT_BUCKETS = (
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
)


def _label_key(labels: Mapping | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A value that can go either way (queue depth, uptime).

    In a shipped snapshot a gauge is interpreted as a *delta* and
    merged by summing, which keeps the worker fold order-independent.
    Point-in-time gauges (uptime) are set at scrape time on the
    daemon's own registry and never shipped.
    """

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Cumulative-bucket histogram with fixed upper bounds."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds=DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.bounds = bounds
        # One slot per finite bound; +Inf is implied by `count`.
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1

    def snapshot(self) -> dict:
        return {
            "kind": "histogram",
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All instruments of one process (or one captured delta)."""

    def __init__(self):
        # (name, label-items-tuple) -> instrument
        self._metrics: dict = {}
        # name -> (kind, help text); first registration wins.
        self._meta: dict = {}

    def _get(self, name, labels, kind, help, bounds=None):
        meta = self._meta.get(name)
        if meta is None:
            self._meta[name] = (kind, help or "")
        elif meta[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {meta[0]}, not {kind}"
            )
        key = (name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            if kind == "histogram":
                instrument = Histogram(bounds or DEFAULT_LATENCY_BUCKETS)
            else:
                instrument = _KINDS[kind]()
            self._metrics[key] = instrument
        return instrument

    def counter(self, name: str, labels: Mapping | None = None, help: str = "") -> Counter:
        return self._get(name, labels, "counter", help)

    def gauge(self, name: str, labels: Mapping | None = None, help: str = "") -> Gauge:
        return self._get(name, labels, "gauge", help)

    def histogram(
        self,
        name: str,
        labels: Mapping | None = None,
        help: str = "",
        bounds=None,
    ) -> Histogram:
        return self._get(name, labels, "histogram", help, bounds=bounds)

    def iter_metrics(self) -> Iterator[tuple]:
        """Yields (name, label-items, instrument), name-sorted."""
        for (name, label_items), instrument in sorted(
            self._metrics.items(), key=lambda item: item[0]
        ):
            yield name, label_items, instrument

    def help_text(self, name: str) -> str:
        meta = self._meta.get(name)
        return meta[1] if meta else ""

    def snapshot(self) -> dict:
        """JSON-encodable dump: the wire/merge form of this registry."""
        metrics = []
        for name, label_items, instrument in self.iter_metrics():
            entry = instrument.snapshot()
            entry["name"] = name
            entry["labels"] = [list(pair) for pair in label_items]
            entry["help"] = self.help_text(name)
            metrics.append(entry)
        return {"metrics": metrics}

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a shipped delta into this registry (sum semantics)."""
        for entry in snapshot.get("metrics", ()):
            name = entry["name"]
            labels = {key: value for key, value in entry.get("labels", ())}
            kind = entry["kind"]
            if kind == "counter":
                self.counter(name, labels, help=entry.get("help", "")).inc(
                    entry["value"]
                )
            elif kind == "gauge":
                self.gauge(name, labels, help=entry.get("help", "")).inc(
                    entry["value"]
                )
            elif kind == "histogram":
                histogram = self.histogram(
                    name,
                    labels,
                    help=entry.get("help", ""),
                    bounds=entry["bounds"],
                )
                if list(histogram.bounds) != [
                    float(bound) for bound in entry["bounds"]
                ]:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds disagree; "
                        "snapshots only merge bucket-for-bucket"
                    )
                for index, count in enumerate(entry["buckets"]):
                    histogram.bucket_counts[index] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
            else:
                raise ValueError(f"unknown metric kind {kind!r}")


def merge_snapshot(base: Mapping, delta: Mapping) -> dict:
    """Pure-function merge of two snapshots (for tests and roll-ups)."""
    registry = MetricsRegistry()
    registry.merge_snapshot(base)
    registry.merge_snapshot(delta)
    return registry.snapshot()


# -- module-level convenience API ---------------------------------------

_ENABLED = False
_REGISTRY = MetricsRegistry()


def set_enabled(on: bool) -> None:
    """Turn the module-level convenience API on or off globally."""
    global _ENABLED
    _ENABLED = bool(on)


def enabled() -> bool:
    return _ENABLED


def get_registry() -> MetricsRegistry:
    """The active registry (what :func:`counter` et al. write into)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def counter(
    name: str,
    amount: float = 1.0,
    labels: Mapping | None = None,
    help: str = "",
) -> None:
    """Increment a counter on the active registry (no-op when off)."""
    if not _ENABLED:
        return
    _REGISTRY.counter(name, labels, help=help).inc(amount)


def gauge(
    name: str,
    value: float,
    labels: Mapping | None = None,
    help: str = "",
) -> None:
    """Set a gauge on the active registry (no-op when off)."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, labels, help=help).set(value)


def observe(
    name: str,
    value: float,
    labels: Mapping | None = None,
    help: str = "",
    bounds=None,
) -> None:
    """Record a histogram observation (no-op when off)."""
    if not _ENABLED:
        return
    _REGISTRY.histogram(name, labels, help=help, bounds=bounds).observe(value)


@contextmanager
def collecting():
    """Capture this thread-of-control's metric writes as a delta.

    Swaps a fresh registry in (enabling the convenience API for the
    duration) and yields it; read ``registry.snapshot()`` after the
    block to ship the delta.  This is the pool-worker capture path --
    single-threaded processes only, same caveat as ``trace.recording``.
    """
    fresh = MetricsRegistry()
    previous_registry = set_registry(fresh)
    previous_enabled = _ENABLED
    set_enabled(True)
    try:
        yield fresh
    finally:
        set_registry(previous_registry)
        set_enabled(previous_enabled)

"""Structural analysis of constraint graphs.

The tractability of a constraint network is governed by the structure
of its constraint graph (Dechter, *Constraint Processing*, the paper's
reference [3]): networks whose graphs are trees are solvable without
backtracking; more generally, search cost is exponential only in the
*induced width* along the instantiation ordering.  This module provides
the structural toolkit -- connected components, min-degree /
max-cardinality orderings, induced width, tree detection -- plus a
decomposition wrapper that solves independent components separately
(an exponential saving whenever a layout network splits, which happens
in practice when two groups of arrays never meet in one nest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats

Value = Hashable


def connected_components(network: ConstraintNetwork) -> list[tuple[str, ...]]:
    """Variable groups with no constraints between groups.

    Returns components in first-appearance order of their variables;
    isolated (unconstrained) variables form singleton components.
    """
    seen: set[str] = set()
    components: list[tuple[str, ...]] = []
    for variable in network.variables:
        if variable in seen:
            continue
        stack = [variable]
        component: list[str] = []
        seen.add(variable)
        while stack:
            current = stack.pop()
            component.append(current)
            for neighbor in sorted(network.neighbors(current)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(tuple(sorted(component, key=network.variables.index)))
    return components


def is_tree(network: ConstraintNetwork) -> bool:
    """True iff the constraint graph is acyclic (forest)."""
    edges = len(network.constraints)
    vertices = len(network.variables)
    return edges == vertices - len(connected_components(network))


def min_degree_ordering(network: ConstraintNetwork) -> list[str]:
    """Classic min-degree elimination ordering (last eliminated first).

    Greedily eliminates the variable of smallest degree in the evolving
    (moralized) graph; the returned list is an *instantiation* order,
    i.e. the reverse of the elimination order.
    """
    adjacency: dict[str, set[str]] = {
        variable: set(network.neighbors(variable))
        for variable in network.variables
    }
    elimination: list[str] = []
    remaining = set(network.variables)
    while remaining:
        variable = min(
            remaining, key=lambda v: (len(adjacency[v] & remaining), v)
        )
        neighbors = adjacency[variable] & remaining
        # Connect the neighborhood (fill-in).
        for first in neighbors:
            for second in neighbors:
                if first != second:
                    adjacency[first].add(second)
        elimination.append(variable)
        remaining.remove(variable)
    elimination.reverse()
    return elimination


def induced_width(network: ConstraintNetwork, order: list[str] | None = None) -> int:
    """Induced width along an instantiation ordering.

    The width of a variable is its number of earlier neighbors in the
    *induced* graph (fill-in edges added processing last-to-first); the
    induced width is the maximum over variables.  Search with conflict
    sets is exponential only in this quantity.  Defaults to the
    min-degree ordering.
    """
    if order is None:
        order = min_degree_ordering(network)
    position = {variable: index for index, variable in enumerate(order)}
    adjacency: dict[str, set[str]] = {
        variable: set(network.neighbors(variable))
        for variable in network.variables
    }
    width = 0
    # Process from last to first, connecting earlier neighbors.
    for variable in reversed(order):
        earlier = {
            neighbor
            for neighbor in adjacency[variable]
            if position[neighbor] < position[variable]
        }
        width = max(width, len(earlier))
        for first in earlier:
            for second in earlier:
                if first != second:
                    adjacency[first].add(second)
    return width


@dataclass(frozen=True)
class StructureReport:
    """Summary of a network's structure.

    Attributes:
        variables: variable count.
        constraints: constraint count.
        components: sizes of connected components, largest first.
        tree: True when the graph is a forest.
        width: induced width along the min-degree ordering.
    """

    variables: int
    constraints: int
    components: tuple[int, ...]
    tree: bool
    width: int


def analyze_structure(network: ConstraintNetwork) -> StructureReport:
    """Compute the full structural summary of a network."""
    components = connected_components(network)
    return StructureReport(
        variables=len(network.variables),
        constraints=len(network.constraints),
        components=tuple(
            sorted((len(c) for c in components), reverse=True)
        ),
        tree=is_tree(network),
        width=induced_width(network),
    )


def solve_by_components(
    network: ConstraintNetwork,
    solver_factory: Callable[[], object],
) -> SolverResult:
    """Solve each connected component independently and merge.

    Component independence means the search costs *add* instead of
    multiply.  The merged result is UNSAT iff any component is.

    Args:
        network: the network to solve.
        solver_factory: zero-argument callable returning a fresh solver
            with a ``solve(network)`` method per component.
    """
    merged: dict[str, Value] = {}
    total = SolverStats()
    for component in connected_components(network):
        sub = _subnetwork(network, component)
        result = solver_factory().solve(sub)
        _accumulate(total, result.stats)
        if result.assignment is None:
            return SolverResult(None, total, complete=result.complete)
        merged.update(result.assignment)
    return SolverResult(merged, total, complete=True)


def _subnetwork(
    network: ConstraintNetwork, variables: tuple[str, ...]
) -> ConstraintNetwork:
    sub = ConstraintNetwork()
    for variable in variables:
        sub.add_variable(variable, network.domain(variable))
    for constraint in network.constraints:
        if constraint.first in variables and constraint.second in variables:
            sub.add_constraint(
                constraint.first, constraint.second, constraint.pairs
            )
    return sub


def _accumulate(total: SolverStats, part: SolverStats) -> None:
    total.nodes += part.nodes
    total.backtracks += part.backtracks
    total.backjumps += part.backjumps
    total.consistency_checks += part.consistency_checks
    total.restarts += part.restarts
    total.time_seconds += part.time_seconds

"""Search instrumentation shared by all solvers.

Table 2 and Figure 4 of the paper are about solver cost; wall-clock
time on a 2026 machine is not comparable to a 500 MHz Sparc, so every
solver additionally reports machine-independent effort counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Mapping


@dataclass
class SolverStats:
    """Counters accumulated during one solver run.

    Attributes:
        nodes: value-assignment attempts (forward-phase steps).
        backtracks: chronological returns to the previous variable.
        backjumps: non-chronological jumps (skipping >= 1 variable).
        consistency_checks: individual pair-compatibility tests.
        restarts: local-search restarts (min-conflicts only).
        time_seconds: wall-clock solve time.
    """

    nodes: int = 0
    backtracks: int = 0
    backjumps: int = 0
    consistency_checks: int = 0
    restarts: int = 0
    time_seconds: float = 0.0

    @property
    def total_effort(self) -> int:
        """A single machine-independent cost figure for comparisons."""
        return self.nodes + self.consistency_checks

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by reports and benchmarks."""
        return {
            "nodes": self.nodes,
            "backtracks": self.backtracks,
            "backjumps": self.backjumps,
            "consistency_checks": self.consistency_checks,
            "restarts": self.restarts,
            "time_seconds": self.time_seconds,
        }


@dataclass(frozen=True)
class SolverResult:
    """Outcome of a solver run.

    Attributes:
        assignment: a satisfying total assignment, or ``None`` when the
            network was proven (or believed, for incomplete solvers)
            unsatisfiable.
        stats: the effort counters for the run.
        complete: True when a ``None`` assignment is a *proof* of
            unsatisfiability (systematic solvers), False for incomplete
            solvers that merely gave up.
    """

    assignment: Mapping[str, Hashable] | None
    stats: SolverStats
    complete: bool = True

    @property
    def satisfiable(self) -> bool:
        """True when a solution was found."""
        return self.assignment is not None


class Stopwatch:
    """Tiny context manager writing elapsed seconds into a stats object."""

    def __init__(self, stats: SolverStats):
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stats.time_seconds = time.perf_counter() - self._start

"""The compiled constraint kernel: integer indices and bitset domains.

:class:`~repro.csp.network.ConstraintNetwork` is the *authoring*
representation -- named variables, arbitrary hashable domain values,
constraints as ``frozenset``s of allowed value pairs.  It is convenient
to build and inspect, but its consistency check (`BinaryConstraint.allows`)
pays Python-object prices: string comparisons plus a frozenset-of-tuples
membership test, on the single hottest operation of every solver.

:class:`CompiledNetwork` is the *execution* representation the solver
family actually runs on.  Compilation interns every variable and domain
value to a dense integer index and stores each constraint as per-value
**support bitmasks** (plain Python ints used as bitsets): for a
constrained pair ``(i, j)`` and a value index ``a`` of variable ``i``,
``supports[(i, j)][a]`` has bit ``b`` set iff ``(a, b)`` is allowed.
That turns the solver inner loops into single machine-int operations:

* ``allows``            -> one shift-and-mask: ``(mask >> b) & 1``;
* ``supported_values``  -> the mask itself;
* forward checking      -> ``domain_mask & support_mask``;
* AC-3 revision         -> ``support_mask & source_domain_mask != 0``;
* support counting      -> ``int.bit_count``.

Compilation is cached on the network (keyed by its mutation revision,
so a network extended after compilation recompiles transparently) and
round-trips back to named assignments at the boundary via
:meth:`CompiledNetwork.to_named` / :meth:`CompiledNetwork.to_indices`.
The kernel is picklable, which is how the service layer ships one
compiled form to every racing worker process.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from repro.csp.network import ConstraintNetwork

Value = Hashable


#: One CPython machine-word's worth of mask (63 payload bits).
_WORD_MASK = (1 << 63) - 1


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of a mask, ascending.

    Lowest-set-bit extraction (``word & -word`` + ``bit_length``), on
    one 63-bit chunk of the mask at a time: every arithmetic op in the
    inner loop runs on a machine-sized int, so the cost per yielded
    value is O(1) regardless of how wide the full mask is (a naive
    ``mask ^= low`` loop pays a big-int pass over *all* words of the
    mask for every bit it yields).
    """
    base = 0
    while mask:
        word = mask & _WORD_MASK
        mask >>= 63
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low
        base += 63


class CompiledNetwork:
    """An integer-indexed, bitset-domain view of a constraint network.

    Built by :func:`compile_network`; all attributes are read-only by
    convention (the solver layers share one instance per network).

    Attributes:
        names: variable names, in declaration order; the variable with
            name ``names[i]`` has index ``i`` everywhere below.
        index_of: variable name -> index.
        domains: per variable, the domain *value objects* in declaration
            order; value index ``a`` of variable ``i`` is
            ``domains[i][a]``.
        value_index: per variable, value object -> value index.
        full_masks: per variable, the all-values bitmask
            ``(1 << len(domains[i])) - 1``.
        neighbors: per variable, the sorted indices of constrained
            neighbors.
        supports: ``(i, j) -> tuple of masks``: for each value index
            ``a`` of ``i``, a bitmask over ``j``'s domain of the values
            compatible with ``i = a``.  Both orientations are stored.
        pairs: the constrained pairs in constraint insertion order,
            keeping the authoring orientation (used for deterministic
            iteration, e.g. the AC-3 seed queue).
        name_rank: per variable, its rank in lexicographic name order
            (solvers tie-break on names; comparing two small ints is
            cheaper than comparing two strings).
    """

    def __init__(
        self,
        names: tuple[str, ...],
        domains: tuple[tuple[Value, ...], ...],
        neighbors: tuple[tuple[int, ...], ...],
        supports: dict[tuple[int, int], tuple[int, ...]],
        pairs: tuple[tuple[int, int], ...],
    ):
        self.names = names
        self.domains = domains
        self.neighbors = neighbors
        self.supports = supports
        self.pairs = pairs
        self.index_of = {name: i for i, name in enumerate(names)}
        self.value_index = tuple(
            {value: a for a, value in enumerate(domain)} for domain in domains
        )
        self.full_masks = tuple((1 << len(domain)) - 1 for domain in domains)
        order = sorted(range(len(names)), key=lambda i: names[i])
        rank = [0] * len(names)
        for position, i in enumerate(order):
            rank[i] = position
        self.name_rank = tuple(rank)

    # -- sizes -----------------------------------------------------------

    @property
    def variable_count(self) -> int:
        return len(self.names)

    def domain_size(self, variable: int) -> int:
        return len(self.domains[variable])

    # -- the kernel operations -------------------------------------------

    def support_mask(self, variable: int, value: int, neighbor: int) -> int:
        """Bitmask over ``neighbor``'s domain compatible with the value.

        An unconstrained pair supports everything (full mask).
        """
        masks = self.supports.get((variable, neighbor))
        if masks is None:
            return self.full_masks[neighbor]
        return masks[value]

    def allows(
        self, variable: int, value: int, neighbor: int, neighbor_value: int
    ) -> bool:
        """One shift-and-mask consistency check (True if unconstrained)."""
        masks = self.supports.get((variable, neighbor))
        if masks is None:
            return True
        return bool((masks[value] >> neighbor_value) & 1)

    # -- boundary round-trip ---------------------------------------------

    def to_named(self, values: Sequence[int | None]) -> dict[str, Value]:
        """Index assignment -> named assignment (None entries skipped)."""
        return {
            self.names[i]: self.domains[i][a]
            for i, a in enumerate(values)
            if a is not None
        }

    def to_indices(self, assignment: Mapping[str, Value]) -> list[int | None]:
        """Named assignment -> per-variable value indices (None = unset).

        Raises:
            KeyError: for unknown variables or out-of-domain values.
        """
        values: list[int | None] = [None] * len(self.names)
        for name, value in assignment.items():
            i = self.index_of[name]
            values[i] = self.value_index[i][value]
        return values

    def is_solution(self, values: Sequence[int | None]) -> bool:
        """True iff the index assignment is total and consistent."""
        if any(a is None for a in values):
            return False
        for (i, j), masks in self.supports.items():
            if i < j and not (masks[values[i]] >> values[j]) & 1:
                return False
        return True

    # -- interning-table reuse -------------------------------------------

    def canonical_form(self, value_token=str) -> tuple:
        """Identical to :meth:`ConstraintNetwork.canonical_form`.

        Produced from the interning tables instead of re-scanning
        frozensets of value pairs; the service fingerprints are built on
        this, so the output must stay byte-for-byte compatible with the
        authoring network's method.
        """
        variables = tuple(
            sorted(
                (name, tuple(sorted(value_token(value) for value in domain)))
                for name, domain in zip(self.names, self.domains)
            )
        )
        constraints = []
        for i, j in self.pairs:
            low, high = (i, j) if self.names[i] < self.names[j] else (j, i)
            masks = self.supports[(low, high)]
            low_domain, high_domain = self.domains[low], self.domains[high]
            constraints.append(
                (
                    self.names[low],
                    self.names[high],
                    tuple(
                        sorted(
                            (value_token(low_domain[a]), value_token(high_domain[b]))
                            for a in range(len(low_domain))
                            for b in iter_bits(masks[a])
                        )
                    ),
                )
            )
        return (variables, tuple(sorted(constraints)))

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the engine-lowering caches from pickles.

        The numpy planes (:mod:`repro.csp.vectorized`) can be many
        times the kernel's own size; worker processes rebuild them,
        inherit them across a ``fork``, or attach the shared-memory
        segment -- they must never ride along in a pickle.  The native
        lowering (:mod:`repro.csp.native.ops`) holds a ``ctypes``
        library handle, which does not pickle at all; workers rebuild
        it from the shared on-disk ``.so`` cache instead.
        """
        state = dict(self.__dict__)
        state.pop("_vector_cache", None)
        state.pop("_native_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __str__(self) -> str:
        return (
            f"CompiledNetwork({len(self.names)} vars, "
            f"{len(self.pairs)} constraints)"
        )


def compile_network(network: ConstraintNetwork) -> CompiledNetwork:
    """Compile (with caching) a network to its execution form.

    The compiled kernel is cached on the network instance, keyed by the
    network's mutation revision: repeated calls are free, and a network
    mutated after compilation (more variables or constraints) is
    recompiled on the next call.
    """
    cached = getattr(network, "_compiled_cache", None)
    if cached is not None and cached[0] == network.revision:
        return cached[1]

    names = network.variables
    index_of = {name: i for i, name in enumerate(names)}
    domains = tuple(network.domain(name) for name in names)
    value_index = tuple(
        {value: a for a, value in enumerate(domain)} for domain in domains
    )
    neighbor_sets: list[set[int]] = [set() for _ in names]
    supports: dict[tuple[int, int], tuple[int, ...]] = {}
    pairs: list[tuple[int, int]] = []
    for constraint in network.constraints:
        i = index_of[constraint.first]
        j = index_of[constraint.second]
        forward = [0] * len(domains[i])
        backward = [0] * len(domains[j])
        index_i, index_j = value_index[i], value_index[j]
        for value_i, value_j in constraint.pairs:
            a = index_i[value_i]
            b = index_j[value_j]
            forward[a] |= 1 << b
            backward[b] |= 1 << a
        supports[(i, j)] = tuple(forward)
        supports[(j, i)] = tuple(backward)
        pairs.append((i, j))
        neighbor_sets[i].add(j)
        neighbor_sets[j].add(i)

    kernel = CompiledNetwork(
        names=names,
        domains=domains,
        neighbors=tuple(tuple(sorted(s)) for s in neighbor_sets),
        supports=supports,
        pairs=tuple(pairs),
    )
    network._compiled_cache = (network.revision, kernel)
    return kernel


def as_compiled(network: ConstraintNetwork | CompiledNetwork) -> CompiledNetwork:
    """Accept either representation; compile (cached) when needed."""
    if isinstance(network, CompiledNetwork):
        return network
    return compile_network(network)


def enumerate_solutions(
    network: ConstraintNetwork | CompiledNetwork,
    limit: int,
    max_nodes: int = 200_000,
) -> list[dict[str, Value]]:
    """Up to ``limit`` distinct solutions, deterministically ordered.

    A forward-checking depth-first search over the compiled kernel:
    variables in static max-degree order, values in domain-index order,
    domains as bitmasks.  Solvers return *one* solution; the evaluation
    layer's simulation-guided refinement wants the top-k candidates to
    re-rank, and this is where they come from.  ``max_nodes`` bounds
    the effort on pathological networks (the partial enumeration found
    so far is returned).

    Raises:
        ValueError: for a non-positive limit.
    """
    if limit <= 0:
        raise ValueError("limit must be positive")
    kernel = as_compiled(network)
    count = kernel.variable_count
    if count == 0:
        return []
    order = sorted(
        range(count),
        key=lambda v: (-len(kernel.neighbors[v]), kernel.name_rank[v]),
    )
    position = {variable: depth for depth, variable in enumerate(order)}
    solutions: list[dict[str, Value]] = []
    values: list[int | None] = [None] * count
    masks = list(kernel.full_masks)
    nodes = 0

    def search(depth: int) -> bool:
        nonlocal nodes
        if depth == count:
            solutions.append(kernel.to_named(values))
            return len(solutions) >= limit
        variable = order[depth]
        mask = masks[variable]
        while mask:
            if nodes >= max_nodes:
                return True
            nodes += 1
            low = mask & -mask
            mask ^= low
            value = low.bit_length() - 1
            values[variable] = value
            saved: list[tuple[int, int]] = []
            dead = False
            for neighbor in kernel.neighbors[variable]:
                if position[neighbor] <= depth:
                    continue
                pruned = masks[neighbor] & kernel.support_mask(
                    variable, value, neighbor
                )
                saved.append((neighbor, masks[neighbor]))
                masks[neighbor] = pruned
                if not pruned:
                    dead = True
                    break
            if not dead and search(depth + 1):
                return True
            for neighbor, previous in saved:
                masks[neighbor] = previous
            values[variable] = None
        return False

    search(0)
    return solutions

"""Conflict-directed backjumping (Prosser's CBJ) -- an extension.

The paper's enhanced scheme uses the *graph-based* jump rule of
Figure 3 (jump to the most recent variable sharing a constraint with
the dead-end variable).  Conflict-directed backjumping is strictly
sharper: it jumps to the most recent variable that *actually caused a
value to be rejected*, which can skip connected-but-innocent variables.
We provide it as the natural "further enhancement" the paper's
conclusion anticipates.
"""

from __future__ import annotations

from repro.csp.engine import EngineConfig, JUMP_CONFLICT, SearchEngine
from repro.csp.compiled import CompiledNetwork
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult


class ConflictDirectedSolver:
    """Enhanced orderings plus conflict-directed backjumping (complete)."""

    name = "cbj"

    def __init__(
        self, seed: int = 0, use_orderings: bool = True, engine: str = "auto"
    ):
        self._engine = SearchEngine(
            EngineConfig(
                variable_ordering=use_orderings,
                value_ordering=use_orderings,
                jump_mode=JUMP_CONFLICT,
                seed=seed,
                engine=engine,
            )
        )

    def set_deadline(self, seconds: float) -> None:
        """Bound the next solve's wall clock (``complete=False`` on expiry)."""
        self._engine.set_deadline(seconds)

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Find one solution (or prove there is none)."""
        return self._engine.solve(network)

"""The binary constraint network ``CN = <P, M, S>``.

Variables ``P`` are array names; each domain ``M_i`` is a list of
candidate memory layouts; each constraint ``S_ij`` is a set of allowed
(layout_i, layout_j) pairs -- one pair per candidate restructuring of a
nest touching both arrays (paper, Section 3).  The classes here are
generic over hashable values, so the same machinery runs the layout
networks, the random scaling networks and the unit-test toys.

This is the *authoring* tier: convenient to build, inspect and reason
about.  The solvers run on the *execution* tier --
:mod:`repro.csp.compiled` interns variables and values to dense integer
indices and turns every constraint into per-value support bitmasks;
:func:`repro.csp.compiled.compile_network` converts (cached, keyed on
:attr:`ConstraintNetwork.revision`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Hashable, Iterable, Mapping, Sequence

Value = Hashable


@dataclass(frozen=True)
class BinaryConstraint:
    """A constraint ``S_ij``: the allowed value pairs for two variables.

    The pair set is stored oriented from ``first`` to ``second``;
    :meth:`allows` accepts the variables in either order.
    """

    first: str
    second: str
    pairs: frozenset[tuple[Value, Value]]

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ValueError(f"constraint relates {self.first} to itself")
        if not self.pairs:
            raise ValueError(
                f"constraint ({self.first}, {self.second}) allows nothing; "
                "the network is trivially unsatisfiable"
            )

    def involves(self, variable: str) -> bool:
        """True if the constraint mentions the variable."""
        return variable in (self.first, self.second)

    def other(self, variable: str) -> str:
        """The other endpoint.

        Raises:
            ValueError: if the variable is not an endpoint.
        """
        if variable == self.first:
            return self.second
        if variable == self.second:
            return self.first
        raise ValueError(f"{variable} not in constraint ({self.first},{self.second})")

    def allows(self, variable: str, value: Value, other_value: Value) -> bool:
        """True iff (value for variable, other_value for the other) is allowed."""
        if variable == self.first:
            return (value, other_value) in self.pairs
        if variable == self.second:
            return (other_value, value) in self.pairs
        raise ValueError(f"{variable} not in constraint ({self.first},{self.second})")

    @cached_property
    def _support_index(
        self,
    ) -> tuple[dict[Value, frozenset[Value]], dict[Value, frozenset[Value]]]:
        """Per-value support sets, built lazily on first use.

        ``(by_second, by_first)``: ``by_second[b]`` is the set of first
        values compatible with ``second = b`` and vice versa.  (Stored
        in the instance ``__dict__``, so the frozen dataclass's
        equality and hash -- fields only -- are unaffected.)
        """
        by_second: dict[Value, set[Value]] = {}
        by_first: dict[Value, set[Value]] = {}
        for a, b in self.pairs:
            by_second.setdefault(b, set()).add(a)
            by_first.setdefault(a, set()).add(b)
        return (
            {b: frozenset(values) for b, values in by_second.items()},
            {a: frozenset(values) for a, values in by_first.items()},
        )

    def supported_values(self, variable: str, other_value: Value) -> frozenset[Value]:
        """Values of ``variable`` compatible with the other side's value.

        O(1) after the first call on the constraint: the support sets
        are indexed lazily instead of rescanning the full pair set.
        """
        by_second, by_first = self._support_index
        if variable == self.first:
            return by_second.get(other_value, frozenset())
        if variable == self.second:
            return by_first.get(other_value, frozenset())
        raise ValueError(f"{variable} not in constraint ({self.first},{self.second})")


class ConstraintNetwork:
    """An immutable-after-build binary constraint network.

    Build with :meth:`add_variable` / :meth:`add_constraint`; all query
    methods may be used at any time.  Adding a second constraint over
    the same variable pair intersects the allowed pairs (both nests'
    requirements must hold simultaneously).
    """

    def __init__(self) -> None:
        self._domains: dict[str, tuple[Value, ...]] = {}
        self._constraints: dict[frozenset[str], BinaryConstraint] = {}
        self._neighbors: dict[str, set[str]] = {}
        self._revision = 0

    # -- construction ---------------------------------------------------

    def add_variable(self, name: str, domain: Sequence[Value]) -> None:
        """Declare a variable with its domain.

        Raises:
            ValueError: on duplicate names or empty domains.
        """
        if name in self._domains:
            raise ValueError(f"variable {name} already declared")
        values = tuple(domain)
        if not values:
            raise ValueError(f"variable {name} has an empty domain")
        if len(set(values)) != len(values):
            raise ValueError(f"variable {name} domain has duplicates")
        self._domains[name] = values
        self._neighbors[name] = set()
        self._revision += 1

    def add_constraint(
        self, first: str, second: str, pairs: Iterable[tuple[Value, Value]]
    ) -> None:
        """Add (or strengthen) the constraint between two variables.

        Pairs referencing values outside the declared domains are
        rejected.  A repeated (first, second) constraint intersects with
        the existing one; the orientation of the stored constraint is
        that of the first call.

        Raises:
            KeyError: for undeclared variables.
            ValueError: for out-of-domain pairs or an empty result.
        """
        if first not in self._domains:
            raise KeyError(first)
        if second not in self._domains:
            raise KeyError(second)
        pair_set = frozenset((a, b) for a, b in pairs)
        for a, b in pair_set:
            if a not in self._domains[first]:
                raise ValueError(f"pair value {a!r} not in domain of {first}")
            if b not in self._domains[second]:
                raise ValueError(f"pair value {b!r} not in domain of {second}")
        key = frozenset((first, second))
        existing = self._constraints.get(key)
        if existing is not None:
            # Intersect, re-orienting the new pairs if necessary.
            if existing.first == first:
                oriented = pair_set
            else:
                oriented = frozenset((b, a) for (a, b) in pair_set)
            merged = existing.pairs & oriented
            if not merged:
                raise ValueError(
                    f"constraints on ({first}, {second}) have empty intersection"
                )
            self._constraints[key] = BinaryConstraint(
                existing.first, existing.second, merged
            )
            self._revision += 1
            return
        self._constraints[key] = BinaryConstraint(first, second, pair_set)
        self._neighbors[first].add(second)
        self._neighbors[second].add(first)
        self._revision += 1

    # -- queries ----------------------------------------------------------

    @property
    def revision(self) -> int:
        """Mutation counter; keys the cached compiled kernel."""
        return self._revision

    @property
    def variables(self) -> tuple[str, ...]:
        """Variable names in declaration order."""
        return tuple(self._domains)

    def domain(self, variable: str) -> tuple[Value, ...]:
        """The declared domain of a variable."""
        return self._domains[variable]

    @property
    def constraints(self) -> tuple[BinaryConstraint, ...]:
        """All constraints (arbitrary but deterministic order)."""
        return tuple(self._constraints.values())

    def constraint_between(self, first: str, second: str) -> BinaryConstraint | None:
        """The constraint over a pair, or None if unconstrained."""
        return self._constraints.get(frozenset((first, second)))

    def neighbors(self, variable: str) -> frozenset[str]:
        """Variables sharing a constraint with the given one."""
        return frozenset(self._neighbors[variable])

    def degree(self, variable: str) -> int:
        """Number of constraints touching the variable."""
        return len(self._neighbors[variable])

    @property
    def total_domain_size(self) -> int:
        """Sum of domain sizes -- the paper's Table 1 'Domain Size'."""
        return sum(len(domain) for domain in self._domains.values())

    @property
    def search_space_size(self) -> int:
        """Product of domain sizes (number of total assignments)."""
        product = 1
        for domain in self._domains.values():
            product *= len(domain)
        return product

    def check_pair(
        self, first: str, first_value: Value, second: str, second_value: Value
    ) -> bool:
        """True iff the two assignments are mutually consistent."""
        constraint = self.constraint_between(first, second)
        if constraint is None:
            return True
        return constraint.allows(first, first_value, second_value)

    def is_solution(self, assignment: Mapping[str, Value]) -> bool:
        """True iff the assignment is total and satisfies every constraint."""
        if set(assignment) != set(self._domains):
            return False
        for variable, value in assignment.items():
            if value not in self._domains[variable]:
                return False
        return all(
            constraint.allows(
                constraint.first,
                assignment[constraint.first],
                assignment[constraint.second],
            )
            for constraint in self._constraints.values()
        )

    def conflicted_constraints(
        self, assignment: Mapping[str, Value]
    ) -> tuple[BinaryConstraint, ...]:
        """Constraints violated by a (possibly partial) assignment."""
        violated = []
        for constraint in self._constraints.values():
            if constraint.first in assignment and constraint.second in assignment:
                if not constraint.allows(
                    constraint.first,
                    assignment[constraint.first],
                    assignment[constraint.second],
                ):
                    violated.append(constraint)
        return tuple(violated)

    def canonical_form(self, value_token=str) -> tuple:
        """Order-independent structural summary of the network.

        Two networks built from the same variables, domains and
        constraint pair-sets -- in *any* insertion order, with either
        constraint orientation -- produce identical canonical forms.
        ``value_token`` maps domain values to stable, sortable string
        tokens (defaults to :func:`str`; the service layer passes a
        collision-resistant encoder).  This is the hook behind
        :mod:`repro.service.fingerprint`.
        """
        variables = tuple(
            sorted(
                (name, tuple(sorted(value_token(value) for value in domain)))
                for name, domain in self._domains.items()
            )
        )
        constraints = []
        for constraint in self._constraints.values():
            low, high = sorted((constraint.first, constraint.second))
            if constraint.first == low:
                oriented = constraint.pairs
            else:
                oriented = frozenset((b, a) for (a, b) in constraint.pairs)
            constraints.append(
                (
                    low,
                    high,
                    tuple(
                        sorted(
                            (value_token(a), value_token(b))
                            for (a, b) in oriented
                        )
                    ),
                )
            )
        return (variables, tuple(sorted(constraints)))

    def copy_with_domains(
        self, domains: Mapping[str, Sequence[Value]]
    ) -> "ConstraintNetwork":
        """A copy with (possibly pruned) domains; constraints filtered.

        Pairs whose values fell out of the new domains are dropped.

        Raises:
            ValueError: if a constraint loses all its pairs (the pruned
                network is unsatisfiable) or a domain becomes empty.
        """
        clone = ConstraintNetwork()
        for variable in self.variables:
            clone.add_variable(variable, domains.get(variable, self.domain(variable)))
        for constraint in self.constraints:
            surviving = [
                (a, b)
                for (a, b) in constraint.pairs
                if a in clone.domain(constraint.first)
                and b in clone.domain(constraint.second)
            ]
            clone.add_constraint(constraint.first, constraint.second, surviving)
        return clone

    def __str__(self) -> str:
        lines = [f"ConstraintNetwork({len(self.variables)} vars, "
                 f"{len(self.constraints)} constraints)"]
        for variable in self.variables:
            lines.append(f"  {variable}: {len(self.domain(variable))} values")
        return "\n".join(lines)

"""Space-splitting parallel search: clone/commit subtree racing.

Every speed tier so far (compiled bitsets, the numpy kernel, the
resident daemon) parallelizes *across* requests or portfolio schemes;
a single hard network still searches on one core.  This module splits
the search space of one instance:

1. run the forward-checking search to a configurable **branch
   frontier**, snapshotting the open branch points as
   :class:`SearchSpace` values (``clone()`` / ``commit(k)`` over the
   picklable :class:`~repro.csp.compiled.CompiledNetwork` plus the
   domain bitmasks -- the clone/commit/ask computation-space shape);
2. farm the resulting subtrees to a warm ``ProcessPoolExecutor``.
   Only the per-subtree domain deltas and the decision prefix go over
   the wire; the kernel itself ships at most once per worker (workers
   keep a small keyed cache, and numpy planes attach zero-copy through
   the PR-5 ``multiprocessing.shared_memory`` path when a shared key
   is provided);
3. balance load with a **double-ended work-stealing deque per
   worker**: each lane consumes its own lex-earliest subtree from the
   front, and an idle lane steals the deepest-split (lex-latest)
   subtree from the back of the busiest peer;
4. merge deterministically: the winning solution is the one whose
   decision prefix is **lexicographically smallest** among completed
   subtrees, and a subtree lex-after a known solution is pruned.

Determinism is the load-bearing property.  Forward checking's state at
a node depends only on the decision prefix (domains are the full masks
ANDed with the supports of the assigned values), so a subtree explored
standalone from its snapshot is byte-identical to the serial search's
exploration of that same region.  The serial search visits exactly the
region lex-at-or-before the leftmost solution; therefore the split
run's *accounted* effort -- frontier billing plus subtree billing,
each tagged with its decision prefix and kept only when the prefix is
lex-at-or-before the winner's, plus one backtrack per fully-failed
interior frontier node -- reproduces the serial
:class:`~repro.csp.forward_checking.ForwardCheckingSolver` counters
byte for byte, for SAT and UNSAT alike, regardless of worker count or
steal order.  Work done past the winner is real but nondeterministic,
so it is reported separately (``speculative_*``).

The ``search="serial" | "split" | "auto"`` seam mirrors the engine
seam of :mod:`repro.csp.vectorized`: ``auto`` first spends a bounded
serial effort budget and escalates to the split path only when the
budget is exhausted, so easy instances never pay fork overhead.

:func:`enumerate_solutions_parallel` applies the same split to
:func:`repro.csp.compiled.enumerate_solutions`'s static-order
enumeration and *streams* the solutions in the serial order as
subtrees complete, so ``refine="simulated"`` consumes top-k lazily.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Iterator

from repro.csp.compiled import CompiledNetwork, as_compiled, iter_bits
from repro.csp.engine import record_solver_effort
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch
from repro.csp.vectorized import (
    ENGINE_AUTO,
    ENGINE_NUMPY,
    attach_shared,
    install_vectorized,
    resolve_engine,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Search-mode tokens accepted wherever a ``search=`` knob exists.
SEARCH_SERIAL = "serial"
SEARCH_SPLIT = "split"
SEARCH_AUTO = "auto"
SEARCHES = (SEARCH_AUTO, SEARCH_SERIAL, SEARCH_SPLIT)

#: Environment override consulted by :func:`resolve_search`; set to
#: ``serial`` or ``split`` to force one search mode process-wide.
SEARCH_ENV = "REPRO_CSP_SEARCH"

#: Environment cap on split workers (CI smoke runs export ``2``).
SPLIT_WORKERS_ENV = "REPRO_SPLIT_WORKERS"

#: ``search="auto"``: nodes the serial attempt may spend before the
#: solver escalates to the split path.
DEFAULT_SERIAL_BUDGET_NODES = 2_048

#: Frontier sizing: open at least this many subtrees per worker, so
#: uneven subtrees leave the stealing deques something to balance.
DEFAULT_SUBTREES_PER_WORKER = 4

#: Frontier expansion stops after this many commits even when the
#: subtree target was not reached (thin trees degenerate to serial).
_FRONTIER_COMMIT_FACTOR = 16

#: Subtree workers poll their deadline once per this many nodes.
_DEADLINE_CHECK_MASK = 255

_SPACE_FAILED = -1
_SPACE_SUCCEEDED = 0


def resolve_search(spec: str) -> str:
    """Resolve a search spec, honouring the :data:`SEARCH_ENV` override.

    Unlike engine resolution, ``auto`` stays ``auto``: it resolves per
    *solve* (a bounded serial attempt decides), not per network.

    Raises:
        ValueError: for an unknown spec.
    """
    if spec not in SEARCHES:
        raise ValueError(f"unknown search {spec!r}; pick one of {SEARCHES}")
    override = os.environ.get(SEARCH_ENV, "").strip().lower()
    if override in (SEARCH_SERIAL, SEARCH_SPLIT):
        return override
    return spec


def default_split_workers() -> int:
    """Worker count used when the caller does not pin one."""
    env = os.environ.get(SPLIT_WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, min(4, os.cpu_count() or 1))


@dataclass
class SplitStats(SolverStats):
    """Solver counters plus the split run's own bookkeeping.

    The inherited counters (nodes, backtracks, consistency checks) are
    the *deterministic accounted effort* -- byte-identical to the
    serial forward-checking run and invariant under worker count and
    steal schedule.  The extras are not part of that guarantee:
    ``steals`` and the ``speculative_*`` counters depend on timing.
    """

    subtrees: int = 0
    steals: int = 0
    pruned_subtrees: int = 0
    workers: int = 0
    search: str = SEARCH_SPLIT
    speculative_nodes: int = 0
    speculative_checks: int = 0

    def as_dict(self) -> dict[str, float]:
        data = super().as_dict()
        data.update(
            {
                "subtrees": self.subtrees,
                "steals": self.steals,
                "pruned_subtrees": self.pruned_subtrees,
                "workers": self.workers,
                "search": self.search,
                "speculative_nodes": self.speculative_nodes,
                "speculative_checks": self.speculative_checks,
            }
        )
        return data


class SearchSpace:
    """One open node of the forward-checking search, as a value.

    The computation-space trio: :meth:`ask` reports whether the space
    failed, succeeded, or offers ``k`` alternatives at its branch
    variable; :meth:`clone` copies the space; :meth:`commit` narrows a
    clone to one alternative (assign + forward-prune).  Effort billing
    matches :class:`~repro.csp.forward_checking.ForwardCheckingSolver`
    exactly: one node per attempted value, one check per assigned
    neighbor, one check per live value of each unassigned neighbor.
    """

    __slots__ = ("kernel", "masks", "values", "assigned", "prefix", "branch")

    def __init__(self, kernel, masks, values, assigned, prefix):
        self.kernel = kernel
        self.masks = masks
        self.values = values
        self.assigned = assigned
        self.prefix = prefix
        self.branch: int | None = None

    @classmethod
    def root(cls, kernel: CompiledNetwork) -> "SearchSpace":
        return cls(
            kernel,
            list(kernel.full_masks),
            [None] * kernel.variable_count,
            0,
            (),
        )

    def ask(self) -> int:
        """-1 failed, 0 succeeded, else the branch variable's live count."""
        kernel = self.kernel
        if self.assigned == kernel.variable_count:
            return _SPACE_SUCCEEDED
        values, masks = self.values, self.masks
        neighbors, rank = kernel.neighbors, kernel.name_rank
        self.branch = min(
            (i for i in range(kernel.variable_count) if values[i] is None),
            key=lambda i: (masks[i].bit_count(), -len(neighbors[i]), rank[i]),
        )
        live = masks[self.branch].bit_count()
        return live if live else _SPACE_FAILED

    def branch_values(self) -> list[int]:
        """The branch variable's live values, ascending (serial order)."""
        return list(iter_bits(self.masks[self.branch]))

    def clone(self) -> "SearchSpace":
        clone = SearchSpace(
            self.kernel,
            list(self.masks),
            list(self.values),
            self.assigned,
            self.prefix,
        )
        clone.branch = self.branch
        return clone

    def commit(self, value: int, bucket: list[int]) -> bool:
        """Assign ``branch = value`` in place; False on a wipe-out.

        ``bucket`` is a ``[nodes, backtracks, checks]`` effort cell
        the caller keyed by this commit's decision prefix.
        """
        kernel = self.kernel
        variable = self.branch
        self.prefix = self.prefix + (value,)
        bucket[0] += 1
        masks, values, supports = self.masks, self.values, kernel.supports
        for neighbor in kernel.neighbors[variable]:
            support = supports[(variable, neighbor)][value]
            neighbor_value = values[neighbor]
            if neighbor_value is not None:
                bucket[2] += 1
                if not (support >> neighbor_value) & 1:
                    return False
                continue
            before = masks[neighbor]
            bucket[2] += before.bit_count()
            after = before & support
            if after != before:
                masks[neighbor] = after
                if not after:
                    return False
        values[variable] = value
        self.assigned += 1
        self.branch = None
        return True


@dataclass(frozen=True)
class _Subtree:
    """One open frontier leaf, ready to ship to a worker."""

    prefix: tuple[int, ...]
    values: tuple
    deltas: tuple[tuple[int, int], ...]


def _space_deltas(space: SearchSpace) -> tuple[tuple[int, int], ...]:
    """Domain masks that differ from the full masks (unassigned only)."""
    kernel = space.kernel
    return tuple(
        (i, space.masks[i])
        for i in range(kernel.variable_count)
        if space.values[i] is None and space.masks[i] != kernel.full_masks[i]
    )


# -- worker side ----------------------------------------------------------

#: Collision-free kernel-key suffixes (object ids can be reused).
_KEY_COUNTER = itertools.count(1)

#: Worker-resident kernels, keyed by the parent's opaque kernel key.
_WORKER_KERNELS: "OrderedDict[str, CompiledNetwork]" = OrderedDict()
_WORKER_KERNEL_CAP = 8

#: Set in the parent just before the pool forks, so the first
#: generation of workers inherits the current kernel for free.
_FORK_KERNEL_SEED: tuple[str, CompiledNetwork] | None = None


def _install_worker_kernel(key: str, kernel: CompiledNetwork) -> None:
    _WORKER_KERNELS[key] = kernel
    _WORKER_KERNELS.move_to_end(key)
    while len(_WORKER_KERNELS) > _WORKER_KERNEL_CAP:
        _WORKER_KERNELS.popitem(last=False)


def _worker_kernel(task: dict) -> CompiledNetwork | None:
    """Resolve the task's kernel: cache, fork seed, or shipped copy."""
    key = task["kernel_key"]
    kernel = _WORKER_KERNELS.get(key)
    if kernel is not None:
        _WORKER_KERNELS.move_to_end(key)
        return kernel
    if _FORK_KERNEL_SEED is not None and _FORK_KERNEL_SEED[0] == key:
        kernel = _FORK_KERNEL_SEED[1]
    else:
        kernel = task.get("kernel")
    if kernel is None:
        return None
    shared_key = task.get("shared_key")
    if (
        shared_key
        and getattr(kernel, "_vector_cache", None) is None
        and resolve_engine(ENGINE_AUTO, kernel) == ENGINE_NUMPY
    ):
        attached = attach_shared(shared_key)
        if attached is not None:
            install_vectorized(kernel, attached)
    _install_worker_kernel(key, kernel)
    return kernel


def _restore_state(kernel: CompiledNetwork, task: dict):
    """Rebuild (values, masks, assigned) from the wire deltas."""
    values = list(task["values"])
    masks = list(kernel.full_masks)
    for i, mask in task["deltas"]:
        masks[i] = mask
    assigned = sum(1 for v in values if v is not None)
    return values, masks, assigned


def _subtree_worker(task: dict) -> dict:
    """Pool entry point: run one subtree (or enumeration slice)."""
    kernel = _worker_kernel(task)
    if kernel is None:
        return {"status": "need-kernel", "prefix": task["prefix"]}
    start = time.perf_counter()
    cpu_start = time.process_time()
    if task["mode"] == "enum":
        payload = _run_enum_subtree(kernel, task)
    else:
        payload = _run_search_subtree(kernel, task)
    payload["prefix"] = task["prefix"]
    payload["pid"] = os.getpid()
    payload["seconds"] = time.perf_counter() - start
    # CPU time is immune to time-sharing: on an oversubscribed host
    # the wall clocks of concurrent subtrees overlap and double-count,
    # but the CPU seconds still sum to the real work done (the split
    # bench builds its critical-path model from these).
    payload["cpu_seconds"] = time.process_time() - cpu_start
    return payload


def _run_search_subtree(kernel: CompiledNetwork, task: dict) -> dict:
    from repro.csp.forward_checking import ForwardCheckingSolver

    values, masks, assigned = _restore_state(kernel, task)
    solver = ForwardCheckingSolver(
        engine=task.get("engine", ENGINE_AUTO),
        max_nodes=task.get("max_nodes"),
    )
    result = solver.solve_from(
        kernel, values, masks, assigned, deadline_at=task.get("deadline_at")
    )
    stats = result.stats.as_dict()
    stats.pop("time_seconds", None)
    return {
        "status": "done",
        "assignment": dict(result.assignment) if result.assignment else None,
        "complete": result.complete,
        "stats": stats,
    }


def _run_enum_subtree(kernel: CompiledNetwork, task: dict) -> dict:
    values, masks, _ = _restore_state(kernel, task)
    solutions = _enum_search(
        kernel,
        task["order"],
        task["position"],
        values,
        masks,
        task["depth"],
        task["limit"],
        task.get("max_nodes"),
    )
    return {"status": "done", "solutions": solutions, "complete": True}


def _enum_search(kernel, order, position, values, masks, depth, limit, max_nodes):
    """Continuation of ``enumerate_solutions``'s static-order DFS.

    Same variable order, same ascending value order, same
    prune-later-positions-only forward checking -- so the lex-ordered
    concatenation of subtree outputs reproduces the serial sequence.
    """
    count = kernel.variable_count
    solutions: list[dict] = []
    nodes = 0

    def search(level: int) -> bool:
        nonlocal nodes
        if level == count:
            solutions.append(kernel.to_named(values))
            return len(solutions) >= limit
        variable = order[level]
        mask = masks[variable]
        while mask:
            if max_nodes is not None and nodes >= max_nodes:
                return True
            nodes += 1
            low = mask & -mask
            mask ^= low
            value = low.bit_length() - 1
            values[variable] = value
            saved: list[tuple[int, int]] = []
            dead = False
            for neighbor in kernel.neighbors[variable]:
                if position[neighbor] <= level:
                    continue
                pruned = masks[neighbor] & kernel.support_mask(
                    variable, value, neighbor
                )
                saved.append((neighbor, masks[neighbor]))
                masks[neighbor] = pruned
                if not pruned:
                    dead = True
                    break
            if not dead and search(level + 1):
                return True
            for neighbor, previous in saved:
                masks[neighbor] = previous
            values[variable] = None
        return False

    search(depth)
    return solutions


# -- runners --------------------------------------------------------------


class _InlineRunner:
    """In-process execution with an injectable completion schedule.

    The default schedule is FIFO (oldest submission completes first).
    A ``schedule_rng`` completes a random non-empty subset per
    ``wait_any`` call instead, which -- combined with a ``steal_rng``
    on the solver -- lets property tests drive arbitrary completion
    orders and steal schedules without processes.
    """

    uses_processes = False

    def __init__(self, kernel: CompiledNetwork, schedule_rng=None):
        self._kernel = kernel
        self._rng = schedule_rng
        self._order: list["_InlineFuture"] = []

    def submit(self, task: dict) -> "_InlineFuture":
        future = _InlineFuture(task)
        self._order.append(future)
        return future

    def wait_any(self, pending: set) -> set:
        waiting = [f for f in self._order if f in pending]
        if not waiting:
            return set()
        if self._rng is not None:
            take = self._rng.randint(1, len(waiting))
            chosen = self._rng.sample(waiting, take)
        else:
            chosen = waiting[:1]
        done = set()
        for future in chosen:
            future.run(self._kernel)
            self._order.remove(future)
            done.add(future)
        return done

    def close(self) -> None:
        self._order.clear()


class _InlineFuture:
    __slots__ = ("task", "_payload")

    def __init__(self, task: dict):
        self.task = task
        self._payload = None

    def run(self, kernel: CompiledNetwork) -> None:
        task = dict(self.task)
        task["kernel"] = kernel
        _WORKER_KERNELS.pop(task["kernel_key"], None)
        self._payload = _subtree_worker(task)

    def result(self) -> dict:
        return self._payload


class _PoolRunner:
    """Warm ``ProcessPoolExecutor`` wrapper (fork context when available)."""

    uses_processes = True

    def __init__(self, workers: int):
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.workers = workers
        self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def submit(self, task: dict):
        return self._pool.submit(_subtree_worker, task)

    def wait_any(self, pending: set) -> set:
        done, _ = futures_wait(pending, timeout=0.1, return_when=FIRST_COMPLETED)
        return done

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


# -- the solver -----------------------------------------------------------


class SplitSearchSolver:
    """Forward-checking search split across a warm worker pool.

    Deterministic: the returned assignment and the accounted effort
    counters are byte-identical to the serial
    :class:`~repro.csp.forward_checking.ForwardCheckingSolver` run,
    for any worker count and any steal schedule (see the module
    docstring for why).  Complete: a ``None`` assignment with
    ``complete=True`` proves unsatisfiability.

    Args:
        seed: accepted for scheme-registry symmetry (the search is
            fully deterministic).
        engine: propagation engine for the subtree searches.
        search: ``"serial"`` (plain forward checking), ``"split"``
            (always split), or ``"auto"`` (serial until
            ``serial_budget`` nodes, then split).
        workers: subtree worker processes (default:
            ``REPRO_SPLIT_WORKERS`` or ``min(4, cpu_count)``).
            ``workers=1`` runs the split machinery inline -- same
            frontier, same merge, no processes -- which is also the
            automatic fallback inside daemonic processes (a portfolio
            race child cannot spawn grandchildren).
        subtrees_per_worker: frontier sizing target.
        serial_budget: node budget of the ``auto`` serial attempt.
        shared_key: optional shared-memory kernel key; workers attach
            the numpy planes zero-copy instead of rebuilding them.
        steal_rng: optional ``random.Random``; when given, an idle
            lane steals from a *random* non-empty peer instead of the
            busiest one (property tests randomize schedules with it).
        runner_factory: test seam -- ``(kernel, workers) -> runner``.
    """

    name = "split"

    def __init__(
        self,
        seed: int = 0,
        engine: str = ENGINE_AUTO,
        search: str = SEARCH_AUTO,
        workers: int | None = None,
        subtrees_per_worker: int = DEFAULT_SUBTREES_PER_WORKER,
        serial_budget: int = DEFAULT_SERIAL_BUDGET_NODES,
        shared_key: str | None = None,
        steal_rng=None,
        runner_factory=None,
    ):
        if search not in SEARCHES:
            raise ValueError(f"unknown search {search!r}; pick one of {SEARCHES}")
        if subtrees_per_worker <= 0 or serial_budget <= 0:
            raise ValueError("subtrees_per_worker and serial_budget must be positive")
        self._seed = seed
        self._engine = engine
        self._search = search
        self._workers = workers
        self._subtrees_per_worker = subtrees_per_worker
        self._serial_budget = serial_budget
        self.shared_key = shared_key
        self._steal_rng = steal_rng
        self._runner_factory = runner_factory
        self._deadline_seconds: float | None = None
        self._pool: _PoolRunner | None = None
        self._kernel_ref: CompiledNetwork | None = None
        self._kernel_key: str | None = None
        self._acked_pids: set[int] = set()

    # -- lifecycle ------------------------------------------------------

    def set_deadline(self, seconds: float) -> None:
        """Bound the next solve's wall clock (propagated per subtree)."""
        self._deadline_seconds = max(0.0, seconds)

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # -- solving --------------------------------------------------------

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Find one solution (or prove there is none)."""
        kernel = as_compiled(network)
        engine = resolve_engine(self._engine, kernel)
        deadline_at = (
            time.monotonic() + self._deadline_seconds
            if self._deadline_seconds is not None
            else None
        )
        search = resolve_search(self._search)
        stats = SplitStats(workers=self._resolve_workers())
        with obs_trace.span("split_search", search=search) as span:
            with Stopwatch(stats):
                result = self._solve_modes(
                    kernel, engine, search, stats, deadline_at, span
                )
            span.set_attribute("resolved", stats.search)
            span.set_attribute("subtrees", stats.subtrees)
            span.set_attribute("steals", stats.steals)
        if obs_metrics.enabled():
            record_solver_effort(engine, "split", stats)
        return result

    def _solve_modes(self, kernel, engine, search, stats, deadline_at, span):
        from repro.csp.forward_checking import ForwardCheckingSolver

        if search in (SEARCH_SERIAL, SEARCH_AUTO):
            budget = None if search == SEARCH_SERIAL else self._serial_budget
            solver = ForwardCheckingSolver(engine=engine, max_nodes=budget)
            attempt = solver.solve_from(
                kernel,
                [None] * kernel.variable_count,
                list(kernel.full_masks),
                0,
                deadline_at=deadline_at,
            )
            if search == SEARCH_SERIAL or attempt.complete:
                self._adopt_counters(stats, attempt.stats.as_dict())
                stats.search = SEARCH_SERIAL
                return SolverResult(attempt.assignment, stats, attempt.complete)
            # Budget exhausted: the instance earned the split path.  The
            # attempt's effort was really spent (and is deterministic),
            # but it is not part of the split accounting identity, so
            # it rides in the speculative tally.
            stats.speculative_nodes += attempt.stats.nodes
            stats.speculative_checks += attempt.stats.consistency_checks
        stats.search = SEARCH_SPLIT
        return self._solve_split(kernel, engine, stats, deadline_at, span)

    @staticmethod
    def _adopt_counters(stats: SplitStats, counters: dict) -> None:
        stats.nodes += int(counters.get("nodes", 0))
        stats.backtracks += int(counters.get("backtracks", 0))
        stats.backjumps += int(counters.get("backjumps", 0))
        stats.consistency_checks += int(counters.get("consistency_checks", 0))
        stats.restarts += int(counters.get("restarts", 0))

    def _resolve_workers(self) -> int:
        workers = self._workers if self._workers else default_split_workers()
        return max(1, workers)

    # -- frontier expansion ---------------------------------------------

    def _expand_frontier(self, kernel, target, buckets, interior):
        """Breadth-first split to ``target`` open spaces.

        Returns ``(subtrees, solutions)``: the open leaves (lex order)
        and any solutions hit during expansion, as ``(prefix, named)``
        pairs.  Every commit bills into ``buckets[child_prefix]``;
        ``interior[prefix]`` records each expanded node's surviving
        child prefixes (the merge's bonus-backtrack walk needs them).
        """
        commit_budget = max(64, target * _FRONTIER_COMMIT_FACTOR)
        commits = 0
        solutions: list[tuple[tuple[int, ...], dict]] = []
        queue: deque[SearchSpace] = deque([SearchSpace.root(kernel)])
        while queue and len(queue) < target and commits < commit_budget:
            space = queue.popleft()
            status = space.ask()
            if status == _SPACE_SUCCEEDED:
                solutions.append((space.prefix, kernel.to_named(space.values)))
                continue
            children: list[tuple[int, ...]] = []
            for value in space.branch_values():
                child = space.clone()
                prefix = space.prefix + (value,)
                bucket = buckets.setdefault(prefix, [0, 0, 0])
                commits += 1
                if child.commit(value, bucket):
                    children.append(prefix)
                    queue.append(child)
            interior[space.prefix] = children
        subtrees = []
        for space in queue:
            if space.assigned == kernel.variable_count:
                solutions.append((space.prefix, kernel.to_named(space.values)))
            else:
                subtrees.append(
                    _Subtree(
                        prefix=space.prefix,
                        values=tuple(space.values),
                        deltas=_space_deltas(space),
                    )
                )
        subtrees.sort(key=lambda s: s.prefix)
        solutions.sort(key=lambda s: s[0])
        return subtrees, solutions

    # -- the split run --------------------------------------------------

    def _solve_split(self, kernel, engine, stats, deadline_at, span):
        buckets: dict[tuple[int, ...], list[int]] = {}
        interior: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        workers = stats.workers
        target = max(workers * self._subtrees_per_worker, workers)
        subtrees, frontier_solutions = self._expand_frontier(
            kernel, target, buckets, interior
        )
        stats.subtrees = len(subtrees)
        results: dict[tuple[int, ...], dict] = {
            prefix: {
                "status": "done",
                "assignment": named,
                "complete": True,
                "stats": {},
                "seconds": 0.0,
            }
            for prefix, named in frontier_solutions
        }
        complete = True
        if subtrees:
            runner = self._runner_for(kernel, workers)
            try:
                complete = self._run_subtrees(
                    kernel, engine, subtrees, runner, workers, deadline_at,
                    results, stats, span,
                )
            finally:
                if runner is not self._pool:
                    runner.close()
        obs_metrics.counter(
            "repro_split_subtrees_total",
            float(stats.subtrees),
            help="Subtrees farmed out by the split-search solver.",
        )
        obs_metrics.counter(
            "repro_split_steals_total",
            float(stats.steals),
            help="Work-stealing deque steals during split searches.",
        )
        return self._merge(kernel, buckets, interior, results, stats, complete)

    def _runner_for(self, kernel, workers):
        if self._runner_factory is not None:
            return self._runner_factory(kernel, workers)
        if workers <= 1 or multiprocessing.current_process().daemon:
            # Daemonic processes (portfolio race children) may not
            # spawn grandchildren; the inline runner walks the same
            # frontier/merge path, so the result is identical.
            return _InlineRunner(kernel, schedule_rng=None)
        if self._pool is not None and self._pool.workers != workers:
            self.close()
        if self._pool is None:
            global _FORK_KERNEL_SEED
            _FORK_KERNEL_SEED = (self._kernel_key_for(kernel), kernel)
            try:
                self._pool = _PoolRunner(workers)
            finally:
                _FORK_KERNEL_SEED = None
            self._acked_pids = set()
        return self._pool

    def _kernel_key_for(self, kernel) -> str:
        if kernel is not self._kernel_ref:
            self._kernel_ref = kernel
            self._kernel_key = f"split-{os.getpid()}-{next(_KEY_COUNTER)}"
            self._acked_pids = set()
        return self._kernel_key

    def _task_for(self, kernel, engine, subtree, deadline_at, fat):
        task = {
            "mode": "search",
            "kernel_key": self._kernel_key_for(kernel),
            "shared_key": self.shared_key,
            "engine": engine,
            "prefix": subtree.prefix,
            "values": subtree.values,
            "deltas": subtree.deltas,
            "deadline_at": deadline_at,
            "max_nodes": None,
        }
        if fat:
            task["kernel"] = kernel
        return task

    def _run_subtrees(
        self, kernel, engine, subtrees, runner, workers, deadline_at,
        results, stats, span,
    ) -> bool:
        """Lane scheduler: own-front consumption, back-of-busiest steals.

        Returns False when the deadline cut the run short (some
        subtrees never ran or came back incomplete).
        """
        lanes: list[deque[_Subtree]] = [deque() for _ in range(workers)]
        count = len(subtrees)
        for index, subtree in enumerate(subtrees):
            lanes[index * workers // count].append(subtree)
        inflight: dict[object, tuple[int, _Subtree]] = {}
        best_solution: tuple[int, ...] | None = None
        timed_out = False

        def prune_lanes() -> None:
            if best_solution is None:
                return
            for lane in lanes:
                while lane and lane[-1].prefix > best_solution:
                    lane.pop()
                    stats.pruned_subtrees += 1

        def take(lane_index: int):
            if lanes[lane_index]:
                return lanes[lane_index].popleft(), False
            victims = [i for i in range(workers) if lanes[i]]
            if not victims:
                return None, False
            if self._steal_rng is not None:
                victim = self._steal_rng.choice(victims)
            else:
                victim = max(victims, key=lambda i: (len(lanes[i]), -i))
            return lanes[victim].pop(), True

        while inflight or any(lanes):
            if deadline_at is not None and time.monotonic() >= deadline_at:
                timed_out = True
                break
            busy = {lane for lane, _ in inflight.values()}
            fat = runner.uses_processes and len(self._acked_pids) < workers
            for lane_index in range(workers):
                if lane_index in busy:
                    continue
                subtree, stolen = take(lane_index)
                if subtree is None:
                    break
                stats.steals += int(stolen)
                future = runner.submit(
                    self._task_for(kernel, engine, subtree, deadline_at, fat)
                )
                inflight[future] = (lane_index, subtree)
            if not inflight:
                break
            for future in runner.wait_any(set(inflight)):
                lane_index, subtree = inflight.pop(future)
                payload = future.result()
                if payload["status"] == "need-kernel":
                    retry = runner.submit(
                        self._task_for(kernel, engine, subtree, deadline_at, True)
                    )
                    inflight[retry] = (lane_index, subtree)
                    continue
                if runner.uses_processes:
                    self._acked_pids.add(payload["pid"])
                results[subtree.prefix] = payload
                self._subtree_span(span, subtree, payload)
                if payload["assignment"] is not None:
                    if best_solution is None or subtree.prefix < best_solution:
                        best_solution = subtree.prefix
                    prune_lanes()
        if timed_out:
            # Drain what is already running; everything queued stays unrun.
            while inflight:
                for future in runner.wait_any(set(inflight)):
                    lane_index, subtree = inflight.pop(future)
                    payload = future.result()
                    if payload["status"] == "need-kernel":
                        continue
                    results[subtree.prefix] = payload
        # Pruned subtrees (lex-after a known solution) are fine to skip:
        # the serial search never visits them either.  Anything else
        # left unrun means the deadline cut the run short.
        ran_all = all(
            subtree.prefix in results
            for subtree in subtrees
            if best_solution is None or subtree.prefix <= best_solution
        )
        return not timed_out and ran_all

    @staticmethod
    def _subtree_span(span, subtree, payload) -> None:
        """Synthesize a child span per completed subtree.

        Mirrors the portfolio's per-scheme span synthesis: subtree
        work happens in other processes, so the parent reconstructs a
        span from the reported wall clock.  Inside a daemon worker the
        whole tree ships home via ``capture`` and is re-parented under
        the request's dispatch span.
        """
        if not span or not payload.get("seconds"):
            return
        child = span.child(
            f"subtree:{'.'.join(map(str, subtree.prefix))}",
            solved=payload["assignment"] is not None,
            cpu_seconds=payload.get("cpu_seconds", 0.0),
        )
        child.end_ns = child.start_ns + int(payload["seconds"] * 1e9)

    # -- deterministic merge --------------------------------------------

    def _merge(self, kernel, buckets, interior, results, stats, complete):
        """Fold frontier billing and subtree results into one verdict.

        Winner = lexicographically smallest decision prefix with a
        solution.  Accounted effort = every effort event whose prefix
        is lex-at-or-before the winner's (all of them for UNSAT), plus
        one backtrack per fully-failed interior node in that region --
        exactly the serial forward-checking totals.
        """
        winner: tuple[int, ...] | None = None
        for prefix in sorted(results):
            if results[prefix]["assignment"] is not None:
                winner = prefix
                break

        def counted(prefix: tuple[int, ...]) -> bool:
            return winner is None or prefix <= winner

        # Region failure, leaves up (interior iterated deepest-first).
        failed: dict[tuple[int, ...], bool] = {}
        for prefix, payload in results.items():
            failed[prefix] = payload["assignment"] is None and payload["complete"]
        for prefix in sorted(interior, key=len, reverse=True):
            failed[prefix] = all(
                failed.get(child, False) for child in interior[prefix]
            )

        for prefix, bucket in buckets.items():
            if counted(prefix):
                stats.nodes += bucket[0]
                stats.backtracks += bucket[1]
                stats.consistency_checks += bucket[2]
            else:
                stats.speculative_nodes += bucket[0]
                stats.speculative_checks += bucket[2]
        for prefix in interior:
            if failed[prefix] and counted(prefix):
                stats.backtracks += 1
        incomplete_in_region = False
        for prefix, payload in results.items():
            counters = payload.get("stats") or {}
            if counted(prefix):
                self._adopt_counters(stats, counters)
                if not payload["complete"]:
                    incomplete_in_region = True
            else:
                stats.speculative_nodes += int(counters.get("nodes", 0))
                stats.speculative_checks += int(
                    counters.get("consistency_checks", 0)
                )

        if winner is not None:
            assignment = results[winner]["assignment"]
            return SolverResult(
                assignment, stats, complete=complete and not incomplete_in_region
            )
        return SolverResult(
            None, stats, complete=complete and not incomplete_in_region
        )


# -- streaming parallel enumeration ---------------------------------------


def enumerate_solutions_parallel(
    network: ConstraintNetwork | CompiledNetwork,
    limit: int,
    max_nodes: int = 200_000,
    workers: int | None = None,
    subtrees_per_worker: int = DEFAULT_SUBTREES_PER_WORKER,
) -> Iterator[dict]:
    """Stream up to ``limit`` solutions in the deterministic order.

    The split form of :func:`repro.csp.compiled.enumerate_solutions`:
    the same static max-degree variable order and ascending value
    order, but the space is split at a branch frontier and the
    subtrees enumerate concurrently.  Solutions are yielded in the
    *serial* order -- subtree outputs are consumed lex-earliest first
    -- so ``refine="simulated"`` can take the top-k lazily and stop
    the pool early instead of materializing everything up front.

    ``max_nodes`` bounds each subtree's effort (the serial function
    bounds the whole walk, so truncated enumerations may differ; give
    both a generous budget when comparing).

    Raises:
        ValueError: for a non-positive limit.
    """
    if limit <= 0:
        raise ValueError("limit must be positive")
    kernel = as_compiled(network)
    count = kernel.variable_count
    if count == 0:
        return
    order = sorted(
        range(count),
        key=lambda v: (-len(kernel.neighbors[v]), kernel.name_rank[v]),
    )
    position = {variable: depth for depth, variable in enumerate(order)}
    workers = workers if workers else default_split_workers()
    target = max(workers * subtrees_per_worker, workers)

    # Frontier expansion in the static order (no effort accounting:
    # enumeration bills nothing).
    entries = _expand_enum_frontier(kernel, order, position, target)

    inline = (
        workers <= 1
        or len([e for e in entries if e[0] == "subtree"]) <= 1
        or multiprocessing.current_process().daemon
    )
    if inline:
        yielded = 0
        for kind, prefix, state in entries:
            if kind == "solution":
                yield state
                yielded += 1
            else:
                values, masks, depth = state
                for named in _enum_search(
                    kernel, order, position, list(values), list(masks),
                    depth, limit - yielded, max_nodes,
                ):
                    yield named
                    yielded += 1
                    if yielded >= limit:
                        return
            if yielded >= limit:
                return
        return

    runner = _PoolRunner(workers)
    key = f"enum-{os.getpid()}-{id(kernel)}"
    try:
        futures = []
        first_subtree = True
        for kind, prefix, state in entries:
            if kind == "solution":
                futures.append(("solution", state))
                continue
            values, masks, depth = state
            task = {
                "mode": "enum",
                "kernel_key": key,
                "kernel": kernel if first_subtree else None,
                "shared_key": None,
                "prefix": prefix,
                "values": tuple(values),
                "deltas": tuple(
                    (i, masks[i])
                    for i in range(count)
                    if masks[i] != kernel.full_masks[i]
                ),
                "order": order,
                "position": position,
                "depth": depth,
                "limit": limit,
                "max_nodes": max_nodes,
            }
            first_subtree = False
            futures.append(("future", (runner.submit(task), task)))
        yielded = 0
        for kind, entry in futures:
            if kind == "solution":
                yield entry
                yielded += 1
            else:
                future, task = entry
                payload = future.result()
                if payload["status"] == "need-kernel":
                    retry = dict(task)
                    retry["kernel"] = kernel
                    payload = runner.submit(retry).result()
                for named in payload["solutions"]:
                    yield named
                    yielded += 1
                    if yielded >= limit:
                        return
            if yielded >= limit:
                return
    finally:
        runner.close()


def _expand_enum_frontier(kernel, order, position, target):
    """BFS split of the static-order enumeration space.

    Returns lex-ordered entries: ``("solution", prefix, named)`` for
    full assignments hit during expansion, ``("subtree", prefix,
    (values, masks, depth))`` for open leaves.
    """
    count = kernel.variable_count
    root = ((), [None] * count, list(kernel.full_masks), 0)
    queue = deque([root])
    solutions = []
    commit_budget = max(64, target * _FRONTIER_COMMIT_FACTOR)
    commits = 0
    while queue and len(queue) < target and commits < commit_budget:
        prefix, values, masks, depth = queue.popleft()
        if depth == count:
            solutions.append(("solution", prefix, kernel.to_named(values)))
            continue
        variable = order[depth]
        for value in iter_bits(masks[variable]):
            commits += 1
            child_values = list(values)
            child_masks = list(masks)
            child_values[variable] = value
            dead = False
            for neighbor in kernel.neighbors[variable]:
                if position[neighbor] <= depth:
                    continue
                pruned = child_masks[neighbor] & kernel.support_mask(
                    variable, value, neighbor
                )
                child_masks[neighbor] = pruned
                if not pruned:
                    dead = True
                    break
            if not dead:
                queue.append(
                    (prefix + (value,), child_values, child_masks, depth + 1)
                )
    entries = []
    for prefix, values, masks, depth in queue:
        if depth == count:
            entries.append(("solution", prefix, kernel.to_named(values)))
        else:
            entries.append(("subtree", prefix, (values, masks, depth)))
    entries.extend(solutions)
    entries.sort(key=lambda e: e[1])
    return entries

"""Min-conflicts local search (incomplete solver extension).

Starts from a random total assignment and repeatedly reassigns a
conflicted variable to the value minimizing its conflict count, with
random restarts.  Useful as a fast incomplete alternative on very large
networks and as a cross-check oracle in tests (any assignment it
returns is verified by :meth:`ConstraintNetwork.is_solution`).

Two engines implement the same walk (``engine="auto"`` sizes the
choice per network):

* ``bitset``: the compiled kernel's shift-and-mask loops (one check
  per directed arc per scan);
* ``numpy``: the vectorized kernel (:mod:`repro.csp.vectorized`)
  keeps the per-variable conflict counts in an incrementally updated
  vector and evaluates whole-domain repair candidates as one support
  gather -- same RNG stream, same effort counters, same walk, fewer
  interpreter cycles.

:meth:`MinConflictsSolver.solve_batch` runs one chain per seed through
the shared kernel; on the numpy engine the chains advance in lockstep
as a single vectorized batch (the restart-portfolio form the service
uses).
"""

from __future__ import annotations

import random
import time

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.engine import record_solver_effort
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch
from repro.csp.vectorized import (
    ENGINE_AUTO,
    ENGINE_NATIVE,
    ENGINE_NUMPY,
    batch_min_conflicts,
    resolve_engine,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


class MinConflictsSolver:
    """Randomized local search; *incomplete* (None does not prove UNSAT)."""

    name = "min-conflicts"

    def __init__(
        self,
        seed: int = 0,
        max_steps: int = 10_000,
        max_restarts: int = 10,
        engine: str = ENGINE_AUTO,
    ):
        if max_steps <= 0 or max_restarts <= 0:
            raise ValueError("max_steps and max_restarts must be positive")
        self._seed = seed
        self._max_steps = max_steps
        self._max_restarts = max_restarts
        self._engine = engine
        self._deadline_seconds: float | None = None

    def set_deadline(self, seconds: float) -> None:
        """Bound the next solve's wall clock.

        Expiry ends the walk without an assignment -- the solver is
        incomplete by contract, so a deadline only shortens the search.
        The deadline is checked once per improve step and restart, and
        never touches the effort counters.
        """
        self._deadline_seconds = max(0.0, seconds)

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Search for a solution; gives up after the step/restart budget."""
        kernel = as_compiled(network)
        engine = resolve_engine(self._engine, kernel)
        with obs_trace.span("min_conflicts", engine=engine):
            result = self._solve_resolved(kernel, engine)
        if obs_metrics.enabled():
            record_solver_effort(engine, "min-conflicts", result.stats)
        return result

    def _solve_resolved(
        self, kernel: CompiledNetwork, engine: str
    ) -> SolverResult:
        deadline_at = (
            time.monotonic() + self._deadline_seconds
            if self._deadline_seconds is not None
            else None
        )
        if engine in (ENGINE_NUMPY, ENGINE_NATIVE):
            return batch_min_conflicts(
                kernel,
                [self._seed],
                max_steps=self._max_steps,
                max_restarts=self._max_restarts,
                engine=engine,
                deadline_at=deadline_at,
            )[0]
        stats = SolverStats()
        rng = random.Random(self._seed)
        with Stopwatch(stats):
            for _ in range(self._max_restarts):
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    break
                values = [
                    rng.randrange(kernel.domain_size(variable))
                    for variable in range(kernel.variable_count)
                ]
                solution = self._improve(kernel, values, rng, stats, deadline_at)
                if solution is not None:
                    return SolverResult(solution, stats, complete=False)
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    break  # aborted walk, not an exhausted restart
                stats.restarts += 1
        return SolverResult(None, stats, complete=False)

    def solve_batch(
        self,
        network: ConstraintNetwork | CompiledNetwork,
        seeds,
    ) -> list[SolverResult]:
        """One independent chain per seed, sharing this solver's budgets.

        Chain ``k`` is byte-identical to
        ``MinConflictsSolver(seed=seeds[k], ...).solve(network)``; the
        numpy engine steps all chains in lockstep (see
        :func:`repro.csp.vectorized.batch_min_conflicts`).
        """
        return batch_min_conflicts(
            network,
            seeds,
            max_steps=self._max_steps,
            max_restarts=self._max_restarts,
            engine=self._engine,
        )

    def _improve(
        self,
        kernel: CompiledNetwork,
        values: list[int],
        rng: random.Random,
        stats: SolverStats,
        deadline_at: float | None = None,
    ) -> dict | None:
        for _ in range(self._max_steps):
            if deadline_at is not None and time.monotonic() >= deadline_at:
                return None
            conflicted = self._conflicted_variables(kernel, values, stats)
            if not conflicted:
                return kernel.to_named(values)
            variable = rng.choice(conflicted)
            values[variable] = self._best_value(
                kernel, variable, values, rng, stats
            )
            stats.nodes += 1
        return None

    def _conflicted_variables(
        self,
        kernel: CompiledNetwork,
        values: list[int],
        stats: SolverStats,
    ) -> list[int]:
        conflicted = []
        for variable in range(kernel.variable_count):
            if self._conflict_count(kernel, variable, values[variable], values, stats):
                conflicted.append(variable)
        return conflicted

    def _conflict_count(
        self,
        kernel: CompiledNetwork,
        variable: int,
        value: int,
        values: list[int],
        stats: SolverStats,
    ) -> int:
        count = 0
        supports = kernel.supports
        for neighbor in kernel.neighbors[variable]:
            stats.consistency_checks += 1
            if not (supports[(variable, neighbor)][value] >> values[neighbor]) & 1:
                count += 1
        return count

    def _best_value(
        self,
        kernel: CompiledNetwork,
        variable: int,
        values: list[int],
        rng: random.Random,
        stats: SolverStats,
    ) -> int:
        scored: list[tuple[int, int]] = []
        for value in range(kernel.domain_size(variable)):
            conflicts = self._conflict_count(kernel, variable, value, values, stats)
            scored.append((conflicts, value))
        best = min(score for score, _ in scored)
        candidates = [value for score, value in scored if score == best]
        return rng.choice(candidates)

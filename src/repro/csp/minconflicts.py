"""Min-conflicts local search (incomplete solver extension).

Starts from a random total assignment and repeatedly reassigns a
conflicted variable to the value minimizing its conflict count, with
random restarts.  Useful as a fast incomplete alternative on very large
networks and as a cross-check oracle in tests (any assignment it
returns is verified by :meth:`ConstraintNetwork.is_solution`).
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch

Value = Hashable


class MinConflictsSolver:
    """Randomized local search; *incomplete* (None does not prove UNSAT)."""

    name = "min-conflicts"

    def __init__(
        self,
        seed: int = 0,
        max_steps: int = 10_000,
        max_restarts: int = 10,
    ):
        if max_steps <= 0 or max_restarts <= 0:
            raise ValueError("max_steps and max_restarts must be positive")
        self._seed = seed
        self._max_steps = max_steps
        self._max_restarts = max_restarts

    def solve(self, network: ConstraintNetwork) -> SolverResult:
        """Search for a solution; gives up after the step/restart budget."""
        stats = SolverStats()
        rng = random.Random(self._seed)
        with Stopwatch(stats):
            for _ in range(self._max_restarts):
                assignment = {
                    variable: rng.choice(network.domain(variable))
                    for variable in network.variables
                }
                solution = self._improve(network, assignment, rng, stats)
                if solution is not None:
                    return SolverResult(solution, stats, complete=False)
                stats.restarts += 1
        return SolverResult(None, stats, complete=False)

    def _improve(
        self,
        network: ConstraintNetwork,
        assignment: dict[str, Value],
        rng: random.Random,
        stats: SolverStats,
    ) -> dict[str, Value] | None:
        for _ in range(self._max_steps):
            conflicted = self._conflicted_variables(network, assignment, stats)
            if not conflicted:
                return dict(assignment)
            variable = rng.choice(conflicted)
            assignment[variable] = self._best_value(
                network, variable, assignment, rng, stats
            )
            stats.nodes += 1
        return None

    def _conflicted_variables(
        self,
        network: ConstraintNetwork,
        assignment: dict[str, Value],
        stats: SolverStats,
    ) -> list[str]:
        conflicted = []
        for variable in network.variables:
            if self._conflict_count(network, variable, assignment[variable], assignment, stats):
                conflicted.append(variable)
        return conflicted

    def _conflict_count(
        self,
        network: ConstraintNetwork,
        variable: str,
        value: Value,
        assignment: dict[str, Value],
        stats: SolverStats,
    ) -> int:
        count = 0
        for neighbor in network.neighbors(variable):
            constraint = network.constraint_between(variable, neighbor)
            assert constraint is not None
            stats.consistency_checks += 1
            if not constraint.allows(variable, value, assignment[neighbor]):
                count += 1
        return count

    def _best_value(
        self,
        network: ConstraintNetwork,
        variable: str,
        assignment: dict[str, Value],
        rng: random.Random,
        stats: SolverStats,
    ) -> Value:
        scored: list[tuple[int, Value]] = []
        for value in network.domain(variable):
            conflicts = self._conflict_count(
                network, variable, value, assignment, stats
            )
            scored.append((conflicts, value))
        best = min(score for score, _ in scored)
        candidates = [value for score, value in scored if score == best]
        return rng.choice(candidates)

"""Non-binary constraints and their binary (dual) encoding.

Section 3 of the paper notes that its layout formulation is binary but
that "there are also techniques that can be used to convert non-binary
formulations to binary ones".  This module provides exactly that: an
n-ary constraint type (e.g. one constraint per *nest* over all its
arrays, instead of per array pair) and the classic **dual-graph
encoding** -- each n-ary constraint becomes a dual variable whose
domain is its allowed tuples, and two dual variables are constrained to
agree on their shared original variables.  Solving the dual network
with any binary solver and decoding yields a solution of the original
n-ary problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.csp.network import ConstraintNetwork

Value = Hashable


@dataclass(frozen=True)
class NaryConstraint:
    """An n-ary constraint: allowed value tuples over a variable scope.

    Attributes:
        scope: the constrained variables, in tuple order.
        tuples: the allowed assignments, one value per scope entry.
    """

    scope: tuple[str, ...]
    tuples: frozenset[tuple[Value, ...]]

    def __post_init__(self) -> None:
        if len(set(self.scope)) != len(self.scope):
            raise ValueError("n-ary constraint scope repeats a variable")
        if not self.tuples:
            raise ValueError("n-ary constraint allows no tuples")
        for allowed in self.tuples:
            if len(allowed) != len(self.scope):
                raise ValueError(
                    f"tuple {allowed} does not match scope {self.scope}"
                )

    def allows(self, assignment: Mapping[str, Value]) -> bool:
        """True iff the (total over scope) assignment is allowed."""
        candidate = tuple(assignment[name] for name in self.scope)
        return candidate in self.tuples


@dataclass(frozen=True)
class DualEncoding:
    """A dual-graph binary encoding of an n-ary problem.

    Attributes:
        network: the binary network over dual variables ``c0, c1, ...``.
        constraints: the original n-ary constraints, indexed by the
            dual variable names.
    """

    network: ConstraintNetwork
    constraints: dict[str, NaryConstraint]

    def decode(
        self, dual_assignment: Mapping[str, tuple[Value, ...]]
    ) -> dict[str, Value]:
        """Map a dual solution back to original-variable values.

        Raises:
            ValueError: if the dual assignment is internally
                inconsistent (cannot happen for a dual-network
                solution).
        """
        decoded: dict[str, Value] = {}
        for dual_name, chosen_tuple in dual_assignment.items():
            constraint = self.constraints[dual_name]
            for variable, value in zip(constraint.scope, chosen_tuple):
                if variable in decoded and decoded[variable] != value:
                    raise ValueError(
                        f"dual assignment disagrees on {variable}"
                    )
                decoded[variable] = value
        return decoded


def dual_encode(constraints: Sequence[NaryConstraint]) -> DualEncoding:
    """Build the dual-graph binary encoding of n-ary constraints.

    Each constraint ``c_i`` becomes a variable whose domain is its
    tuple set; for every pair of constraints sharing original
    variables, a binary constraint keeps the shared positions equal.

    Raises:
        ValueError: on an empty constraint list.
    """
    if not constraints:
        raise ValueError("need at least one constraint to encode")
    network = ConstraintNetwork()
    names: dict[str, NaryConstraint] = {}
    for index, constraint in enumerate(constraints):
        name = f"c{index}"
        names[name] = constraint
        network.add_variable(name, sorted(constraint.tuples))
    dual_items = list(names.items())
    for i, (first_name, first) in enumerate(dual_items):
        for second_name, second in dual_items[i + 1:]:
            shared = [
                (first.scope.index(v), second.scope.index(v))
                for v in first.scope
                if v in second.scope
            ]
            if not shared:
                continue
            pairs = [
                (tuple_a, tuple_b)
                for tuple_a in first.tuples
                for tuple_b in second.tuples
                if all(tuple_a[i1] == tuple_b[i2] for i1, i2 in shared)
            ]
            if not pairs:
                # The two constraints are jointly unsatisfiable; encode
                # that honestly by raising at build time.
                raise ValueError(
                    f"constraints over {first.scope} and {second.scope} "
                    "share variables but agree on no tuples"
                )
            network.add_constraint(first_name, second_name, pairs)
    return DualEncoding(network, names)


def solve_nary(
    constraints: Sequence[NaryConstraint], solver
) -> dict[str, Value] | None:
    """Encode, solve with a binary solver, and decode.

    Args:
        constraints: the n-ary problem.
        solver: any object with ``solve(network) -> SolverResult``.

    Returns:
        An original-variable assignment, or None if unsatisfiable.
    """
    try:
        encoding = dual_encode(constraints)
    except ValueError:
        return None
    result = solver.solve(encoding.network)
    if result.assignment is None:
        return None
    return encoding.decode(result.assignment)

"""The second-generation propagation kernel: numpy support matrices.

:class:`~repro.csp.compiled.CompiledNetwork` (PR 2) made a single
consistency check a machine-int shift-and-mask.  The solver inner
loops, however, still *iterate* in Python: AC-3 revises one value at a
time, min-conflicts scans every directed arc per step, the enhanced
orderings walk neighbor lists per candidate.  On the paper's networks
those loops dominate end-to-end solve time.

:class:`VectorizedKernel` packs every ``(variable, neighbor)`` support
relation into dense numpy planes so whole-domain questions become one
array operation:

* **AC-3 revision** -- "which live values of ``t`` still have support
  in ``s``?" is one masked ``any`` over the pair's support matrix;
* **least-constraining value** -- support counts are precomputed rows
  summed with one ``sum`` per ordering decision;
* **most-constraining variable** -- future degrees are one
  adjacency-matrix/vector product;
* **min-conflicts** -- conflict counts live in an incrementally
  maintained vector, and ``batch_min_conflicts`` steps K independent
  restart chains in lockstep through one shared gather.

Everything is *parity-preserving*: the bitset kernel defines the
semantics, and the numpy engine reproduces its RNG streams, effort
counters and returned solutions byte for byte (the hypothesis suite in
``tests/csp/test_vectorized_equivalence.py`` enforces this).  Engine
choice is per solver call -- ``engine="bitset" | "numpy" | "auto"`` --
with ``auto`` picking numpy only when it is importable and the network
is big enough for array dispatch overhead to pay for itself.

The planes are flat numpy arrays, which makes the kernel *shareable*:
:func:`export_shared` publishes them into one
:mod:`multiprocessing.shared_memory` segment keyed by the request
fingerprint, and :func:`attach_shared` maps them back zero-copy, so a
resident daemon's warm workers attach one kernel instead of each
rebuilding (or re-unpickling) their own.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import time
from typing import Hashable, Mapping, Sequence

from repro.csp.compiled import CompiledNetwork, as_compiled, iter_bits
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats

try:  # numpy is an optional dependency of the csp layer
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None

logger = logging.getLogger(__name__)

Value = Hashable

#: Engine spec tokens accepted everywhere an ``engine=`` knob exists.
ENGINE_BITSET = "bitset"
ENGINE_NUMPY = "numpy"
ENGINE_NATIVE = "native"
ENGINE_AUTO = "auto"
ENGINES = (ENGINE_AUTO, ENGINE_BITSET, ENGINE_NUMPY, ENGINE_NATIVE)

#: Environment override consulted by ``engine="auto"`` resolution; set
#: to ``bitset``, ``numpy`` or ``native`` to force one engine
#: process-wide (the service CLI's ``--engine`` writes this so racing
#: worker processes inherit the choice).
ENGINE_ENV = "REPRO_CSP_ENGINE"


def _env_cells(name: str, default: int) -> int:
    """An integer tuning knob with an environment override.

    ``scripts/calibrate_crossovers.py`` measures the host's actual
    crossover points and prints ready-to-paste ``export`` lines for
    these variables; unparseable values fall back to the default.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        logger.warning("ignoring non-integer %s=%r", name, raw)
        return default


#: ``auto`` picks numpy only when the network carries at least this
#: many directed support cells (sum of ``|D_i| * |D_j|`` over directed
#: constrained pairs): below it, per-call array dispatch overhead
#: exceeds what Python machine-int bitsets already cost.  Override
#: with ``REPRO_AUTO_MIN_SUPPORT_CELLS``.
AUTO_MIN_SUPPORT_CELLS = _env_cells("REPRO_AUTO_MIN_SUPPORT_CELLS", 256)

#: ``auto`` prefers the native C kernel from this many directed
#: support cells up (when a compiled kernel is available).  The native
#: per-call overhead is a single ctypes dispatch -- far below numpy's
#: per-op array dispatch -- so its crossover against the pure-Python
#: bitset loops sits much lower than numpy's.  Override with
#: ``REPRO_NATIVE_MIN_SUPPORT_CELLS``.
NATIVE_MIN_SUPPORT_CELLS = _env_cells("REPRO_NATIVE_MIN_SUPPORT_CELLS", 64)

#: ``auto`` falls back to bitsets when the padded support tensor would
#: exceed this many bytes (pathologically large random networks).
AUTO_MAX_TENSOR_BYTES = 32 * 1024 * 1024

#: Per-arc AC-3 crossover, in directed support cells (``|D_t| * |D_s|``
#: for the arc being revised).  A numpy whole-domain revision costs a
#: flat ~7-8us of array dispatch regardless of size, while the bitset
#: revision grows with the live-value count: measured on the reference
#: box, bitset wins 10.8x at 4 cells, 4.3x at 64, 1.2x at 784, and
#: numpy takes over between 784 and 1024 cells (0.84x at 1024, 0.41x
#: at 4096).  ``ac3(engine="auto")`` therefore revises below-threshold
#: arcs with bitsets even when the network as a whole resolves to the
#: numpy engine; explicit ``engine=`` specs and the :data:`ENGINE_ENV`
#: override keep the single-engine behavior.  (The native engine has
#: no such split: its per-arc revision beats the bitset loop at every
#: measured width, so a native AC-3 run revises every arc natively.)
#: Override with ``REPRO_AC3_ARC_CROSSOVER_CELLS``.
AC3_ARC_CROSSOVER_CELLS = _env_cells("REPRO_AC3_ARC_CROSSOVER_CELLS", 900)


def numpy_available() -> bool:
    """True when the numpy engine can run in this process."""
    return np is not None


def _native_usable() -> bool:
    """True when the native C kernel can run in this process.

    The first call may compile the kernel (cached on disk thereafter);
    the loaded-or-failed outcome is memoized by the build module, so
    subsequent engine resolutions cost one function call.
    """
    try:
        from repro.csp.native import build
    except ImportError:  # pragma: no cover - package always ships
        return False
    return build.usable()


def native_available() -> bool:
    """True when the native engine can run in this process."""
    return _native_usable()


#: Degradation keys already logged by :func:`resolve_engine` -- the
#: fleet-wide env override must not spam one warning per solver call
#: on hosts that cannot honor it (each *occurrence* is still counted
#: through the obs layer).
_DEGRADATIONS_WARNED: set[str] = set()


def _degraded(reason: str, message: str, *args) -> None:
    """Count an engine degradation; log it once per process."""
    from repro.obs import metrics as obs_metrics

    obs_metrics.counter(
        "repro_engine_degradations_total",
        labels={"reason": reason},
        help="Engine env-override degradations by reason.",
    )
    if reason not in _DEGRADATIONS_WARNED:
        _DEGRADATIONS_WARNED.add(reason)
        logger.warning(message, *args)


def support_cells(kernel: CompiledNetwork) -> int:
    """Directed support-matrix cells the vectorized kernel would hold."""
    return sum(
        len(masks) * kernel.domain_size(j)
        for (_, j), masks in kernel.supports.items()
    )


def _tensor_bytes(kernel: CompiledNetwork) -> int:
    """Projected size of the padded support tensor (the largest plane)."""
    count = kernel.variable_count
    if count == 0:
        return 0
    max_degree = max((len(n) for n in kernel.neighbors), default=0)
    max_domain = max((kernel.domain_size(i) for i in range(count)), default=0)
    return count * max_degree * max_domain * max_domain


def resolve_engine(
    spec: str, network: ConstraintNetwork | CompiledNetwork
) -> str:
    """Resolve an engine spec to ``"bitset"``, ``"numpy"`` or ``"native"``.

    ``auto`` consults the :data:`ENGINE_ENV` environment override
    first, then a size heuristic: networks at or above
    :data:`NATIVE_MIN_SUPPORT_CELLS` directed support cells run on the
    native C kernel when one can be compiled or loaded, the numpy
    band between :data:`AUTO_MIN_SUPPORT_CELLS` and
    :data:`AUTO_MAX_TENSOR_BYTES` follows, and everything smaller
    stays on bitsets.  An explicit ``"numpy"`` without numpy installed
    (or ``"native"`` without a working compiler or cached kernel)
    raises; the *environment* override degrades down the ladder --
    native -> numpy -> bitset -- with a single logged warning per
    process instead, so a fleet-wide knob never crashes a host that
    cannot honor it (every degraded call is still counted via the
    ``repro_engine_degradations_total`` obs counter).

    Raises:
        ValueError: for an unknown spec.
        RuntimeError: for an explicit ``"numpy"`` with numpy missing,
            or an explicit ``"native"`` with no usable native kernel.
    """
    if spec not in ENGINES:
        raise ValueError(f"unknown engine {spec!r}; pick one of {ENGINES}")
    if spec == ENGINE_AUTO:
        override = os.environ.get(ENGINE_ENV, "").strip().lower()
        if override == ENGINE_BITSET:
            return ENGINE_BITSET
        if override == ENGINE_NUMPY:
            if np is None:
                _degraded(
                    "numpy-missing",
                    "%s=numpy but numpy is not installed; using bitset",
                    ENGINE_ENV,
                )
                return ENGINE_BITSET
            return ENGINE_NUMPY
        if override == ENGINE_NATIVE:
            if _native_usable():
                return ENGINE_NATIVE
            if np is not None:
                _degraded(
                    "native-unusable",
                    "%s=native but no native kernel could be built "
                    "(no C compiler?); using numpy",
                    ENGINE_ENV,
                )
                return ENGINE_NUMPY
            _degraded(
                "native-unusable",
                "%s=native but no native kernel could be built "
                "(no C compiler?); using bitset",
                ENGINE_ENV,
            )
            return ENGINE_BITSET
        kernel = as_compiled(network)
        cells = support_cells(kernel)
        if cells >= NATIVE_MIN_SUPPORT_CELLS and _native_usable():
            return ENGINE_NATIVE
        if np is None:
            return ENGINE_BITSET
        if cells < AUTO_MIN_SUPPORT_CELLS:
            return ENGINE_BITSET
        if _tensor_bytes(kernel) > AUTO_MAX_TENSOR_BYTES:
            return ENGINE_BITSET
        return ENGINE_NUMPY
    if spec == ENGINE_NUMPY and np is None:
        raise RuntimeError("engine='numpy' requested but numpy is not installed")
    if spec == ENGINE_NATIVE and not _native_usable():
        raise RuntimeError(
            "engine='native' requested but the native kernel is unavailable "
            "(no C compiler on PATH/$CC and no cached build)"
        )
    return spec


def _mask_row(mask: int, width: int):
    """A support bitmask as a (width,) bool array."""
    nbytes = max(1, (width + 7) // 8)
    raw = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width].astype(bool)


#: Names and order of the shareable planes (the manifest schema).
_PLANE_NAMES = (
    "domain_sizes",
    "name_rank",
    "degrees",
    "neighbors_pad",
    "slot_valid",
    "arc_src",
    "arc_dst",
    "arc_off",
    "sup_flat",
    "support_tensor",
    "lcv_counts",
    "adjacency",
)


class VectorizedKernel:
    """Dense numpy planes of one compiled network's support structure.

    Built by :func:`as_vectorized` (cached on the compiled kernel) or
    attached zero-copy from a shared-memory segment.  All planes are
    read-only by convention; shared attachments enforce it.

    Planes (``V`` variables, ``A`` directed arcs, padded to
    ``max_degree`` / ``max_domain``):

    * ``domain_sizes``, ``name_rank``, ``degrees``: ``(V,)`` int64.
    * ``neighbors_pad``: ``(V, max_degree)`` int64 neighbor indices
      (zero-padded); ``slot_valid`` marks the real slots.
    * ``arc_src`` / ``arc_dst`` / ``arc_off``: ``(A,)`` int64 directed
      arcs in ``(variable, neighbor-order)`` order; ``arc_off`` indexes
      each arc's row-major support block inside ``sup_flat``.
    * ``sup_flat``: all directed support matrices, flattened -- the
      min-conflicts full-scan gather runs on this.
    * ``support_tensor``: ``(V, max_degree, max_domain, max_domain)``
      bool -- ``[v, d, a, b]`` is True iff value ``a`` of ``v`` is
      compatible with value ``b`` of its ``d``-th neighbor.
    * ``lcv_counts``: ``(V, max_degree, max_domain)`` int64 static
      support popcounts (the least-constraining-value sums).
    * ``adjacency``: ``(V, V)`` int64 0/1 (the most-constraining
      future-degree matrix-vector product).
    """

    def __init__(self, planes: Mapping[str, "np.ndarray"], shm=None):
        for name in _PLANE_NAMES:
            setattr(self, name, planes[name])
        self._shm = shm  # keeps a shared segment mapped while in use
        self.variable_count = int(self.domain_sizes.shape[0])
        self.max_degree = int(self.neighbors_pad.shape[1])
        self.max_domain = int(self.support_tensor.shape[2])
        self.arc_count = int(self.arc_src.shape[0])
        #: one full min-conflicts scan touches every directed arc once
        self.scan_checks = self.arc_count
        # Derived (cheap, never shared): python-int views for the
        # scalar-heavy paths, and the (i, j) -> neighbor-slot map.
        self.domain_size_list = self.domain_sizes.tolist()
        self.degree_list = self.degrees.tolist()
        self.neighbor_lists = [
            self.neighbors_pad[v, : self.degree_list[v]].tolist()
            for v in range(self.variable_count)
        ]
        self.slot_of = {
            (v, j): d
            for v in range(self.variable_count)
            for d, j in enumerate(self.neighbor_lists[v])
        }

    @property
    def shared(self) -> bool:
        """True when the planes live in an attached shared segment."""
        return self._shm is not None

    @property
    def nbytes(self) -> int:
        """Total plane payload size."""
        return sum(getattr(self, name).nbytes for name in _PLANE_NAMES)

    def planes(self) -> dict[str, "np.ndarray"]:
        """The shareable planes, by name."""
        return {name: getattr(self, name) for name in _PLANE_NAMES}

    def support_matrix(self, variable: int, slot: int):
        """The (dom_v, dom_n) bool support matrix of one neighbor slot."""
        neighbor = self.neighbor_lists[variable][slot]
        return self.support_tensor[
            variable,
            slot,
            : self.domain_size_list[variable],
            : self.domain_size_list[neighbor],
        ]


def build_vectorized(kernel: CompiledNetwork) -> VectorizedKernel:
    """Construct the numpy planes from a compiled kernel (uncached).

    Raises:
        RuntimeError: when numpy is not installed.
    """
    if np is None:
        raise RuntimeError("numpy is required to build a VectorizedKernel")
    count = kernel.variable_count
    doms = [kernel.domain_size(i) for i in range(count)]
    max_domain = max(doms, default=0)
    degrees = [len(kernel.neighbors[i]) for i in range(count)]
    max_degree = max(degrees, default=0)

    domain_sizes = np.array(doms, dtype=np.int64).reshape(count)
    name_rank = np.array(kernel.name_rank, dtype=np.int64).reshape(count)
    degrees_arr = np.array(degrees, dtype=np.int64).reshape(count)
    neighbors_pad = np.zeros((count, max_degree), dtype=np.int64)
    slot_valid = np.zeros((count, max_degree), dtype=bool)
    support_tensor = np.zeros(
        (count, max_degree, max_domain, max_domain), dtype=bool
    )
    lcv_counts = np.zeros((count, max_degree, max_domain), dtype=np.int64)
    adjacency = np.zeros((count, count), dtype=np.int64)

    arc_src: list[int] = []
    arc_dst: list[int] = []
    arc_off: list[int] = []
    blocks: list = []
    offset = 0
    for i in range(count):
        for d, j in enumerate(kernel.neighbors[i]):
            neighbors_pad[i, d] = j
            slot_valid[i, d] = True
            adjacency[i, j] = 1
            masks = kernel.supports[(i, j)]
            block = np.zeros((doms[i], doms[j]), dtype=bool)
            for a, mask in enumerate(masks):
                block[a] = _mask_row(mask, doms[j])
            support_tensor[i, d, : doms[i], : doms[j]] = block
            lcv_counts[i, d, : doms[i]] = block.sum(axis=1)
            arc_src.append(i)
            arc_dst.append(j)
            arc_off.append(offset)
            blocks.append(block.ravel())
            offset += block.size

    planes = {
        "domain_sizes": domain_sizes,
        "name_rank": name_rank,
        "degrees": degrees_arr,
        "neighbors_pad": neighbors_pad,
        "slot_valid": slot_valid,
        "arc_src": np.array(arc_src, dtype=np.int64),
        "arc_dst": np.array(arc_dst, dtype=np.int64),
        "arc_off": np.array(arc_off, dtype=np.int64),
        "sup_flat": (
            np.concatenate(blocks) if blocks else np.zeros(0, dtype=bool)
        ),
        "support_tensor": support_tensor,
        "lcv_counts": lcv_counts,
        "adjacency": adjacency,
    }
    return VectorizedKernel(planes)


def as_vectorized(
    network: ConstraintNetwork | CompiledNetwork,
) -> VectorizedKernel:
    """The vectorized planes of a network, cached on its compiled kernel.

    The cache attribute is excluded from kernel pickling (see
    :meth:`CompiledNetwork.__getstate__`), so shipping a compiled
    kernel to a worker process never serializes the numpy planes --
    workers rebuild, inherit via ``fork``, or attach the shared
    segment.
    """
    kernel = as_compiled(network)
    cached = getattr(kernel, "_vector_cache", None)
    if cached is not None:
        return cached
    vectorized = build_vectorized(kernel)
    kernel._vector_cache = vectorized
    return vectorized


def install_vectorized(kernel: CompiledNetwork, vectorized: VectorizedKernel) -> None:
    """Install pre-built (e.g. shared-attached) planes as the cache."""
    kernel._vector_cache = vectorized


class MaskedLexArgmin:
    """One-argmin reproduction of a lexicographic ``min`` with a mask.

    The reference heuristics pick ``min(candidates, key=lambda v:
    (dynamic(v), *static_tail(v)))`` where the static tail ends in the
    unique name rank.  Encode the tail as one non-negative int64
    vector (``static``), and a selection becomes ``argmin(dynamic *
    scale + static)`` over the live candidates -- ``scale`` exceeds
    every static value, so the dynamic component is the most
    significant digit, and uniqueness of the rank digit makes the
    argmin's first-minimum rule coincide with the reference ``min``.
    Shared by the engine's most-constraining-variable selection and
    forward checking's MRV so the subtle digit encoding lives once.
    """

    def __init__(self, static):
        self.static = static
        self.scale = int(static.max()) + 1 if static.size else 1
        self._big = np.iinfo(np.int64).max

    def argmin(self, dynamic, live_mask) -> int:
        """Index minimizing ``(dynamic, static)`` among live entries.

        ``dynamic`` must be non-negative and small enough that
        ``dynamic * scale + static`` stays below int64 (true for every
        count-valued heuristic over sane network sizes).
        """
        key = dynamic * self.scale + self.static
        return int(np.where(live_mask, key, self._big).argmin())


# -- batched min-conflicts chains ----------------------------------------


def batch_min_conflicts(
    network: ConstraintNetwork | CompiledNetwork,
    seeds: Sequence[int],
    max_steps: int = 10_000,
    max_restarts: int = 10,
    engine: str = ENGINE_AUTO,
    deadline_at: float | None = None,
) -> list[SolverResult]:
    """Run one min-conflicts chain per seed; all chains share one kernel.

    Chain ``k`` is byte-identical -- assignment, RNG stream, effort
    counters -- to ``MinConflictsSolver(seed=seeds[k], max_steps=...,
    max_restarts=...).solve(network)``; the numpy engine merely steps
    every live chain in lockstep so the per-step conflict mathematics
    of the whole batch runs as single array gathers.  This is the
    vectorized form of a multi-seed restart portfolio: one kernel, K
    diversified walks, one pass.  Each returned result's
    ``time_seconds`` reports the batch wall clock (the chains ran
    concurrently, so per-chain times are not separable).

    ``deadline_at`` (absolute ``time.monotonic()``) ends still-running
    chains with no assignment once it passes -- the local search is
    incomplete anyway, so a deadline just shortens the walk.

    Raises:
        ValueError: for an empty seed list or non-positive budgets.
    """
    if not seeds:
        raise ValueError("batch_min_conflicts needs at least one seed")
    if max_steps <= 0 or max_restarts <= 0:
        raise ValueError("max_steps and max_restarts must be positive")
    kernel = as_compiled(network)
    resolved = resolve_engine(engine, kernel)
    if resolved == ENGINE_BITSET:
        from repro.csp.minconflicts import MinConflictsSolver

        start = time.perf_counter()
        results = []
        for seed in seeds:
            solver = MinConflictsSolver(
                seed=seed,
                max_steps=max_steps,
                max_restarts=max_restarts,
                engine=ENGINE_BITSET,
            )
            if deadline_at is not None:
                solver.set_deadline(deadline_at - time.monotonic())
            results.append(solver.solve(kernel))
        elapsed = time.perf_counter() - start
        for result in results:
            result.stats.time_seconds = elapsed
        return results
    if resolved == ENGINE_NATIVE:
        return _batch_min_conflicts_native(
            kernel, list(seeds), max_steps, max_restarts, deadline_at
        )
    return _batch_min_conflicts_numpy(
        kernel, list(seeds), max_steps, max_restarts, deadline_at
    )


def _batch_min_conflicts_native(
    kernel: CompiledNetwork,
    seeds: list[int],
    max_steps: int,
    max_restarts: int,
    deadline_at: float | None = None,
) -> list[SolverResult]:
    """One native walk per seed; per-chain parity, batch wall clock.

    Each chain is the whole-walk C loop (no per-step interpreter
    round-trips), so unlike the numpy engine there is nothing to gain
    from lockstepping -- sequential chains already amortize the single
    kernel lowering.
    """
    from repro.csp.native import ops as native_ops

    start = time.perf_counter()
    results = []
    for seed in seeds:
        stats = SolverStats()
        values, nodes, checks, restarts = native_ops.min_conflicts(
            kernel, seed, max_steps, max_restarts, deadline_at
        )
        stats.nodes = nodes
        stats.consistency_checks = checks
        stats.restarts = restarts
        assignment = kernel.to_named(values) if values is not None else None
        results.append(SolverResult(assignment, stats, complete=False))
    elapsed = time.perf_counter() - start
    for result in results:
        result.stats.time_seconds = elapsed
    return results


class _Chain:
    """Per-seed state of one lockstep min-conflicts chain."""

    __slots__ = ("rng", "stats", "steps_left", "restarts_left", "result", "done")

    def __init__(self, rng, max_steps: int, max_restarts: int):
        self.rng = rng
        self.stats = SolverStats()
        self.steps_left = max_steps
        self.restarts_left = max_restarts
        self.result: SolverResult | None = None
        self.done = False


#: Round-scan accounting of the most recent numpy batch: how many
#: chain rows the conflicted-variable gathers actually touched versus
#: the dense ``rounds * chains`` a full-batch gather would have.  The
#: mixed-length-chain regression test reads this to pin the
#: finished-rows-skipped behavior without timing anything.
_LAST_BATCH_DIAGNOSTICS: dict[str, int] = {}


def last_batch_diagnostics() -> dict[str, int]:
    """Scan accounting of the most recent numpy lockstep batch.

    Keys: ``chains``, ``rounds``, ``rows_scanned`` (rows gathered by
    the conflicted-variable scans; finished chains' rows are skipped,
    so on mixed-length chain sets this is strictly less than
    ``rounds * chains``).  Empty until a numpy batch has run.
    """
    return dict(_LAST_BATCH_DIAGNOSTICS)


def _batch_min_conflicts_numpy(
    kernel: CompiledNetwork,
    seeds: list[int],
    max_steps: int,
    max_restarts: int,
    deadline_at: float | None = None,
) -> list[SolverResult]:
    import random

    vectorized = as_vectorized(kernel)
    count = vectorized.variable_count
    chain_count = len(seeds)
    start = time.perf_counter()
    chains = [_Chain(random.Random(seed), max_steps, max_restarts) for seed in seeds]
    values = np.zeros((chain_count, count), dtype=np.int64)
    # Conflict counts live as one (chains, variables) plane so the
    # per-round conflicted scan is a single gather over the *active*
    # rows -- finished chains' rows are masked out of the gather
    # entirely instead of being rescanned every round.  Per-step
    # writes are a handful of neighbor deltas into one row view.
    counts = np.zeros((chain_count, count), dtype=np.int64)

    arc_src = vectorized.arc_src
    dst_doms = vectorized.domain_sizes[vectorized.arc_dst]
    dom_list = vectorized.domain_size_list
    deg_list = vectorized.degree_list
    neighbor_lists = vectorized.neighbor_lists
    neighbor_index = [
        np.array(neighbors, dtype=np.int64) for neighbors in neighbor_lists
    ]

    def begin_restart(index: int) -> None:
        """(Re)randomize one chain and rebuild its conflict counts."""
        chain = chains[index]
        row = [chain.rng.randrange(dom_list[v]) for v in range(count)]
        values[index] = row
        if vectorized.arc_count:
            flat = (
                vectorized.arc_off
                + values[index, arc_src] * dst_doms
                + values[index, vectorized.arc_dst]
            )
            violated = ~vectorized.sup_flat[flat]
            counts[index] = np.bincount(
                arc_src, weights=violated, minlength=count
            ).astype(np.int64)
        else:
            counts[index] = 0
        chain.steps_left = max_steps

    def finish(index: int, assignment) -> None:
        chain = chains[index]
        chain.result = SolverResult(assignment, chain.stats, complete=False)
        chain.done = True

    def end_of_improve(index: int) -> None:
        """One restart budget exhausted: restart or give up."""
        chain = chains[index]
        chain.stats.restarts += 1
        chain.restarts_left -= 1
        if chain.restarts_left == 0:
            finish(index, None)
        else:
            begin_restart(index)

    active = list(range(chain_count))
    for index in active:
        begin_restart(index)

    rounds = 0
    rows_scanned = 0
    d_index = np.arange(vectorized.max_degree)[None, :, None]
    a_index = np.arange(vectorized.max_domain)[None, None, :]
    while active:
        if deadline_at is not None and time.monotonic() >= deadline_at:
            # Local search is incomplete by contract; expiry just ends
            # the remaining walks without an assignment.
            for index in active:
                finish(index, None)
            break
        rounds += 1
        rows_scanned += len(active)
        live_counts = counts[np.array(active, dtype=np.int64)]
        has_conflict = live_counts.any(axis=1)
        stepping: list[int] = []
        chosen: list[int] = []
        for pos, index in enumerate(active):
            chain = chains[index]
            # One reference `_improve` iteration: full conflict scan
            # (the counter bills it; the counts plane already knows
            # the answer), then solution / step-budget bookkeeping.
            chain.stats.consistency_checks += vectorized.scan_checks
            if not has_conflict[pos]:
                finish(index, kernel.to_named(values[index].tolist()))
                continue
            conflicted = np.flatnonzero(live_counts[pos]).tolist()
            stepping.append(index)
            chosen.append(chain.rng.choice(conflicted))
        if stepping:
            rows = np.array(stepping, dtype=np.int64)
            variables = np.array(chosen, dtype=np.int64)
            neighbor_ids = vectorized.neighbors_pad[variables]
            neighbor_vals = values[rows[:, None], neighbor_ids]
            # allowed[s, d, a]: is value `a` of chain s's chosen
            # variable compatible with its d-th neighbor's value?
            # Padded slots of the support tensor are all-False, so no
            # validity mask is needed: they contribute zero support.
            allowed = vectorized.support_tensor[
                variables[:, None, None],
                d_index,
                a_index,
                neighbor_vals[:, :, None],
            ]
            per_value = vectorized.degrees[variables][:, None] - allowed.sum(
                axis=1
            )
            for s, index in enumerate(stepping):
                chain = chains[index]
                variable = chosen[s]
                degree = deg_list[variable]
                dom = dom_list[variable]
                chain.stats.consistency_checks += degree * dom
                row = per_value[s, :dom].tolist()
                best = min(row)
                candidates = [a for a, c in enumerate(row) if c == best]
                value = chain.rng.choice(candidates)
                old = int(values[index, variable])
                if value != old:
                    delta = (
                        allowed[s, :degree, old].astype(np.int64)
                        - allowed[s, :degree, value].astype(np.int64)
                    )
                    counts[index, neighbor_index[variable]] += delta
                    counts[index, variable] = row[value]
                    values[index, variable] = value
                chain.stats.nodes += 1
                chain.steps_left -= 1
                if chain.steps_left == 0:
                    end_of_improve(index)
        active = [index for index in active if not chains[index].done]

    _LAST_BATCH_DIAGNOSTICS.clear()
    _LAST_BATCH_DIAGNOSTICS.update(
        {"chains": chain_count, "rounds": rounds, "rows_scanned": rows_scanned}
    )
    elapsed = time.perf_counter() - start
    results = []
    for chain in chains:
        chain.stats.time_seconds = elapsed
        results.append(chain.result)
    return results


# -- shared-memory kernel sharing ----------------------------------------

#: Manifest/layout version; attachments reject other versions.
SHARED_FORMAT_VERSION = 1

#: Header: [magic u64][manifest length u64]; magic written *last*, so
#: a reader never maps a half-written segment (it polls briefly via
#: ``attach_shared(..., timeout=)`` instead).
_HEADER = struct.Struct("<QQ")
_MAGIC = 0x31564B52504552  # "REPRKV1"
_ALIGN = 64


def shared_segment_name(key: str) -> str:
    """Deterministic segment name for a kernel key (e.g. fingerprint)."""
    import hashlib

    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
    return f"repro-vk-{digest}"


def _shared_memory_module():
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - platform without shm
        return None
    return shared_memory


def _untrack(shm) -> None:
    """Opt a segment out of resource_tracker auto-unlink.

    Lifetime is owned explicitly (the daemon unlinks segments it knows
    about at shutdown); without this, the first worker process to exit
    would unlink segments its siblings still use.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def export_shared(vectorized: VectorizedKernel, key: str) -> str | None:
    """Publish the planes into a fresh shared segment; return its name.

    Returns None when shared memory is unavailable or the segment
    already exists (somebody else published first -- attach instead).
    """
    shared_memory = _shared_memory_module()
    if shared_memory is None or np is None:
        return None
    planes = vectorized.planes()
    manifest_planes = []
    offset = _HEADER.size
    manifest_probe = {
        "version": SHARED_FORMAT_VERSION,
        "key": key,
        "planes": [
            {
                "name": name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": 0,
            }
            for name, array in planes.items()
        ],
    }
    manifest_budget = len(json.dumps(manifest_probe).encode("utf-8")) + 256
    offset += manifest_budget
    for name, array in planes.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        manifest_planes.append(
            {
                "name": name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    manifest = {
        "version": SHARED_FORMAT_VERSION,
        "key": key,
        "planes": manifest_planes,
    }
    payload = json.dumps(manifest).encode("utf-8")
    if len(payload) > manifest_budget:  # pragma: no cover - sizing guard
        return None
    name = shared_segment_name(key)
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    except FileExistsError:
        return None
    except OSError as exc:  # pragma: no cover - e.g. /dev/shm full
        logger.warning("could not create shared kernel segment: %s", exc)
        return None
    try:
        shm.buf[_HEADER.size : _HEADER.size + len(payload)] = payload
        for entry in manifest_planes:
            array = planes[entry["name"]]
            flat = np.ascontiguousarray(array).reshape(-1).view(np.uint8)
            raw = flat.tobytes()
            shm.buf[entry["offset"] : entry["offset"] + len(raw)] = raw
        # Publish: magic last, so concurrent attachers never see a
        # half-written manifest or plane.
        _HEADER.pack_into(shm.buf, 0, _MAGIC, len(payload))
        _untrack(shm)
        shm.close()
        return name
    except Exception:  # pragma: no cover - defensive cleanup
        try:
            shm.unlink()
        except OSError:
            pass
        shm.close()
        raise


def attach_shared(key: str, timeout: float = 0.25) -> VectorizedKernel | None:
    """Map a published kernel zero-copy; None when absent or not ready.

    Polls briefly (``timeout`` seconds) for the publisher's final
    magic write, so an attacher racing the publisher by microseconds
    still wins instead of falling back to a local rebuild.
    """
    shared_memory = _shared_memory_module()
    if shared_memory is None or np is None:
        return None
    deadline = time.perf_counter() + timeout
    while True:
        try:
            shm = shared_memory.SharedMemory(name=shared_segment_name(key))
            break
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            # A publisher has shm_open'd the name but not yet sized it
            # (mmap of a zero-byte segment raises ValueError): not
            # ready yet, poll like an unwritten magic header.
            if time.perf_counter() >= deadline:
                return None
            time.sleep(0.001)
    _untrack(shm)
    while True:
        if len(shm.buf) >= _HEADER.size:
            magic, manifest_len = _HEADER.unpack_from(shm.buf, 0)
            if magic == _MAGIC:
                break
        if time.perf_counter() >= deadline:
            shm.close()
            return None
        time.sleep(0.001)
    try:
        manifest = json.loads(
            bytes(shm.buf[_HEADER.size : _HEADER.size + manifest_len])
        )
    except ValueError:
        shm.close()
        return None
    if (
        manifest.get("version") != SHARED_FORMAT_VERSION
        or manifest.get("key") != key
    ):
        shm.close()
        return None
    planes: dict[str, "np.ndarray"] = {}
    for entry in manifest["planes"]:
        array = np.ndarray(
            tuple(entry["shape"]),
            dtype=np.dtype(entry["dtype"]),
            buffer=shm.buf,
            offset=entry["offset"],
        )
        array.flags.writeable = False
        planes[entry["name"]] = array
    if set(planes) != set(_PLANE_NAMES):
        shm.close()
        return None
    return VectorizedKernel(planes, shm=shm)


def unlink_shared(key: str) -> bool:
    """Remove a published segment (best-effort); True when it existed."""
    shared_memory = _shared_memory_module()
    if shared_memory is None:
        return False
    try:
        shm = shared_memory.SharedMemory(name=shared_segment_name(key))
    except (FileNotFoundError, OSError):
        return False
    try:
        # No _untrack here: unlink() unregisters from the resource
        # tracker itself, balancing the register this open performed.
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - racing unlink
        return False
    finally:
        shm.close()
    return True


def ensure_shared_kernel(kernel: CompiledNetwork, key: str) -> str:
    """Give the kernel vectorized planes, shared across processes.

    Resolution order, returning how the planes were obtained:

    * ``"cached"``: the kernel already carries planes (e.g. inherited
      across a ``fork``) -- nothing to do;
    * ``"attached"``: another process published them; mapped zero-copy;
    * ``"published"``: built here and exported for siblings to attach;
    * ``"local"``: built here, sharing unavailable (no shm, race loss
      with an unreadable segment, numpy-free host).
    """
    if getattr(kernel, "_vector_cache", None) is not None:
        return "cached"
    attached = attach_shared(key, timeout=0.0)
    if attached is not None:
        install_vectorized(kernel, attached)
        return "attached"
    vectorized = as_vectorized(kernel)
    if export_shared(vectorized, key) is not None:
        return "published"
    # Creation raced: someone else is publishing right now; prefer
    # their copy (frees ours) but keep the local build on any failure.
    attached = attach_shared(key)
    if attached is not None:
        install_vectorized(kernel, attached)
        return "attached"
    # The segment exists but its magic never appeared within the
    # attach timeout: its publisher died mid-write (e.g. OOM-killed).
    # Reclaim the name so the fingerprint isn't wedged into local
    # rebuilds (plus a poll stall) for the rest of the deployment.
    if unlink_shared(key):
        from repro.obs import metrics as obs_metrics

        obs_metrics.counter(
            "repro_shared_kernel_events_total",
            labels={"event": "reclaimed"},
            help="Vectorized-kernel acquisition events by kind.",
        )
        if export_shared(vectorized, key) is not None:
            return "published"
    return "local"

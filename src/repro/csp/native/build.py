"""Compile-on-first-use machinery for the native kernel.

``kernel.c`` is shipped next to this module as source; the first
process that wants the native engine compiles it with the host C
compiler (``$CC``, else ``cc``/``gcc``/``clang`` from ``PATH``) into a
shared object cached under a build directory keyed by the source hash,
and every later process -- including a resident daemon's whole worker
pool -- just ``dlopen``\\ s the cached ``.so``.

The cache directory defaults to ``_build/`` next to the source (kept
inside the package so a repo checkout stays self-contained) and falls
back to ``$XDG_CACHE_HOME/repro-native`` when the package directory is
read-only; ``REPRO_NATIVE_CACHE_DIR`` overrides both.  The hash-keyed
filename makes staleness structural: editing ``kernel.c`` changes the
key, so an old ``.so`` is never loaded by mistake, and a corrupt or
ABI-incompatible cached file is deleted and recompiled once instead of
crashing the process.

Nothing here imports numpy -- the native tier works on numpy-free
hosts (ctypes passes plain ``array`` buffers).
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import tempfile
import time
from pathlib import Path

logger = logging.getLogger(__name__)

#: Bumped when the C entry-point signatures change; the loader checks
#: the compiled library's ``repro_abi_version`` and recompiles on
#: mismatch (e.g. a stale cache dir pinned via REPRO_NATIVE_CACHE_DIR).
ABI_VERSION = 1

#: Environment override for the compiled-kernel cache directory.
CACHE_DIR_ENV = "REPRO_NATIVE_CACHE_DIR"

#: Compiler override (falls back to cc/gcc/clang on PATH).
CC_ENV = "CC"

SOURCE_PATH = Path(__file__).with_name("kernel.c")

_FLAGS = ("-O2", "-fPIC", "-shared", "-fvisibility=hidden")

#: Loaded-library cache and build telemetry for this process.
_LIB: ctypes.CDLL | None = None
_LOAD_FAILED: Exception | None = None
_STATS = {"cache_hits": 0, "cache_misses": 0, "compile_seconds": 0.0}


def reset_cache() -> None:
    """Forget the loaded library and outcome (test hook)."""
    global _LIB, _LOAD_FAILED
    _LIB = None
    _LOAD_FAILED = None


def build_stats() -> dict:
    """Process-local compile-cache telemetry (hits, misses, seconds)."""
    return dict(_STATS)


def cache_dir() -> Path:
    """Where compiled kernels live (see module docstring for the order)."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return Path(override)
    package_build = SOURCE_PATH.parent / "_build"
    if os.access(SOURCE_PATH.parent, os.W_OK):
        return package_build
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def find_compiler() -> str | None:
    """The C compiler to use, or None when the host has none."""
    cc = os.environ.get(CC_ENV, "").strip()
    if cc:
        resolved = shutil.which(cc)
        return resolved
    for candidate in ("cc", "gcc", "clang"):
        resolved = shutil.which(candidate)
        if resolved:
            return resolved
    return None


def compiler_available() -> bool:
    """True when a C compiler is on PATH (or $CC resolves)."""
    return find_compiler() is not None


def _source_digest() -> str:
    payload = SOURCE_PATH.read_bytes() + f"|abi={ABI_VERSION}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def library_path() -> Path:
    """The cache path the current source compiles to."""
    return cache_dir() / f"repro_kernel-{_source_digest()}.so"


def _compile(target: Path) -> None:
    cc = find_compiler()
    if cc is None:
        raise RuntimeError(
            "no C compiler found (set $CC or install cc/gcc/clang) and no "
            f"cached native kernel at {target}"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    started = time.perf_counter()
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.stem, suffix=".so.tmp"
    )
    os.close(fd)
    try:
        subprocess.run(
            [cc, *_FLAGS, "-o", tmp_name, str(SOURCE_PATH)],
            check=True,
            capture_output=True,
            text=True,
        )
        # Atomic: racing compilers (daemon worker warm-up) each build a
        # private temp file and the last replace wins with identical
        # bytes semantics -- every loader sees a complete file.
        os.replace(tmp_name, target)
    except subprocess.CalledProcessError as exc:
        raise RuntimeError(
            f"native kernel compilation failed with {cc}: {exc.stderr}"
        ) from exc
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
    elapsed = time.perf_counter() - started
    _STATS["compile_seconds"] += elapsed
    logger.info("compiled native kernel to %s in %.2fs", target, elapsed)
    from repro.obs import metrics as obs_metrics

    obs_metrics.observe(
        "repro_native_compile_seconds",
        elapsed,
        help="Wall-clock seconds spent compiling the native kernel.",
    )


def _try_load(target: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(target))
    version_fn = getattr(lib, "repro_abi_version", None)
    if version_fn is None:
        raise OSError(f"{target} exports no repro_abi_version")
    version_fn.restype = ctypes.c_int64
    version = version_fn()
    if version != ABI_VERSION:
        raise OSError(f"{target} has ABI {version}, expected {ABI_VERSION}")
    return lib


def load_library() -> ctypes.CDLL:
    """The compiled kernel for this process, building it if needed.

    A cached ``.so`` that fails to load or reports the wrong ABI is
    deleted and recompiled once (covers truncated writes, copied-in
    garbage, or an incompatible stale build in a pinned cache dir).

    Raises:
        RuntimeError: when no compiler is available and nothing loads.
    """
    global _LIB, _LOAD_FAILED
    if _LIB is not None:
        return _LIB
    if _LOAD_FAILED is not None:
        raise RuntimeError(str(_LOAD_FAILED)) from _LOAD_FAILED
    try:
        _LIB = _load_uncached()
    except Exception as exc:
        _LOAD_FAILED = exc
        raise RuntimeError(str(exc)) from exc
    return _LIB


def _load_uncached() -> ctypes.CDLL:
    from repro.obs import metrics as obs_metrics

    target = library_path()
    if target.exists():
        try:
            lib = _try_load(target)
        except OSError as exc:
            logger.warning(
                "cached native kernel %s unusable (%s); recompiling",
                target,
                exc,
            )
            try:
                target.unlink()
            except OSError:
                pass
        else:
            _STATS["cache_hits"] += 1
            obs_metrics.counter(
                "repro_native_cache_total",
                labels={"event": "hit"},
                help="Native-kernel compile cache lookups by outcome.",
            )
            return lib
    _STATS["cache_misses"] += 1
    obs_metrics.counter(
        "repro_native_cache_total",
        labels={"event": "miss"},
        help="Native-kernel compile cache lookups by outcome.",
    )
    _compile(target)
    return _try_load(target)


def usable() -> bool:
    """True when the native engine can run in this process.

    The first call may compile (one-time, cached on disk); the outcome
    -- loaded library or the failure -- is memoized, so engine
    resolution after the first call is one attribute check.
    """
    try:
        load_library()
    except RuntimeError:
        return False
    return True

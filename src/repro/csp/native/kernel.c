/* The native propagation kernel: the solver inner loops in C.
 *
 * One self-contained translation unit, compiled on first use by
 * build.py with the host C compiler and loaded through ctypes.  Every
 * entry point operates on flat arrays owned by the Python side (see
 * ops.py for the layout contract):
 *
 *   - domains are multiword little-endian bitmasks, NW 64-bit words
 *     per row (NW covers the widest domain in the network);
 *   - the directed-arc tables are CSR-style: arc_base[v]..arc_base[v+1]
 *     are variable v's outgoing arcs, arc_dst the neighbor indices,
 *     sup_off the word offset of each arc's support block (dom[src]
 *     rows of NW words) inside the shared sup plane;
 *   - effort counters are reported through small int64 out-arrays.
 *
 * Parity is the contract: each routine replicates its Python/bitset
 * reference loop *exactly* -- same iteration order, same counter
 * accounting, same RNG stream (a byte-exact reimplementation of
 * CPython's MT19937 seeding and _randbelow rejection sampling) -- so
 * solutions, effort counters and random walks are indistinguishable
 * from the bitset and numpy engines.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define REPRO_ABI 1

#if defined(_WIN32)
#define REPRO_EXPORT __declspec(dllexport)
#else
#define REPRO_EXPORT __attribute__((visibility("default")))
#endif

REPRO_EXPORT int64_t repro_abi_version(void) { return REPRO_ABI; }

/* Same clock as Python's time.monotonic() on POSIX, so absolute
 * deadlines computed in Python compare directly. */
static double mono_now(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

static int64_t popcount_words(const uint64_t *words, int64_t nwords) {
    int64_t total = 0;
    for (int64_t w = 0; w < nwords; w++)
        total += __builtin_popcountll(words[w]);
    return total;
}

static int bit_test(const uint64_t *words, int64_t bit) {
    return (int)((words[bit >> 6] >> (bit & 63)) & 1u);
}

/* -- MT19937, byte-compatible with CPython's random.Random ------------- */

typedef struct {
    uint32_t mt[624];
    int mti;
} mt_state;

static void mt_init_genrand(mt_state *s, uint32_t seed) {
    s->mt[0] = seed;
    for (s->mti = 1; s->mti < 624; s->mti++)
        s->mt[s->mti] =
            1812433253u * (s->mt[s->mti - 1] ^ (s->mt[s->mti - 1] >> 30)) +
            (uint32_t)s->mti;
}

/* random.Random(seed) for a non-negative int seed is init_by_array
 * over the seed's 32-bit little-endian limbs. */
static void mt_init_by_array(mt_state *s, const uint32_t *key,
                             size_t key_length) {
    size_t i = 1, j = 0;
    size_t k = 624 > key_length ? 624 : key_length;
    mt_init_genrand(s, 19650218u);
    for (; k; k--) {
        s->mt[i] =
            (s->mt[i] ^ ((s->mt[i - 1] ^ (s->mt[i - 1] >> 30)) * 1664525u)) +
            key[j] + (uint32_t)j;
        i++;
        j++;
        if (i >= 624) {
            s->mt[0] = s->mt[623];
            i = 1;
        }
        if (j >= key_length)
            j = 0;
    }
    for (k = 623; k; k--) {
        s->mt[i] =
            (s->mt[i] ^
             ((s->mt[i - 1] ^ (s->mt[i - 1] >> 30)) * 1566083941u)) -
            (uint32_t)i;
        i++;
        if (i >= 624) {
            s->mt[0] = s->mt[623];
            i = 1;
        }
    }
    s->mt[0] = 0x80000000u;
}

static uint32_t mt_next(mt_state *s) {
    static const uint32_t mag01[2] = {0u, 0x9908b0dfu};
    uint32_t y;
    if (s->mti >= 624) {
        int kk;
        for (kk = 0; kk < 624 - 397; kk++) {
            y = (s->mt[kk] & 0x80000000u) | (s->mt[kk + 1] & 0x7fffffffu);
            s->mt[kk] = s->mt[kk + 397] ^ (y >> 1) ^ mag01[y & 1u];
        }
        for (; kk < 623; kk++) {
            y = (s->mt[kk] & 0x80000000u) | (s->mt[kk + 1] & 0x7fffffffu);
            s->mt[kk] = s->mt[kk + (397 - 624)] ^ (y >> 1) ^ mag01[y & 1u];
        }
        y = (s->mt[623] & 0x80000000u) | (s->mt[0] & 0x7fffffffu);
        s->mt[623] = s->mt[396] ^ (y >> 1) ^ mag01[y & 1u];
        s->mti = 0;
    }
    y = s->mt[s->mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= (y >> 18);
    return y;
}

/* getrandbits(k) for 1 <= k <= 32. */
static uint32_t mt_getrandbits(mt_state *s, int k) {
    return mt_next(s) >> (32 - k);
}

/* Random._randbelow: rejection-sample bit_length(n)-wide draws.  The
 * rejected draws advance the stream exactly as CPython's do. */
static int64_t mt_randbelow(mt_state *s, int64_t n) {
    int k = 0;
    int64_t m = n;
    uint32_t r;
    while (m) {
        k++;
        m >>= 1;
    }
    r = mt_getrandbits(s, k);
    while ((int64_t)r >= n)
        r = mt_getrandbits(s, k);
    return (int64_t)r;
}

/* -- AC-3 -------------------------------------------------------------- */

/* Whole-run AC-3 with the reference queue discipline: seed both
 * orientations of every pair in authoring order, dedup scheduled arcs
 * with a pending flag, requeue (neighbor, target) arcs after a prune
 * skipping the revision's source.  Returns 1 when consistent, 0 on a
 * domain wipe-out (masks then hold the partial state, as the bitset
 * engine's early return does).  out = {revisions, removed}. */
REPRO_EXPORT int32_t repro_ac3(
    int64_t vcount, int64_t nwords, const int64_t *dom,
    const int64_t *arc_base, const int64_t *arc_src, const int64_t *arc_dst,
    const int64_t *arc_rev, const int64_t *sup_off, const uint64_t *sup,
    const int64_t *seed_arcs, int64_t seed_count, uint64_t *masks,
    int64_t *out) {
    int64_t acount = vcount ? arc_base[vcount] : 0;
    int64_t qcap = acount + 1;
    int64_t *queue = (int64_t *)malloc((size_t)qcap * sizeof(int64_t));
    uint8_t *in_queue = (uint8_t *)calloc((size_t)(acount ? acount : 1), 1);
    int64_t head = 0, tail = 0;
    int64_t revisions = 0, removed = 0;
    int32_t consistent = 1;
    (void)dom;

    if (!queue || !in_queue) {
        free(queue);
        free(in_queue);
        out[0] = 0;
        out[1] = 0;
        return -1;
    }
    for (int64_t s = 0; s < seed_count; s++) {
        int64_t a = seed_arcs[s];
        if (!in_queue[a]) {
            in_queue[a] = 1;
            queue[tail] = a;
            tail = (tail + 1) % qcap;
        }
    }
    while (head != tail) {
        int64_t a = queue[head];
        head = (head + 1) % qcap;
        in_queue[a] = 0;
        {
            int64_t target = arc_src[a];
            int64_t source = arc_dst[a];
            const uint64_t *smask = masks + source * nwords;
            uint64_t *tmask = masks + target * nwords;
            const uint64_t *block = sup + sup_off[a];
            int pruned = 0;
            revisions++;
            for (int64_t w = 0; w < nwords; w++) {
                uint64_t bits = tmask[w];
                while (bits) {
                    int b = __builtin_ctzll(bits);
                    int64_t value = w * 64 + b;
                    const uint64_t *row = block + value * nwords;
                    uint64_t any = 0;
                    bits &= bits - 1;
                    for (int64_t u = 0; u < nwords; u++)
                        any |= row[u] & smask[u];
                    if (!any) {
                        tmask[w] &= ~(1ull << b);
                        removed++;
                        pruned = 1;
                    }
                }
            }
            if (pruned) {
                uint64_t left = 0;
                for (int64_t w = 0; w < nwords; w++)
                    left |= tmask[w];
                if (!left) {
                    consistent = 0;
                    break;
                }
                for (int64_t b2 = arc_base[target]; b2 < arc_base[target + 1];
                     b2++) {
                    int64_t r;
                    if (arc_dst[b2] == source)
                        continue;
                    r = arc_rev[b2]; /* the (neighbor, target) arc */
                    if (!in_queue[r]) {
                        in_queue[r] = 1;
                        queue[tail] = r;
                        tail = (tail + 1) % qcap;
                    }
                }
            }
        }
    }
    free(queue);
    free(in_queue);
    out[0] = revisions;
    out[1] = removed;
    return consistent;
}

/* -- forward checking -------------------------------------------------- */

typedef struct {
    int64_t vcount;
    int64_t nwords;
    const int64_t *dom;
    const int64_t *degrees;
    const int64_t *rank;
    const int64_t *arc_base;
    const int64_t *arc_dst;
    const int64_t *sup_off;
    const uint64_t *sup;
    uint64_t *masks;
    int64_t *values;
    int64_t max_nodes; /* < 0: unbounded */
    double deadline;   /* < 0: none */
    int64_t nodes, backtracks, checks;
    int cutoff;
    /* undo stack: (neighbor, previous mask words) entries */
    int64_t *undo_nb;
    uint64_t *undo_words;
    int64_t undo_top;
    /* per-depth snapshot of the branching variable's remaining values */
    uint64_t *rem;
} fc_ctx;

static void fc_rollback(fc_ctx *c, int64_t mark) {
    int64_t nw = c->nwords;
    while (c->undo_top > mark) {
        int64_t nb;
        c->undo_top--;
        nb = c->undo_nb[c->undo_top];
        memcpy(c->masks + nb * nw, c->undo_words + c->undo_top * nw,
               (size_t)nw * sizeof(uint64_t));
    }
}

static int fc_search(fc_ctx *c, int64_t assigned) {
    int64_t nw = c->nwords;
    int64_t variable = -1, best_pop = 0, best_deg = 0, best_rank = 0;
    uint64_t *rem;
    if (assigned == c->vcount)
        return 1;
    /* MRV: min (popcount, -degree, rank), first strict minimum wins
     * (the rank digit is unique, so ties cannot occur). */
    for (int64_t v = 0; v < c->vcount; v++) {
        int64_t p, d, r;
        if (c->values[v] >= 0)
            continue;
        p = popcount_words(c->masks + v * nw, nw);
        d = c->degrees[v];
        r = c->rank[v];
        if (variable < 0 || p < best_pop ||
            (p == best_pop &&
             (d > best_deg || (d == best_deg && r < best_rank)))) {
            variable = v;
            best_pop = p;
            best_deg = d;
            best_rank = r;
        }
    }
    rem = c->rem + assigned * nw;
    memcpy(rem, c->masks + variable * nw, (size_t)nw * sizeof(uint64_t));
    for (int64_t w = 0; w < nw; w++) {
        uint64_t bits = rem[w];
        while (bits) {
            int b = __builtin_ctzll(bits);
            int64_t value = w * 64 + b;
            int64_t mark;
            int ok = 1;
            bits &= bits - 1;
            c->nodes++;
            if (c->max_nodes >= 0 && c->nodes > c->max_nodes) {
                c->cutoff = 1;
                return 0;
            }
            if (c->deadline >= 0 && (c->nodes & 255) == 0 &&
                mono_now() >= c->deadline) {
                c->cutoff = 1;
                return 0;
            }
            /* forward prune: neighbors in ascending (arc) order */
            mark = c->undo_top;
            for (int64_t a = c->arc_base[variable];
                 a < c->arc_base[variable + 1]; a++) {
                int64_t nb = c->arc_dst[a];
                const uint64_t *row = c->sup + c->sup_off[a] + value * nw;
                if (c->values[nb] >= 0) {
                    c->checks += 1;
                    if (!bit_test(row, c->values[nb])) {
                        ok = 0;
                        break;
                    }
                    continue;
                }
                {
                    uint64_t *nmask = c->masks + nb * nw;
                    uint64_t any = 0;
                    int changed = 0;
                    c->checks += popcount_words(nmask, nw);
                    for (int64_t u = 0; u < nw; u++) {
                        uint64_t after = nmask[u] & row[u];
                        if (after != nmask[u])
                            changed = 1;
                        any |= after;
                    }
                    if (changed) {
                        memcpy(c->undo_words + c->undo_top * nw, nmask,
                               (size_t)nw * sizeof(uint64_t));
                        c->undo_nb[c->undo_top] = nb;
                        c->undo_top++;
                        for (int64_t u = 0; u < nw; u++)
                            nmask[u] &= row[u];
                        if (!any) {
                            ok = 0;
                            break;
                        }
                    }
                }
            }
            if (!ok) {
                fc_rollback(c, mark);
                continue;
            }
            c->values[variable] = value;
            if (fc_search(c, assigned + 1))
                return 1;
            if (c->cutoff)
                return 0; /* unwind dirty, like the Python exception */
            c->values[variable] = -1;
            fc_rollback(c, mark);
        }
    }
    c->backtracks++;
    return 0;
}

/* Whole forward-checking search from a (values, masks) snapshot.
 * Returns 1 solution-found (values filled in), 0 exhausted, 2 cutoff
 * (node budget or deadline).  out = {nodes, backtracks, checks}. */
REPRO_EXPORT int32_t repro_fc_search(
    int64_t vcount, int64_t nwords, const int64_t *dom,
    const int64_t *degrees, const int64_t *rank, const int64_t *arc_base,
    const int64_t *arc_dst, const int64_t *sup_off, const uint64_t *sup,
    uint64_t *masks, int64_t *values, int64_t assigned, int64_t max_nodes,
    double deadline, int64_t *out) {
    fc_ctx c;
    int64_t max_degree = 0;
    int64_t undo_cap;
    int found;
    (void)dom;
    for (int64_t v = 0; v < vcount; v++)
        if (degrees[v] > max_degree)
            max_degree = degrees[v];
    undo_cap = vcount * max_degree + 1;
    memset(&c, 0, sizeof(c));
    c.vcount = vcount;
    c.nwords = nwords;
    c.dom = dom;
    c.degrees = degrees;
    c.rank = rank;
    c.arc_base = arc_base;
    c.arc_dst = arc_dst;
    c.sup_off = sup_off;
    c.sup = sup;
    c.masks = masks;
    c.values = values;
    c.max_nodes = max_nodes;
    c.deadline = deadline;
    c.undo_nb = (int64_t *)malloc((size_t)undo_cap * sizeof(int64_t));
    c.undo_words =
        (uint64_t *)malloc((size_t)(undo_cap * nwords) * sizeof(uint64_t));
    c.rem =
        (uint64_t *)malloc((size_t)((vcount + 1) * nwords) * sizeof(uint64_t));
    if (!c.undo_nb || !c.undo_words || !c.rem) {
        free(c.undo_nb);
        free(c.undo_words);
        free(c.rem);
        out[0] = out[1] = out[2] = 0;
        return -1;
    }
    found = fc_search(&c, assigned);
    free(c.undo_nb);
    free(c.undo_words);
    free(c.rem);
    out[0] = c.nodes;
    out[1] = c.backtracks;
    out[2] = c.checks;
    if (c.cutoff)
        return 2;
    return found ? 1 : 0;
}

/* -- min-conflicts ----------------------------------------------------- */

typedef struct {
    int64_t vcount;
    int64_t nwords;
    const int64_t *dom;
    const int64_t *arc_base;
    const int64_t *arc_dst;
    const int64_t *sup_off;
    const uint64_t *sup;
    int64_t *values;
    int64_t checks;
} mc_ctx;

static int64_t mc_conflict_count(mc_ctx *c, int64_t variable, int64_t value) {
    int64_t count = 0;
    for (int64_t a = c->arc_base[variable]; a < c->arc_base[variable + 1];
         a++) {
        int64_t nb = c->arc_dst[a];
        const uint64_t *row = c->sup + c->sup_off[a] + value * c->nwords;
        c->checks++;
        if (!bit_test(row, c->values[nb]))
            count++;
    }
    return count;
}

/* One _improve pass: 1 solution, 0 steps exhausted, -1 deadline. */
static int mc_improve(mc_ctx *c, mt_state *rng, int64_t max_steps,
                      double deadline, int64_t *conflicted, int64_t *scores,
                      int64_t *cands, int64_t *nodes) {
    for (int64_t step = 0; step < max_steps; step++) {
        int64_t nconf = 0, variable, d, best, ncand;
        if (deadline >= 0 && mono_now() >= deadline)
            return -1;
        for (int64_t v = 0; v < c->vcount; v++)
            if (mc_conflict_count(c, v, c->values[v]))
                conflicted[nconf++] = v;
        if (!nconf)
            return 1;
        variable = conflicted[mt_randbelow(rng, nconf)];
        d = c->dom[variable];
        best = INT64_MAX;
        for (int64_t value = 0; value < d; value++) {
            scores[value] = mc_conflict_count(c, variable, value);
            if (scores[value] < best)
                best = scores[value];
        }
        ncand = 0;
        for (int64_t value = 0; value < d; value++)
            if (scores[value] == best)
                cands[ncand++] = value;
        c->values[variable] = cands[mt_randbelow(rng, ncand)];
        (*nodes)++;
    }
    return 0;
}

/* The full min-conflicts walk of MinConflictsSolver._solve_resolved:
 * restart loop, random total assignments, improve steps -- with the
 * identical RNG stream and counter accounting.  Returns 1 solved
 * (values holds the assignment), 0 gave up.  out = {nodes, checks,
 * restarts}. */
REPRO_EXPORT int32_t repro_mc_solve(
    int64_t vcount, int64_t nwords, const int64_t *dom,
    const int64_t *arc_base, const int64_t *arc_dst, const int64_t *sup_off,
    const uint64_t *sup, const uint32_t *seed_key, int64_t key_len,
    int64_t max_steps, int64_t max_restarts, double deadline, int64_t *values,
    int64_t *out) {
    mc_ctx c;
    mt_state rng;
    int64_t max_domain = 0;
    int64_t *conflicted, *scores, *cands;
    int64_t nodes = 0, restarts = 0;
    int solved = 0;

    memset(&c, 0, sizeof(c));
    c.vcount = vcount;
    c.nwords = nwords;
    c.dom = dom;
    c.arc_base = arc_base;
    c.arc_dst = arc_dst;
    c.sup_off = sup_off;
    c.sup = sup;
    c.values = values;
    for (int64_t v = 0; v < vcount; v++)
        if (dom[v] > max_domain)
            max_domain = dom[v];
    conflicted = (int64_t *)malloc((size_t)(vcount + 1) * sizeof(int64_t));
    scores = (int64_t *)malloc((size_t)(max_domain + 1) * sizeof(int64_t));
    cands = (int64_t *)malloc((size_t)(max_domain + 1) * sizeof(int64_t));
    if (!conflicted || !scores || !cands) {
        free(conflicted);
        free(scores);
        free(cands);
        out[0] = out[1] = out[2] = 0;
        return -1;
    }
    mt_init_by_array(&rng, seed_key, (size_t)key_len);
    for (int64_t r = 0; r < max_restarts; r++) {
        int outcome;
        if (deadline >= 0 && mono_now() >= deadline)
            break;
        for (int64_t v = 0; v < vcount; v++)
            values[v] = mt_randbelow(&rng, dom[v]);
        outcome = mc_improve(&c, &rng, max_steps, deadline, conflicted,
                             scores, cands, &nodes);
        if (outcome == 1) {
            solved = 1;
            break;
        }
        /* an aborted walk is not an exhausted restart */
        if (outcome == -1 ||
            (deadline >= 0 && mono_now() >= deadline))
            break;
        restarts++;
    }
    free(conflicted);
    free(scores);
    free(cands);
    out[0] = nodes;
    out[1] = c.checks;
    out[2] = restarts;
    return solved;
}

/* -- enhanced-scheme ordering helpers ---------------------------------- */

/* Most-constraining variable: the adjacency matvec as a CSR walk.
 * key = (vcount - future_degree) * scale + static_key, first minimum
 * over unassigned variables -- exactly MaskedLexArgmin's encoding. */
REPRO_EXPORT int64_t repro_mcv_select(
    int64_t vcount, const int64_t *arc_base, const int64_t *arc_dst,
    const int64_t *unassigned, const int64_t *static_key, int64_t scale) {
    int64_t best = -1, best_k = 0;
    for (int64_t v = 0; v < vcount; v++) {
        int64_t fd = 0, key;
        if (!unassigned[v])
            continue;
        for (int64_t a = arc_base[v]; a < arc_base[v + 1]; a++)
            fd += unassigned[arc_dst[a]];
        key = (vcount - fd) * scale + static_key[v];
        if (best < 0 || key < best_k) {
            best = v;
            best_k = key;
        }
    }
    return best;
}

/* Least-constraining value: sum static support popcounts over live
 * neighbors, order values by descending total with index-ascending
 * ties (numpy's stable argsort of -totals).  Returns the checks
 * charge: dom[variable] * sum of live neighbors' domain sizes. */
REPRO_EXPORT int64_t repro_lcv_order(
    int64_t variable, int64_t max_domain, const int64_t *dom,
    const int64_t *arc_base, const int64_t *arc_dst, const int64_t *lcv,
    const int64_t *unassigned, int64_t *order_out) {
    int64_t d = dom[variable];
    int64_t live_dom_sum = 0;
    int64_t *totals = (int64_t *)malloc((size_t)(d + 1) * sizeof(int64_t));
    if (!totals)
        return -1;
    memset(totals, 0, (size_t)d * sizeof(int64_t));
    for (int64_t a = arc_base[variable]; a < arc_base[variable + 1]; a++) {
        const int64_t *row;
        if (!unassigned[arc_dst[a]])
            continue;
        live_dom_sum += dom[arc_dst[a]];
        row = lcv + a * max_domain;
        for (int64_t value = 0; value < d; value++)
            totals[value] += row[value];
    }
    /* stable insertion sort on (-total, index) */
    for (int64_t i = 0; i < d; i++) {
        int64_t j = i;
        while (j > 0 && totals[order_out[j - 1]] < totals[i])
            j--;
        memmove(order_out + j + 1, order_out + j,
                (size_t)(i - j) * sizeof(int64_t));
        order_out[j] = i;
    }
    free(totals);
    return d * live_dom_sum;
}

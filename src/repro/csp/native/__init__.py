"""The native C propagation kernel tier (``engine="native"``).

Thin Python orchestration over one self-contained C file
(``kernel.c``) holding the solver inner loops: whole-run AC-3, the
complete forward-checking search, the complete min-conflicts walk
(with a byte-exact MT19937 replication of CPython's ``random.Random``
stream), and the enhanced scheme's variable/value ordering heuristics.
Compiled on first use with the host C compiler into a source-hash
keyed ``.so`` (:mod:`repro.csp.native.build`) and loaded via ctypes --
no new Python dependencies, and no numpy requirement either.

Engine dispatch lives in :func:`repro.csp.vectorized.resolve_engine`;
parity with the bitset and numpy engines -- identical solutions, RNG
streams and machine-independent effort counters -- is pinned by the
three-engine hypothesis suite in
``tests/csp/test_native_equivalence.py``.
"""

from repro.csp.native.build import (
    ABI_VERSION,
    CACHE_DIR_ENV,
    build_stats,
    cache_dir,
    compiler_available,
    library_path,
    load_library,
    reset_cache,
    usable,
)

__all__ = [
    "ABI_VERSION",
    "CACHE_DIR_ENV",
    "build_stats",
    "cache_dir",
    "compiler_available",
    "library_path",
    "load_library",
    "reset_cache",
    "usable",
]

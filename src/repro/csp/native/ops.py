"""Flat-plane construction and ctypes wrappers for the native kernel.

:class:`NativeKernel` lowers a :class:`~repro.csp.compiled.CompiledNetwork`
into the plain C-friendly arrays ``kernel.c`` operates on -- CSR
directed-arc tables and multiword uint64 support rows -- using the
stdlib ``array`` module (no numpy dependency; pointers come from
``array.buffer_info()``).  Like the numpy planes, the lowering is
cached on the compiled kernel (``_native_cache``, excluded from
pickling) so repeated solves on one network pay for it once.

The wrapper functions return plain Python data (masks as ints, values
as lists, counters as ints); the solver modules construct their result
objects, which keeps the import graph acyclic.

Layout contract shared with kernel.c:

* ``nwords = ceil(max_domain / 64)`` words per domain-mask row,
  uniform across the network;
* arc ``a`` (source ``arc_src[a]``, destination ``arc_dst[a]``) keeps
  its support block at word offset ``sup_off[a]``: ``dom[src]`` rows
  of ``nwords`` words, row ``value`` the little-endian bitmask of
  supported destination values (identical bit layout to the compiled
  kernel's int masks);
* ``arc_rev[a]`` is the opposite-orientation arc's id, ``seed_arcs``
  the AC-3 seeding order (both orientations of every authored pair).
"""

from __future__ import annotations

import ctypes
from array import array

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.native import build

#: Deadline sentinel handed to C (negative means "none").
_NO_DEADLINE = -1.0


def _addr(arr: array) -> int:
    return arr.buffer_info()[0]


def _prototype(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Declare argument/return types once per loaded library."""
    if getattr(lib, "_repro_prototyped", False):
        return lib
    i64, f64, p = ctypes.c_int64, ctypes.c_double, ctypes.c_void_p
    lib.repro_ac3.restype = ctypes.c_int32
    lib.repro_ac3.argtypes = [i64, i64, p, p, p, p, p, p, p, p, i64, p, p]
    lib.repro_fc_search.restype = ctypes.c_int32
    lib.repro_fc_search.argtypes = [
        i64, i64, p, p, p, p, p, p, p, p, p, i64, i64, f64, p,
    ]
    lib.repro_mc_solve.restype = ctypes.c_int32
    lib.repro_mc_solve.argtypes = [
        i64, i64, p, p, p, p, p, p, i64, i64, i64, f64, p, p,
    ]
    lib.repro_mcv_select.restype = i64
    lib.repro_mcv_select.argtypes = [i64, p, p, p, p, i64]
    lib.repro_lcv_order.restype = i64
    lib.repro_lcv_order.argtypes = [i64, i64, p, p, p, p, p, p]
    lib._repro_prototyped = True
    return lib


class NativeKernel:
    """The compiled network lowered to flat C-facing planes."""

    def __init__(self, kernel: CompiledNetwork):
        self.lib = _prototype(build.load_library())
        count = kernel.variable_count
        doms = [kernel.domain_size(i) for i in range(count)]
        max_domain = max(doms, default=0)
        self.count = count
        self.max_domain = max_domain
        self.nwords = max(1, (max_domain + 63) // 64)
        self.dom_list = doms
        self.degree_list = [len(kernel.neighbors[i]) for i in range(count)]

        arc_src: list[int] = []
        arc_dst: list[int] = []
        arc_base = [0]
        slot: dict[tuple[int, int], int] = {}
        for i in range(count):
            for j in kernel.neighbors[i]:
                slot[(i, j)] = len(arc_dst) - arc_base[i]
                arc_src.append(i)
                arc_dst.append(j)
            arc_base.append(len(arc_dst))

        def arc_id(target: int, source: int) -> int:
            return arc_base[target] + slot[(target, source)]

        row_bytes = self.nwords * 8
        sup_off: list[int] = []
        sup_raw = bytearray()
        lcv: list[int] = []
        for a in range(len(arc_dst)):
            masks = kernel.supports[(arc_src[a], arc_dst[a])]
            sup_off.append(len(sup_raw) // 8)
            for mask in masks:
                sup_raw += mask.to_bytes(row_bytes, "little")
                lcv.append(mask.bit_count())
            lcv.extend([0] * (max_domain - len(masks)))

        seed_arcs: list[int] = []
        seeded: set[int] = set()
        for first, second in kernel.pairs:
            for target, source in ((first, second), (second, first)):
                a = arc_id(target, source)
                if a not in seeded:
                    seeded.add(a)
                    seed_arcs.append(a)

        self.dom = array("q", doms)
        self.degrees = array("q", self.degree_list)
        self.rank = array("q", kernel.name_rank)
        self.arc_base = array("q", arc_base)
        self.arc_src = array("q", arc_src)
        self.arc_dst = array("q", arc_dst)
        self.arc_rev = array(
            "q", [arc_id(arc_dst[a], arc_src[a]) for a in range(len(arc_dst))]
        )
        self.sup_off = array("q", sup_off)
        self.sup = array("Q")
        self.sup.frombytes(bytes(sup_raw))
        self.lcv = array("q", lcv)
        self.seed_arcs = array("q", seed_arcs)

    # -- mask conversions -------------------------------------------------

    def masks_to_words(self, masks) -> array:
        """Python-int domain masks -> one flat uint64 word array."""
        row_bytes = self.nwords * 8
        raw = bytearray()
        for mask in masks:
            raw += mask.to_bytes(row_bytes, "little")
        words = array("Q")
        words.frombytes(bytes(raw))
        return words

    def words_to_masks(self, words: array) -> list[int]:
        """The inverse: flat word rows -> per-variable int masks."""
        raw = words.tobytes()
        stride = self.nwords * 8
        return [
            int.from_bytes(raw[i * stride : (i + 1) * stride], "little")
            for i in range(self.count)
        ]


def as_native(network) -> NativeKernel:
    """The native planes of a network, cached on its compiled kernel.

    Raises:
        RuntimeError: when the native library cannot be built/loaded.
    """
    kernel = as_compiled(network)
    cached = getattr(kernel, "_native_cache", None)
    if cached is not None:
        return cached
    native = NativeKernel(kernel)
    kernel._native_cache = native
    return native


def _seed_key(seed: int) -> "ctypes.Array":
    """CPython's init_by_array key: abs(seed) as 32-bit LE limbs."""
    n = abs(int(seed))
    if n == 0:
        return (ctypes.c_uint32 * 1)(0)
    words = []
    while n:
        words.append(n & 0xFFFFFFFF)
        n >>= 32
    return (ctypes.c_uint32 * len(words))(*words)


# -- solver entry points --------------------------------------------------


def ac3(kernel: CompiledNetwork):
    """Whole-run native AC-3.

    Returns ``(consistent, masks, revisions, removed)`` with ``masks``
    the per-variable surviving-domain ints (partial on a wipe-out,
    matching the bitset engine's early return).
    """
    nk = as_native(kernel)
    masks = nk.masks_to_words(kernel.full_masks)
    out = array("q", [0, 0])
    status = nk.lib.repro_ac3(
        nk.count,
        nk.nwords,
        _addr(nk.dom),
        _addr(nk.arc_base),
        _addr(nk.arc_src),
        _addr(nk.arc_dst),
        _addr(nk.arc_rev),
        _addr(nk.sup_off),
        _addr(nk.sup),
        _addr(nk.seed_arcs),
        len(nk.seed_arcs),
        _addr(masks),
        _addr(out),
    )
    if status < 0:  # pragma: no cover - allocation failure
        raise MemoryError("native AC-3 could not allocate its queue")
    return bool(status), nk.words_to_masks(masks), out[0], out[1]


#: repro_fc_search outcome codes.
FC_EXHAUSTED = 0
FC_FOUND = 1
FC_CUTOFF = 2


def fc_search(
    kernel: CompiledNetwork,
    values,
    domains,
    assigned: int,
    max_nodes: int | None,
    deadline_at: float | None,
):
    """Whole forward-checking search from a (values, domains) snapshot.

    Returns ``(status, values, nodes, backtracks, checks)`` where
    ``status`` is one of the ``FC_*`` codes and ``values`` holds the
    solution indices when found (None otherwise).
    """
    nk = as_native(kernel)
    vals = array("q", [-1 if v is None else v for v in values])
    masks = nk.masks_to_words(domains)
    out = array("q", [0, 0, 0])
    status = nk.lib.repro_fc_search(
        nk.count,
        nk.nwords,
        _addr(nk.dom),
        _addr(nk.degrees),
        _addr(nk.rank),
        _addr(nk.arc_base),
        _addr(nk.arc_dst),
        _addr(nk.sup_off),
        _addr(nk.sup),
        _addr(masks),
        _addr(vals),
        assigned,
        -1 if max_nodes is None else max_nodes,
        _NO_DEADLINE if deadline_at is None else deadline_at,
        _addr(out),
    )
    if status < 0:  # pragma: no cover - allocation failure
        raise MemoryError("native forward checking could not allocate")
    solution = vals.tolist() if status == FC_FOUND else None
    return status, solution, out[0], out[1], out[2]


def min_conflicts(
    kernel: CompiledNetwork,
    seed: int,
    max_steps: int,
    max_restarts: int,
    deadline_at: float | None,
):
    """The full min-conflicts walk for one seed.

    Returns ``(values, nodes, checks, restarts)``; ``values`` is None
    when the walk gave up.
    """
    nk = as_native(kernel)
    vals = array("q", [0] * nk.count) if nk.count else array("q")
    out = array("q", [0, 0, 0])
    key = _seed_key(seed)
    status = nk.lib.repro_mc_solve(
        nk.count,
        nk.nwords,
        _addr(nk.dom),
        _addr(nk.arc_base),
        _addr(nk.arc_dst),
        _addr(nk.sup_off),
        _addr(nk.sup),
        ctypes.addressof(key),
        len(key),
        max_steps,
        max_restarts,
        _NO_DEADLINE if deadline_at is None else deadline_at,
        _addr(vals),
        _addr(out),
    )
    if status < 0:  # pragma: no cover - allocation failure
        raise MemoryError("native min-conflicts could not allocate")
    solution = vals.tolist() if status == 1 else None
    return solution, out[0], out[1], out[2]


class NativeOrderings:
    """Per-solve native state for the enhanced ordering heuristics.

    The drop-in counterpart of the numpy engine's ``_VecOrderings``:
    the search loop flips ``unassigned[variable]`` and the two
    selection calls run as single C walks over the CSR arc tables with
    the identical MaskedLexArgmin key encoding, so the chosen variable
    and value orders (and the checks accounting) match the bitset and
    numpy engines bit for bit.
    """

    def __init__(self, kernel: CompiledNetwork):
        nk = as_native(kernel)
        self.nk = nk
        count = nk.count
        self.unassigned = array("q", [1] * count) if count else array("q")
        # Reference key: (-future_degree, -total_degree, domain, rank),
        # encoded ascending exactly as _VecOrderings builds its static
        # tail for MaskedLexArgmin.
        static = [
            ((count - nk.degree_list[v]) * (nk.max_domain + 2) + nk.dom_list[v])
            * (count + 1)
            + kernel.name_rank[v]
            for v in range(count)
        ]
        self.static = array("q", static) if count else array("q")
        self.scale = (max(static) + 1) if static else 1

    def select_most_constraining(self) -> int:
        nk = self.nk
        return int(
            nk.lib.repro_mcv_select(
                nk.count,
                _addr(nk.arc_base),
                _addr(nk.arc_dst),
                _addr(self.unassigned),
                _addr(self.static),
                self.scale,
            )
        )

    def order_least_constraining(self, variable: int, stats) -> list[int]:
        nk = self.nk
        domain = nk.dom_list[variable]
        if nk.degree_list[variable] == 0:
            return list(range(domain))
        order = array("q", [0] * domain)
        checks = nk.lib.repro_lcv_order(
            variable,
            nk.max_domain,
            _addr(nk.dom),
            _addr(nk.arc_base),
            _addr(nk.arc_dst),
            _addr(nk.lcv),
            _addr(self.unassigned),
            _addr(order),
        )
        if checks < 0:  # pragma: no cover - allocation failure
            raise MemoryError("native value ordering could not allocate")
        stats.consistency_checks += int(checks)
        return order.tolist()

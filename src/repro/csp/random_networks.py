"""Random binary constraint network generation.

Model-B style generator used by the scaling ablation benchmarks and by
property-based tests: ``n`` variables, uniform domain size ``d``,
constraint density ``p1`` (fraction of variable pairs constrained), and
tightness ``t`` (fraction of value pairs *forbidden* per constraint).
A planted-solution mode guarantees satisfiability so solver comparisons
are not dominated by UNSAT instances.
"""

from __future__ import annotations

import random
from itertools import combinations, product

from repro.csp.network import ConstraintNetwork


def random_network(
    variables: int,
    domain_size: int,
    density: float,
    tightness: float,
    seed: int = 0,
    plant_solution: bool = True,
) -> ConstraintNetwork:
    """Generate a random binary network.

    Args:
        variables: number of variables (named ``x0 .. x{n-1}``).
        domain_size: uniform domain size (values ``0 .. d-1``).
        density: probability that a variable pair gets a constraint.
        tightness: fraction of value pairs forbidden in each constraint.
        seed: RNG seed.
        plant_solution: when True, a hidden random total assignment is
            never forbidden, guaranteeing satisfiability.

    Raises:
        ValueError: for parameters outside their valid ranges.
    """
    if variables < 2:
        raise ValueError("need at least two variables")
    if domain_size < 1:
        raise ValueError("domain size must be positive")
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    if not 0.0 <= tightness < 1.0:
        raise ValueError("tightness must be in [0, 1)")

    rng = random.Random(seed)
    names = [f"x{i}" for i in range(variables)]
    network = ConstraintNetwork()
    for name in names:
        network.add_variable(name, tuple(range(domain_size)))

    planted = {name: rng.randrange(domain_size) for name in names}
    all_pairs = list(product(range(domain_size), repeat=2))
    forbidden_count = int(round(tightness * len(all_pairs)))

    for first, second in combinations(names, 2):
        if rng.random() >= density:
            continue
        candidates = list(all_pairs)
        if plant_solution:
            protected = (planted[first], planted[second])
            candidates.remove(protected)
        rng.shuffle(candidates)
        forbidden = set(candidates[:forbidden_count])
        allowed = [pair for pair in all_pairs if pair not in forbidden]
        network.add_constraint(first, second, allowed)
    return network

"""Forward checking solver (extension beyond the paper).

Forward checking prunes the domains of uninstantiated neighbors after
every assignment, detecting dead ends one level earlier than plain
backtracking.  It is included as one of the "further enhancements ...
to expedite the search" the paper's conclusion points to, and is used
by the ablation benchmarks.

Runs on the compiled kernel: live domains are bitmasks, so pruning a
neighbor against an assignment is a single AND with the support mask
(the checks counter still reports the per-value cost for comparability)
and restoring on backtrack rewrites one int per touched neighbor.
"""

from __future__ import annotations

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch


class ForwardCheckingSolver:
    """Backtracking with forward checking and MRV variable ordering.

    Complete: a ``None`` result proves unsatisfiability.
    """

    name = "forward-checking"

    def __init__(self, seed: int = 0):
        # The seed is accepted for interface symmetry; the solver is
        # fully deterministic (MRV with lexicographic tie-break).
        self._seed = seed

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Find one solution (or prove there is none)."""
        kernel = as_compiled(network)
        stats = SolverStats()
        with Stopwatch(stats):
            domains = list(kernel.full_masks)
            values: list[int | None] = [None] * kernel.variable_count
            solution = self._search(kernel, values, 0, domains, stats)
        return SolverResult(solution, stats, complete=True)

    def _search(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        assigned: int,
        domains: list[int],
        stats: SolverStats,
    ) -> dict | None:
        if assigned == kernel.variable_count:
            return kernel.to_named(values)
        variable = self._select_mrv(kernel, values, domains)
        remaining = domains[variable]
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            value = low.bit_length() - 1
            stats.nodes += 1
            pruned = self._forward_prune(
                kernel, variable, value, values, domains, stats
            )
            if pruned is not None:
                values[variable] = value
                solution = self._search(kernel, values, assigned + 1, domains, stats)
                if solution is not None:
                    return solution
                values[variable] = None
                self._restore(domains, pruned)
            # A None pruning result means some neighbor was wiped out;
            # the next value is tried immediately.
        stats.backtracks += 1
        return None

    def _select_mrv(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        domains: list[int],
    ) -> int:
        neighbors = kernel.neighbors
        rank = kernel.name_rank
        return min(
            (i for i in range(kernel.variable_count) if values[i] is None),
            key=lambda i: (domains[i].bit_count(), -len(neighbors[i]), rank[i]),
        )

    def _forward_prune(
        self,
        kernel: CompiledNetwork,
        variable: int,
        value: int,
        values: list[int | None],
        domains: list[int],
        stats: SolverStats,
    ) -> list[tuple[int, int]] | None:
        """Prune neighbor domains; None (and full rollback) on wipe-out.

        The returned undo log holds ``(neighbor, previous_mask)`` pairs.
        """
        pruned: list[tuple[int, int]] = []
        supports = kernel.supports
        for neighbor in kernel.neighbors[variable]:
            support = supports[(variable, neighbor)][value]
            neighbor_value = values[neighbor]
            if neighbor_value is not None:
                # Already-checked consistency (its domain was pruned to
                # compatible values when it was assigned).
                stats.consistency_checks += 1
                if not (support >> neighbor_value) & 1:
                    self._restore(domains, pruned)
                    return None
                continue
            before = domains[neighbor]
            stats.consistency_checks += before.bit_count()
            after = before & support
            if after != before:
                domains[neighbor] = after
                pruned.append((neighbor, before))
                if not after:
                    self._restore(domains, pruned)
                    return None
        return pruned

    @staticmethod
    def _restore(domains: list[int], pruned: list[tuple[int, int]]) -> None:
        for neighbor, before in reversed(pruned):
            domains[neighbor] = before

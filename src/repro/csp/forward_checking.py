"""Forward checking solver (extension beyond the paper).

Forward checking prunes the domains of uninstantiated neighbors after
every assignment, detecting dead ends one level earlier than plain
backtracking.  It is included as one of the "further enhancements ...
to expedite the search" the paper's conclusion points to, and is used
by the ablation benchmarks.

Runs on the compiled kernel: live domains are bitmasks, so pruning a
neighbor against an assignment is a single AND with the support mask
(the checks counter still reports the per-value cost for comparability)
and restoring on backtrack rewrites one int per touched neighbor.  The
numpy engine (``engine="numpy"``; see :mod:`repro.csp.vectorized`)
additionally keeps the live-domain popcounts in a maintained vector so
the MRV variable selection is one masked argmin instead of a Python
scan over every variable per node -- the search tree, pruning order
and effort counters are identical.
"""

from __future__ import annotations

import time

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch
from repro.csp.vectorized import (
    ENGINE_AUTO,
    ENGINE_NATIVE,
    ENGINE_NUMPY,
    MaskedLexArgmin,
    as_vectorized,
    resolve_engine,
)


class _VecSelection:
    """Maintained numpy state for the vectorized MRV selection.

    ``popcounts`` mirrors ``domains[i].bit_count()`` for every
    variable; the reference key ``(popcount, -degree, rank)``
    (`_select_mrv`) has its tail encoded once into a
    :class:`~repro.csp.vectorized.MaskedLexArgmin`.
    """

    def __init__(self, vectorized):
        import numpy as np

        self.np = np
        count = vectorized.variable_count
        self.popcounts = vectorized.domain_sizes.copy()
        self.assigned = np.zeros(count, dtype=bool)
        self.mrv = MaskedLexArgmin(
            (count - vectorized.degrees) * (count + 1) + vectorized.name_rank
        )

    def select(self) -> int:
        return self.mrv.argmin(self.popcounts, ~self.assigned)


class _SearchCutoff(Exception):
    """Raised inside ``_search`` when a node budget or deadline expires."""


class ForwardCheckingSolver:
    """Backtracking with forward checking and MRV variable ordering.

    Complete: a ``None`` result with ``complete=True`` proves
    unsatisfiability.  A ``max_nodes`` budget or a deadline (see
    :meth:`set_deadline`) cuts the search short with ``complete=False``
    instead -- the split-search seam uses the budget for its ``auto``
    serial attempt, and subtree workers use the deadline.
    """

    name = "forward-checking"

    def __init__(
        self,
        seed: int = 0,
        engine: str = ENGINE_AUTO,
        max_nodes: int | None = None,
    ):
        # The seed is accepted for interface symmetry; the solver is
        # fully deterministic (MRV with lexicographic tie-break).
        self._seed = seed
        self._engine = engine
        self._max_nodes = max_nodes
        self._deadline_seconds: float | None = None
        self._deadline_at: float | None = None

    def set_deadline(self, seconds: float) -> None:
        """Bound the next solve's wall clock (checked every 256 nodes)."""
        self._deadline_seconds = max(0.0, seconds)

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Find one solution (or prove there is none)."""
        kernel = as_compiled(network)
        return self.solve_from(
            kernel,
            [None] * kernel.variable_count,
            list(kernel.full_masks),
            0,
        )

    def solve_from(
        self,
        network: ConstraintNetwork | CompiledNetwork,
        values: list[int | None],
        domains: list[int],
        assigned: int,
        deadline_at: float | None = None,
    ) -> SolverResult:
        """Resume the search from a snapshot (values + domain masks).

        The split-search subtree workers enter here: forward-checking
        state depends only on the decision prefix, so searching from a
        frontier snapshot is byte-identical to the serial search's walk
        of that subtree.  ``deadline_at`` is an absolute
        ``time.monotonic()`` timestamp overriding :meth:`set_deadline`.
        """
        kernel = as_compiled(network)
        resolved = resolve_engine(self._engine, kernel)
        if deadline_at is not None:
            self._deadline_at = deadline_at
        elif self._deadline_seconds is not None:
            self._deadline_at = time.monotonic() + self._deadline_seconds
        else:
            self._deadline_at = None
        if resolved == ENGINE_NATIVE:
            return self._solve_native(kernel, values, domains, assigned)
        vec = None
        if resolved == ENGINE_NUMPY:
            vec = _VecSelection(as_vectorized(kernel))
            for i in range(kernel.variable_count):
                vec.popcounts[i] = domains[i].bit_count()
                vec.assigned[i] = values[i] is not None
        stats = SolverStats()
        complete = True
        with Stopwatch(stats):
            try:
                solution = self._search(kernel, values, assigned, domains, stats, vec)
            except _SearchCutoff:
                solution = None
                complete = False
        return SolverResult(solution, stats, complete=complete)

    def _solve_native(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        domains: list[int],
        assigned: int,
    ) -> SolverResult:
        """The whole search -- MRV, pruning, undo -- as one C call.

        Byte-identical to the Python search: same tree walk, same
        effort counters, same cutoff semantics (a budget or deadline
        expiry reports ``complete=False`` with no assignment).
        """
        from repro.csp.native import ops as native_ops

        stats = SolverStats()
        with Stopwatch(stats):
            status, solution, nodes, backtracks, checks = native_ops.fc_search(
                kernel,
                values,
                domains,
                assigned,
                self._max_nodes,
                self._deadline_at,
            )
        stats.nodes = nodes
        stats.backtracks = backtracks
        stats.consistency_checks = checks
        assignment = (
            kernel.to_named(solution) if status == native_ops.FC_FOUND else None
        )
        return SolverResult(
            assignment, stats, complete=status != native_ops.FC_CUTOFF
        )

    def _search(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        assigned: int,
        domains: list[int],
        stats: SolverStats,
        vec: _VecSelection | None,
    ) -> dict | None:
        if assigned == kernel.variable_count:
            return kernel.to_named(values)
        if vec is not None:
            variable = vec.select()
        else:
            variable = self._select_mrv(kernel, values, domains)
        remaining = domains[variable]
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            value = low.bit_length() - 1
            stats.nodes += 1
            if self._max_nodes is not None and stats.nodes > self._max_nodes:
                raise _SearchCutoff()
            if (
                self._deadline_at is not None
                and (stats.nodes & 255) == 0
                and time.monotonic() >= self._deadline_at
            ):
                raise _SearchCutoff()
            pruned = self._forward_prune(
                kernel, variable, value, values, domains, stats, vec
            )
            if pruned is not None:
                values[variable] = value
                if vec is not None:
                    vec.assigned[variable] = True
                solution = self._search(
                    kernel, values, assigned + 1, domains, stats, vec
                )
                if solution is not None:
                    return solution
                values[variable] = None
                if vec is not None:
                    vec.assigned[variable] = False
                self._restore(domains, pruned, vec)
            # A None pruning result means some neighbor was wiped out;
            # the next value is tried immediately.
        stats.backtracks += 1
        return None

    def _select_mrv(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        domains: list[int],
    ) -> int:
        neighbors = kernel.neighbors
        rank = kernel.name_rank
        return min(
            (i for i in range(kernel.variable_count) if values[i] is None),
            key=lambda i: (domains[i].bit_count(), -len(neighbors[i]), rank[i]),
        )

    def _forward_prune(
        self,
        kernel: CompiledNetwork,
        variable: int,
        value: int,
        values: list[int | None],
        domains: list[int],
        stats: SolverStats,
        vec: _VecSelection | None,
    ) -> list[tuple[int, int]] | None:
        """Prune neighbor domains; None (and full rollback) on wipe-out.

        The returned undo log holds ``(neighbor, previous_mask)`` pairs.
        """
        pruned: list[tuple[int, int]] = []
        supports = kernel.supports
        for neighbor in kernel.neighbors[variable]:
            support = supports[(variable, neighbor)][value]
            neighbor_value = values[neighbor]
            if neighbor_value is not None:
                # Already-checked consistency (its domain was pruned to
                # compatible values when it was assigned).
                stats.consistency_checks += 1
                if not (support >> neighbor_value) & 1:
                    self._restore(domains, pruned, vec)
                    return None
                continue
            before = domains[neighbor]
            stats.consistency_checks += before.bit_count()
            after = before & support
            if after != before:
                domains[neighbor] = after
                if vec is not None:
                    vec.popcounts[neighbor] = after.bit_count()
                pruned.append((neighbor, before))
                if not after:
                    self._restore(domains, pruned, vec)
                    return None
        return pruned

    @staticmethod
    def _restore(
        domains: list[int],
        pruned: list[tuple[int, int]],
        vec: _VecSelection | None = None,
    ) -> None:
        for neighbor, before in reversed(pruned):
            domains[neighbor] = before
            if vec is not None:
                vec.popcounts[neighbor] = before.bit_count()

"""Forward checking solver (extension beyond the paper).

Forward checking prunes the domains of uninstantiated neighbors after
every assignment, detecting dead ends one level earlier than plain
backtracking.  It is included as one of the "further enhancements ...
to expedite the search" the paper's conclusion points to, and is used
by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Hashable

from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch

Value = Hashable


class ForwardCheckingSolver:
    """Backtracking with forward checking and MRV variable ordering.

    Complete: a ``None`` result proves unsatisfiability.
    """

    name = "forward-checking"

    def __init__(self, seed: int = 0):
        # The seed is accepted for interface symmetry; the solver is
        # fully deterministic (MRV with lexicographic tie-break).
        self._seed = seed

    def solve(self, network: ConstraintNetwork) -> SolverResult:
        """Find one solution (or prove there is none)."""
        stats = SolverStats()
        with Stopwatch(stats):
            domains = {
                variable: list(network.domain(variable))
                for variable in network.variables
            }
            assignment: dict[str, Value] = {}
            solution = self._search(network, assignment, domains, stats)
        return SolverResult(solution, stats, complete=True)

    def _search(
        self,
        network: ConstraintNetwork,
        assignment: dict[str, Value],
        domains: dict[str, list[Value]],
        stats: SolverStats,
    ) -> dict[str, Value] | None:
        if len(assignment) == len(network.variables):
            return dict(assignment)
        variable = self._select_mrv(network, assignment, domains)
        for value in list(domains[variable]):
            stats.nodes += 1
            pruned = self._forward_prune(
                network, variable, value, assignment, domains, stats
            )
            if pruned is not None:
                assignment[variable] = value
                solution = self._search(network, assignment, domains, stats)
                if solution is not None:
                    return solution
                del assignment[variable]
                self._restore(domains, pruned)
            # A None pruning result means some neighbor was wiped out;
            # the next value is tried immediately.
        stats.backtracks += 1
        return None

    def _select_mrv(
        self,
        network: ConstraintNetwork,
        assignment: dict[str, Value],
        domains: dict[str, list[Value]],
    ) -> str:
        unassigned = [v for v in network.variables if v not in assignment]
        return min(
            unassigned,
            key=lambda v: (len(domains[v]), -network.degree(v), v),
        )

    def _forward_prune(
        self,
        network: ConstraintNetwork,
        variable: str,
        value: Value,
        assignment: dict[str, Value],
        domains: dict[str, list[Value]],
        stats: SolverStats,
    ) -> list[tuple[str, Value]] | None:
        """Prune neighbor domains; None (and full rollback) on wipe-out."""
        pruned: list[tuple[str, Value]] = []
        for neighbor in network.neighbors(variable):
            if neighbor in assignment:
                # Already-checked consistency (its domain was pruned to
                # compatible values when it was assigned).
                constraint = network.constraint_between(variable, neighbor)
                assert constraint is not None
                stats.consistency_checks += 1
                if not constraint.allows(variable, value, assignment[neighbor]):
                    self._restore(domains, pruned)
                    return None
                continue
            constraint = network.constraint_between(variable, neighbor)
            assert constraint is not None
            for neighbor_value in list(domains[neighbor]):
                stats.consistency_checks += 1
                if not constraint.allows(variable, value, neighbor_value):
                    domains[neighbor].remove(neighbor_value)
                    pruned.append((neighbor, neighbor_value))
            if not domains[neighbor]:
                self._restore(domains, pruned)
                return None
        return pruned

    @staticmethod
    def _restore(
        domains: dict[str, list[Value]], pruned: list[tuple[str, Value]]
    ) -> None:
        for variable, value in reversed(pruned):
            domains[variable].append(value)

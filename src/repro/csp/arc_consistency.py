"""AC-3 arc consistency preprocessing.

Enforcing arc consistency before search removes domain values with no
support in some neighboring domain.  On layout networks this often
shrinks domains substantially (an array layout wanted by no consistent
restructuring of any nest is dropped up front), and can prove
unsatisfiability without any search at all.

The work queue tracks membership with a pending set: an arc whose
revision is already scheduled is never enqueued twice, so a revision
wave through a high-degree variable costs one revision per arc instead
of one per re-trigger (the classic AC-3 duplicate-queue waste).

Two engines run the revision loop (``engine="auto"`` sizes the choice
per network):

* ``bitset``: a value survives iff its support bitmask intersects the
  source's live domain mask -- one AND per live value;
* ``numpy``: the whole-domain revision is one masked ``any`` over the
  arc's dense support matrix (:mod:`repro.csp.vectorized`), with
  identical queue discipline, revision counts and pruned domains.

``auto`` additionally sizes the choice *per arc*: a numpy revision
costs flat array-dispatch overhead that only pays for itself on wide
arcs (measured crossover recorded as
:data:`~repro.csp.vectorized.AC3_ARC_CROSSOVER_CELLS`), so on a
mixed-width network the numpy loop revises narrow arcs with the bitset
kernel and wide arcs with the dense matrix.  Both representations of
the live domains are kept in sync, and revisions, removed counts and
reduced domains are engine-independent either way.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.csp.compiled import CompiledNetwork, as_compiled, iter_bits
from repro.csp.network import ConstraintNetwork
from repro.csp.vectorized import (
    AC3_ARC_CROSSOVER_CELLS,
    ENGINE_AUTO,
    ENGINE_BITSET,
    ENGINE_ENV,
    ENGINE_NATIVE,
    ENGINE_NUMPY,
    as_vectorized,
    resolve_engine,
)

Value = Hashable


@dataclass(frozen=True)
class ArcConsistencyResult:
    """Outcome of an AC-3 run.

    Attributes:
        consistent: False iff some domain was wiped out (UNSAT proof).
        domains: the reduced domains (meaningful only when consistent).
        revisions: number of arc revisions performed.
        removed: total number of values pruned.
        arc_engines: revision counts by the engine that ran them
            (``{"bitset": n, "numpy": m}``) -- the per-arc ``auto``
            crossover's observable; totals always equal ``revisions``.
    """

    consistent: bool
    domains: dict[str, tuple[Value, ...]]
    revisions: int
    removed: int
    arc_engines: dict[str, int] = field(default_factory=dict)


def ac3(
    network: ConstraintNetwork | CompiledNetwork, engine: str = ENGINE_AUTO
) -> ArcConsistencyResult:
    """Run AC-3 on the network and return the reduced domains.

    The input network is not modified; use
    :meth:`ConstraintNetwork.copy_with_domains` to build the pruned
    network when the result is consistent.
    """
    kernel = as_compiled(network)
    resolved = resolve_engine(engine, kernel)
    if resolved == ENGINE_NATIVE:
        return _ac3_native(kernel)
    if resolved == ENGINE_NUMPY:
        # The per-arc crossover applies only to a genuine ``auto``:
        # an explicit spec or the environment override pins one engine
        # for the whole run (kernel-parity CI forces pure numpy).
        crossover = 0
        if engine == ENGINE_AUTO and not os.environ.get(ENGINE_ENV, "").strip():
            crossover = AC3_ARC_CROSSOVER_CELLS
        return _ac3_numpy(kernel, crossover)
    masks = list(kernel.full_masks)
    queue, pending = _seed_queue(kernel)

    supports = kernel.supports
    revisions = 0
    removed = 0
    while queue:
        arc = queue.popleft()
        pending.discard(arc)
        target, source = arc
        revisions += 1
        support = supports[(target, source)]
        source_mask = masks[source]
        surviving = masks[target]
        pruned_here = False
        for value in iter_bits(masks[target]):
            if not support[value] & source_mask:
                surviving ^= 1 << value
                removed += 1
                pruned_here = True
        masks[target] = surviving
        if not surviving:
            return ArcConsistencyResult(
                False, {}, revisions, removed, {ENGINE_BITSET: revisions}
            )
        if pruned_here:
            _requeue_neighbors(kernel, target, source, queue, pending)
    domains = {
        kernel.names[i]: tuple(kernel.domains[i][value] for value in iter_bits(masks[i]))
        for i in range(kernel.variable_count)
    }
    return ArcConsistencyResult(
        True, domains, revisions, removed, {ENGINE_BITSET: revisions}
    )


def _seed_queue(
    kernel: CompiledNetwork,
) -> tuple[deque[tuple[int, int]], set[tuple[int, int]]]:
    """Both orientations of every pair, each arc queued at most once."""
    queue: deque[tuple[int, int]] = deque()
    pending: set[tuple[int, int]] = set()
    for first, second in kernel.pairs:
        for arc in ((first, second), (second, first)):
            if arc not in pending:
                pending.add(arc)
                queue.append(arc)
    return queue, pending


def _requeue_neighbors(
    kernel: CompiledNetwork,
    target: int,
    source: int,
    queue: deque[tuple[int, int]],
    pending: set[tuple[int, int]],
) -> None:
    """Re-examine arcs into a pruned variable (each at most once)."""
    for neighbor in kernel.neighbors[target]:
        if neighbor == source:
            continue
        arc = (neighbor, target)
        if arc not in pending:
            pending.add(arc)
            queue.append(arc)


def _ac3_native(kernel: CompiledNetwork) -> ArcConsistencyResult:
    """The whole AC-3 run -- queue discipline included -- in C.

    The native kernel replicates the seeding order, the pending-set
    dedup and the requeue wave exactly, so revisions, removed counts
    and the reduced domains match the bitset loop bit for bit.  Every
    arc is revised natively (no per-arc engine split: the C revision
    beats the bitset loop at every measured arc width).
    """
    from repro.csp.native import ops as native_ops

    consistent, masks, revisions, removed = native_ops.ac3(kernel)
    engines = {ENGINE_NATIVE: revisions}
    if not consistent:
        return ArcConsistencyResult(False, {}, revisions, removed, engines)
    domains = {
        kernel.names[i]: tuple(
            kernel.domains[i][value] for value in iter_bits(masks[i])
        )
        for i in range(kernel.variable_count)
    }
    return ArcConsistencyResult(True, domains, revisions, removed, engines)


def _ac3_numpy(
    kernel: CompiledNetwork, crossover: int = 0
) -> ArcConsistencyResult:
    """The numpy revision loop: one masked ``any`` per arc.

    Arcs narrower than ``crossover`` directed support cells are revised
    with the bitset kernel instead (``crossover=0`` keeps every arc on
    numpy).  The live domains are held both as bitmasks and as a bool
    plane; a prune through either engine updates both, so any arc can
    be revised by either engine at any point and the outcome -- pruned
    domains, revision count, removed count, requeue wave -- is
    identical to a single-engine run.
    """
    import numpy as np

    vectorized = as_vectorized(kernel)
    count = vectorized.variable_count
    dom = vectorized.domain_size_list
    live = np.zeros((count, vectorized.max_domain), dtype=bool)
    for i in range(count):
        live[i, : dom[i]] = True
    masks = list(kernel.full_masks)
    supports = kernel.supports
    queue, pending = _seed_queue(kernel)

    engines = {ENGINE_BITSET: 0, ENGINE_NUMPY: 0}
    revisions = 0
    removed = 0
    while queue:
        arc = queue.popleft()
        pending.discard(arc)
        target, source = arc
        revisions += 1
        target_dom = dom[target]
        pruned_here = 0
        if target_dom * dom[source] < crossover:
            engines[ENGINE_BITSET] += 1
            support = supports[(target, source)]
            source_mask = masks[source]
            surviving_mask = masks[target]
            for value in iter_bits(masks[target]):
                if not support[value] & source_mask:
                    surviving_mask ^= 1 << value
                    pruned_here += 1
            if pruned_here:
                masks[target] = surviving_mask
                live[target, :target_dom] = _unpack_mask(
                    np, surviving_mask, target_dom
                )
        else:
            engines[ENGINE_NUMPY] += 1
            matrix = vectorized.support_matrix(
                target, vectorized.slot_of[(target, source)]
            )
            supported = (matrix & live[source, : dom[source]]).any(axis=1)
            current = live[target, :target_dom]
            surviving = current & supported
            pruned_here = int(current.sum() - surviving.sum())
            if pruned_here:
                live[target, :target_dom] = surviving
                masks[target] = int.from_bytes(
                    np.packbits(surviving, bitorder="little").tobytes(), "little"
                )
        if pruned_here:
            removed += pruned_here
            if not masks[target]:
                return ArcConsistencyResult(False, {}, revisions, removed, engines)
            _requeue_neighbors(kernel, target, source, queue, pending)
    domains = {
        kernel.names[i]: tuple(
            kernel.domains[i][value] for value in iter_bits(masks[i])
        )
        for i in range(count)
    }
    return ArcConsistencyResult(True, domains, revisions, removed, engines)


def _unpack_mask(np, mask: int, width: int):
    """A live-domain bitmask as a bool row of ``width`` entries."""
    packed = np.frombuffer(
        mask.to_bytes((width + 7) // 8, "little"), dtype=np.uint8
    )
    return np.unpackbits(packed, bitorder="little")[:width].astype(bool)

"""AC-3 arc consistency preprocessing.

Enforcing arc consistency before search removes domain values with no
support in some neighboring domain.  On layout networks this often
shrinks domains substantially (an array layout wanted by no consistent
restructuring of any nest is dropped up front), and can prove
unsatisfiability without any search at all.

The revision loop runs on the compiled kernel: a value survives iff its
support bitmask intersects the source's live domain mask -- one AND per
value instead of a nested any()-scan over the pair set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.csp.compiled import CompiledNetwork, as_compiled, iter_bits
from repro.csp.network import ConstraintNetwork

Value = Hashable


@dataclass(frozen=True)
class ArcConsistencyResult:
    """Outcome of an AC-3 run.

    Attributes:
        consistent: False iff some domain was wiped out (UNSAT proof).
        domains: the reduced domains (meaningful only when consistent).
        revisions: number of arc revisions performed.
        removed: total number of values pruned.
    """

    consistent: bool
    domains: dict[str, tuple[Value, ...]]
    revisions: int
    removed: int


def ac3(network: ConstraintNetwork | CompiledNetwork) -> ArcConsistencyResult:
    """Run AC-3 on the network and return the reduced domains.

    The input network is not modified; use
    :meth:`ConstraintNetwork.copy_with_domains` to build the pruned
    network when the result is consistent.
    """
    kernel = as_compiled(network)
    masks = list(kernel.full_masks)
    queue: deque[tuple[int, int]] = deque()
    for first, second in kernel.pairs:
        queue.append((first, second))
        queue.append((second, first))

    supports = kernel.supports
    revisions = 0
    removed = 0
    while queue:
        target, source = queue.popleft()
        revisions += 1
        support = supports[(target, source)]
        source_mask = masks[source]
        surviving = masks[target]
        pruned_here = False
        for value in iter_bits(masks[target]):
            if not support[value] & source_mask:
                surviving ^= 1 << value
                removed += 1
                pruned_here = True
        masks[target] = surviving
        if not surviving:
            return ArcConsistencyResult(False, {}, revisions, removed)
        if pruned_here:
            for neighbor in kernel.neighbors[target]:
                if neighbor != source:
                    queue.append((neighbor, target))
    domains = {
        kernel.names[i]: tuple(kernel.domains[i][value] for value in iter_bits(masks[i]))
        for i in range(kernel.variable_count)
    }
    return ArcConsistencyResult(True, domains, revisions, removed)

"""AC-3 arc consistency preprocessing.

Enforcing arc consistency before search removes domain values with no
support in some neighboring domain.  On layout networks this often
shrinks domains substantially (an array layout wanted by no consistent
restructuring of any nest is dropped up front), and can prove
unsatisfiability without any search at all.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.csp.network import ConstraintNetwork

Value = Hashable


@dataclass(frozen=True)
class ArcConsistencyResult:
    """Outcome of an AC-3 run.

    Attributes:
        consistent: False iff some domain was wiped out (UNSAT proof).
        domains: the reduced domains (meaningful only when consistent).
        revisions: number of arc revisions performed.
        removed: total number of values pruned.
    """

    consistent: bool
    domains: dict[str, tuple[Value, ...]]
    revisions: int
    removed: int


def ac3(network: ConstraintNetwork) -> ArcConsistencyResult:
    """Run AC-3 on the network and return the reduced domains.

    The input network is not modified; use
    :meth:`ConstraintNetwork.copy_with_domains` to build the pruned
    network when the result is consistent.
    """
    domains: dict[str, list[Value]] = {
        variable: list(network.domain(variable))
        for variable in network.variables
    }
    queue: deque[tuple[str, str]] = deque()
    for constraint in network.constraints:
        queue.append((constraint.first, constraint.second))
        queue.append((constraint.second, constraint.first))

    revisions = 0
    removed = 0
    while queue:
        target, source = queue.popleft()
        revisions += 1
        constraint = network.constraint_between(target, source)
        assert constraint is not None
        pruned_here = False
        for value in list(domains[target]):
            if not any(
                constraint.allows(target, value, support)
                for support in domains[source]
            ):
                domains[target].remove(value)
                removed += 1
                pruned_here = True
        if not domains[target]:
            return ArcConsistencyResult(False, {}, revisions, removed)
        if pruned_here:
            for neighbor in network.neighbors(target):
                if neighbor != source:
                    queue.append((neighbor, target))
    return ArcConsistencyResult(
        True,
        {variable: tuple(values) for variable, values in domains.items()},
        revisions,
        removed,
    )

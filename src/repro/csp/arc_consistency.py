"""AC-3 arc consistency preprocessing.

Enforcing arc consistency before search removes domain values with no
support in some neighboring domain.  On layout networks this often
shrinks domains substantially (an array layout wanted by no consistent
restructuring of any nest is dropped up front), and can prove
unsatisfiability without any search at all.

The work queue tracks membership with a pending set: an arc whose
revision is already scheduled is never enqueued twice, so a revision
wave through a high-degree variable costs one revision per arc instead
of one per re-trigger (the classic AC-3 duplicate-queue waste).

Two engines run the revision loop (``engine="auto"`` sizes the choice
per network):

* ``bitset``: a value survives iff its support bitmask intersects the
  source's live domain mask -- one AND per live value;
* ``numpy``: the whole-domain revision is one masked ``any`` over the
  arc's dense support matrix (:mod:`repro.csp.vectorized`), with
  identical queue discipline, revision counts and pruned domains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.csp.compiled import CompiledNetwork, as_compiled, iter_bits
from repro.csp.network import ConstraintNetwork
from repro.csp.vectorized import (
    ENGINE_AUTO,
    ENGINE_NUMPY,
    as_vectorized,
    resolve_engine,
)

Value = Hashable


@dataclass(frozen=True)
class ArcConsistencyResult:
    """Outcome of an AC-3 run.

    Attributes:
        consistent: False iff some domain was wiped out (UNSAT proof).
        domains: the reduced domains (meaningful only when consistent).
        revisions: number of arc revisions performed.
        removed: total number of values pruned.
    """

    consistent: bool
    domains: dict[str, tuple[Value, ...]]
    revisions: int
    removed: int


def ac3(
    network: ConstraintNetwork | CompiledNetwork, engine: str = ENGINE_AUTO
) -> ArcConsistencyResult:
    """Run AC-3 on the network and return the reduced domains.

    The input network is not modified; use
    :meth:`ConstraintNetwork.copy_with_domains` to build the pruned
    network when the result is consistent.
    """
    kernel = as_compiled(network)
    if resolve_engine(engine, kernel) == ENGINE_NUMPY:
        return _ac3_numpy(kernel)
    masks = list(kernel.full_masks)
    queue, pending = _seed_queue(kernel)

    supports = kernel.supports
    revisions = 0
    removed = 0
    while queue:
        arc = queue.popleft()
        pending.discard(arc)
        target, source = arc
        revisions += 1
        support = supports[(target, source)]
        source_mask = masks[source]
        surviving = masks[target]
        pruned_here = False
        for value in iter_bits(masks[target]):
            if not support[value] & source_mask:
                surviving ^= 1 << value
                removed += 1
                pruned_here = True
        masks[target] = surviving
        if not surviving:
            return ArcConsistencyResult(False, {}, revisions, removed)
        if pruned_here:
            _requeue_neighbors(kernel, target, source, queue, pending)
    domains = {
        kernel.names[i]: tuple(kernel.domains[i][value] for value in iter_bits(masks[i]))
        for i in range(kernel.variable_count)
    }
    return ArcConsistencyResult(True, domains, revisions, removed)


def _seed_queue(
    kernel: CompiledNetwork,
) -> tuple[deque[tuple[int, int]], set[tuple[int, int]]]:
    """Both orientations of every pair, each arc queued at most once."""
    queue: deque[tuple[int, int]] = deque()
    pending: set[tuple[int, int]] = set()
    for first, second in kernel.pairs:
        for arc in ((first, second), (second, first)):
            if arc not in pending:
                pending.add(arc)
                queue.append(arc)
    return queue, pending


def _requeue_neighbors(
    kernel: CompiledNetwork,
    target: int,
    source: int,
    queue: deque[tuple[int, int]],
    pending: set[tuple[int, int]],
) -> None:
    """Re-examine arcs into a pruned variable (each at most once)."""
    for neighbor in kernel.neighbors[target]:
        if neighbor == source:
            continue
        arc = (neighbor, target)
        if arc not in pending:
            pending.add(arc)
            queue.append(arc)


def _ac3_numpy(kernel: CompiledNetwork) -> ArcConsistencyResult:
    """The numpy revision loop: one masked ``any`` per arc."""
    import numpy as np

    vectorized = as_vectorized(kernel)
    count = vectorized.variable_count
    live = np.zeros((count, vectorized.max_domain), dtype=bool)
    for i in range(count):
        live[i, : vectorized.domain_size_list[i]] = True
    queue, pending = _seed_queue(kernel)

    revisions = 0
    removed = 0
    while queue:
        arc = queue.popleft()
        pending.discard(arc)
        target, source = arc
        revisions += 1
        matrix = vectorized.support_matrix(target, vectorized.slot_of[(target, source)])
        target_dom = vectorized.domain_size_list[target]
        source_dom = vectorized.domain_size_list[source]
        supported = (matrix & live[source, :source_dom]).any(axis=1)
        current = live[target, :target_dom]
        surviving = current & supported
        pruned_here = int(current.sum() - surviving.sum())
        if pruned_here:
            removed += pruned_here
            live[target, :target_dom] = surviving
            if not surviving.any():
                return ArcConsistencyResult(False, {}, revisions, removed)
            _requeue_neighbors(kernel, target, source, queue, pending)
    domains = {
        kernel.names[i]: tuple(
            kernel.domains[i][int(value)]
            for value in np.flatnonzero(live[i, : vectorized.domain_size_list[i]])
        )
        for i in range(count)
    }
    return ArcConsistencyResult(True, domains, revisions, removed)

"""Constraint-network machinery (Sections 3 and 4 of the paper).

* :mod:`repro.csp.network` -- the binary constraint network
  ``CN = <P, M, S>``: variables, per-variable domains, and binary
  constraints given as sets of allowed value pairs (the *authoring*
  representation).
* :mod:`repro.csp.compiled` -- the *execution* representation: dense
  integer indices and per-value support bitmasks; every solver below
  runs its inner loop on this kernel.
* :mod:`repro.csp.vectorized` -- the numpy *acceleration* tier: dense
  support matrices and batched array operations behind every solver's
  ``engine="bitset" | "numpy" | "auto"`` knob, parity-preserving
  (identical RNG streams, counters and solutions), plus zero-copy
  shared-memory kernel sharing for resident worker pools.
* :mod:`repro.csp.stats` -- search instrumentation shared by all
  solvers (nodes, backtracks, backjumps, consistency checks, time).
* :mod:`repro.csp.backtracking` -- the paper's *base scheme*:
  chronological backtracking with random variable and value orders.
* :mod:`repro.csp.enhanced` -- the *enhanced scheme*: most-constraining
  variable ordering, least-constraining value ordering and graph-based
  backjumping, each individually toggleable (used for Figure 4).
* :mod:`repro.csp.backjumping` -- conflict-directed backjumping (a
  sharper jump rule than the graph-based one, provided as an extension).
* :mod:`repro.csp.forward_checking` -- forward-checking solver
  (extension beyond the paper).
* :mod:`repro.csp.splitsearch` -- space-splitting parallel search:
  the forward-checking space is expanded to a branch frontier, the
  subtrees race across a warm worker pool with work stealing, and a
  deterministic merge keeps results byte-identical to the serial
  solver regardless of worker count or steal order.
* :mod:`repro.csp.arc_consistency` -- AC-3 preprocessing.
* :mod:`repro.csp.minconflicts` -- min-conflicts local search.
* :mod:`repro.csp.weighted` -- weighted networks and branch-and-bound
  (the paper's first future-work direction).
* :mod:`repro.csp.random_networks` -- random network generation for
  scaling studies.
"""

from repro.csp.network import BinaryConstraint, ConstraintNetwork
from repro.csp.compiled import CompiledNetwork, compile_network
from repro.csp.vectorized import (
    VectorizedKernel,
    as_vectorized,
    batch_min_conflicts,
    native_available,
    numpy_available,
    resolve_engine,
)
from repro.csp.stats import SolverStats, SolverResult
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.splitsearch import (
    SEARCH_AUTO,
    SEARCH_SERIAL,
    SEARCH_SPLIT,
    SplitSearchSolver,
    SplitStats,
    enumerate_solutions_parallel,
    resolve_search,
)
from repro.csp.arc_consistency import ac3, ArcConsistencyResult
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.weighted import WeightedNetwork, BranchAndBoundSolver
from repro.csp.random_networks import random_network

__all__ = [
    "BinaryConstraint",
    "ConstraintNetwork",
    "CompiledNetwork",
    "compile_network",
    "VectorizedKernel",
    "as_vectorized",
    "batch_min_conflicts",
    "native_available",
    "numpy_available",
    "resolve_engine",
    "SolverStats",
    "SolverResult",
    "BacktrackingSolver",
    "EnhancedSolver",
    "EnhancementConfig",
    "ConflictDirectedSolver",
    "ForwardCheckingSolver",
    "SEARCH_AUTO",
    "SEARCH_SERIAL",
    "SEARCH_SPLIT",
    "SplitSearchSolver",
    "SplitStats",
    "enumerate_solutions_parallel",
    "resolve_search",
    "ac3",
    "ArcConsistencyResult",
    "MinConflictsSolver",
    "WeightedNetwork",
    "BranchAndBoundSolver",
    "random_network",
]

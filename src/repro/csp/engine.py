"""The depth-first search engine behind the systematic solvers.

One engine implements the whole family of Section 4 solvers; the
behaviour toggles are exactly the three enhancements of the paper plus
the choice of jump rule:

* variable ordering: random (base) or most-constraining (enhanced);
* value ordering: random (base) or least-constraining (enhanced);
* dead-end handling: chronological backtracking (base), graph-based
  backjumping (enhanced, the rule the paper illustrates in Figure 3),
  or conflict-directed backjumping (sharper extension).

The implementation is the classic recursive conflict-set formulation:
``_search`` returns ``(solution, jump_depth, conflict_depths)``.  A
frame whose depth is above ``jump_depth`` simply unwinds; the frame at
``jump_depth`` resumes with its next value, merging the child's
conflict set into its own.  This is sound for both jump rules and for
dynamic variable orders because conflict sets always name *depths of
currently instantiated variables* responsible for the failure.

The engine runs entirely on the compiled kernel
(:mod:`repro.csp.compiled`): variables and values are dense integer
indices, and a consistency check is one shift-and-mask on a support
bitmask.  Passing an authoring :class:`ConstraintNetwork` compiles it
(cached on the network); named assignments are reconstructed only at
the solution boundary.  The RNG stream and the value/variable orders
are identical to the historical object-based implementation, so seeded
runs reproduce the same searches.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch
from repro.csp.vectorized import (
    ENGINE_AUTO,
    ENGINE_NATIVE,
    ENGINE_NUMPY,
    ENGINES,
    MaskedLexArgmin,
    as_vectorized,
    resolve_engine,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import EFFORT_BUCKETS


def record_solver_effort(engine: str, scheme: str, stats: SolverStats) -> None:
    """Fold one finished solve's effort counters into the metrics layer.

    Shared by every solver entry point (systematic engine,
    min-conflicts, branch & bound).  Effort histograms carry the
    paper's machine-independent counters, bucketed per engine, so a
    fleet can compare instance hardness without comparing clocks.
    Callers gate on :func:`repro.obs.metrics.enabled` themselves to
    keep the disabled path at one branch.
    """
    labels = {"engine": engine, "scheme": scheme}
    obs_metrics.counter(
        "repro_solver_solves_total",
        labels=labels,
        help="Completed solver runs by engine and scheme.",
    )
    for counter_name in ("nodes", "consistency_checks"):
        effort = getattr(stats, counter_name)
        if effort:
            obs_metrics.observe(
                "repro_solver_effort",
                float(effort),
                labels={"engine": engine, "counter": counter_name},
                help="Machine-independent per-solve effort, by engine.",
                bounds=EFFORT_BUCKETS,
            )

#: Jump rule names accepted by the engine.
JUMP_CHRONOLOGICAL = "chronological"
JUMP_GRAPH = "graph"
JUMP_CONFLICT = "conflict"


@dataclass(frozen=True)
class EngineConfig:
    """Behaviour switches for :class:`SearchEngine`.

    Attributes:
        variable_ordering: use the most-constraining-variable rule
            instead of a random choice.
        value_ordering: use the least-constraining-value rule instead
            of a random shuffle.
        jump_mode: one of ``chronological``, ``graph`` or ``conflict``.
        seed: RNG seed for the random orderings (ignored when both
            ordering rules are enabled).
        max_nodes: optional node budget; when exhausted the solver
            stops and reports an *incomplete* result (None assignment
            with ``complete=False``) instead of running unboundedly.
        engine: ``bitset``, ``numpy`` or ``auto`` -- which propagation
            kernel evaluates the ordering heuristics.  The search, its
            RNG stream and every effort counter are identical either
            way; the numpy engine computes the most-constraining and
            least-constraining scores as array operations.  Random
            orderings have no heuristic mathematics, so the base
            scheme runs the same code under both engines.
    """

    variable_ordering: bool = False
    value_ordering: bool = False
    jump_mode: str = JUMP_CHRONOLOGICAL
    seed: int = 0
    max_nodes: int | None = None
    engine: str = ENGINE_AUTO

    def __post_init__(self) -> None:
        if self.jump_mode not in (JUMP_CHRONOLOGICAL, JUMP_GRAPH, JUMP_CONFLICT):
            raise ValueError(f"unknown jump mode {self.jump_mode!r}")
        if self.max_nodes is not None and self.max_nodes <= 0:
            raise ValueError("max_nodes must be positive when given")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; pick one of {ENGINES}")


class _NodeBudgetExhausted(Exception):
    """Internal: raised when the engine's node budget runs out."""


class _VecOrderings:
    """Per-solve numpy state for the ordering heuristics.

    Tracks the unassigned-variable indicator vector and precomputes
    the static parts of the most-constraining key, so a variable
    selection is one adjacency matrix-vector product plus an argmin
    (:class:`~repro.csp.vectorized.MaskedLexArgmin`) and a value
    ordering is one row-sum plus a stable argsort.
    """

    def __init__(self, vectorized):
        import numpy as np

        self.np = np
        self.vk = vectorized
        count = vectorized.variable_count
        self.unassigned = np.ones(count, dtype=np.int64)
        max_domain = vectorized.max_domain
        # Reference key: (-future_degree, -total_degree, domain, rank)
        # (`_select_variable`), with future_degree the dynamic digit:
        # both negated counts are encoded ascending as (bound - count).
        self.mcv = MaskedLexArgmin(
            (
                (count - vectorized.degrees) * (max_domain + 2)
                + vectorized.domain_sizes
            ) * (count + 1)
            + vectorized.name_rank
        )

    def select_most_constraining(self) -> int:
        vk = self.vk
        future_degree = vk.adjacency @ self.unassigned
        return self.mcv.argmin(
            vk.variable_count - future_degree, self.unassigned == 1
        )

    def order_least_constraining(self, variable: int, stats: SolverStats) -> list[int]:
        np = self.np
        vk = self.vk
        degree = vk.degree_list[variable]
        domain = vk.domain_size_list[variable]
        if degree == 0:
            return list(range(domain))
        neighbors = vk.neighbors_pad[variable, :degree]
        live = self.unassigned[neighbors] == 1
        totals = vk.lcv_counts[variable, :degree][live, :domain].sum(axis=0)
        stats.consistency_checks += domain * int(
            vk.domain_sizes[neighbors[live]].sum()
        )
        return np.argsort(-totals, kind="stable").tolist()


class SearchEngine:
    """Configurable systematic solver over a constraint network.

    Accepts either the authoring :class:`ConstraintNetwork` (compiled
    on entry, cached) or an already-compiled :class:`CompiledNetwork`.
    """

    def __init__(self, config: EngineConfig):
        self._config = config
        self._deadline_seconds: float | None = None
        self._deadline_at: float | None = None

    @property
    def config(self) -> EngineConfig:
        """The engine's configuration."""
        return self._config

    def set_deadline(self, seconds: float) -> None:
        """Bound the next solve's wall clock (checked every 256 nodes).

        Expiry ends the search with ``complete=False``, exactly like an
        exhausted node budget; the portfolio propagates its remaining
        race budget here so a losing scheme stops promptly.
        """
        self._deadline_seconds = max(0.0, seconds)

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Run the search to the first solution or to an UNSAT proof."""
        kernel = as_compiled(network)
        stats = SolverStats()
        rng = random.Random(self._config.seed)
        self._deadline_at = (
            time.monotonic() + self._deadline_seconds
            if self._deadline_seconds is not None
            else None
        )
        complete = True
        vec = None
        if self._config.variable_ordering or self._config.value_ordering:
            resolved = resolve_engine(self._config.engine, kernel)
            if resolved == ENGINE_NUMPY:
                vec = _VecOrderings(as_vectorized(kernel))
            elif resolved == ENGINE_NATIVE:
                # Same interface as _VecOrderings (select / order /
                # mutable unassigned indicator), heuristics evaluated
                # by the C kernel with the identical key encoding.
                from repro.csp.native.ops import NativeOrderings

                vec = NativeOrderings(kernel)
        with obs_trace.span("csp_search", jump_mode=self._config.jump_mode) as sp:
            with Stopwatch(stats):
                values: list[int | None] = [None] * kernel.variable_count
                depth_of = [0] * kernel.variable_count
                try:
                    solution, _, _ = self._search(
                        kernel, values, 0, depth_of, rng, stats, vec
                    )
                except _NodeBudgetExhausted:
                    solution = None
                    complete = False
        sp.set_attribute("nodes", stats.nodes)
        if obs_metrics.enabled():
            record_solver_effort(
                resolve_engine(self._config.engine, kernel),
                self._config.jump_mode,
                stats,
            )
        return SolverResult(solution, stats, complete=complete)

    # -- search ---------------------------------------------------------

    def _search(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        depth: int,
        depth_of: list[int],
        rng: random.Random,
        stats: SolverStats,
        vec: "_VecOrderings | None",
    ) -> tuple[dict | None, int, set[int]]:
        if depth == kernel.variable_count:
            return kernel.to_named(values), depth, set()

        variable = self._select_variable(kernel, values, rng, vec)
        conflict_union: set[int] = set()
        budget = self._config.max_nodes
        for value in self._order_values(kernel, variable, values, rng, stats, vec):
            stats.nodes += 1
            if budget is not None and stats.nodes > budget:
                raise _NodeBudgetExhausted()
            if (
                self._deadline_at is not None
                and (stats.nodes & 255) == 0
                and time.monotonic() >= self._deadline_at
            ):
                raise _NodeBudgetExhausted()
            consistent, conflicts = self._check(
                kernel, variable, value, values, depth_of, stats
            )
            if not consistent:
                conflict_union |= conflicts
                continue
            values[variable] = value
            depth_of[variable] = depth
            if vec is not None:
                vec.unassigned[variable] = 0
            solution, jump, child_conflicts = self._search(
                kernel, values, depth + 1, depth_of, rng, stats, vec
            )
            if solution is not None:
                return solution, jump, child_conflicts
            values[variable] = None
            if vec is not None:
                vec.unassigned[variable] = 1
            if jump < depth:
                # We are being jumped over: unwind without retrying.
                return None, jump, child_conflicts
            conflict_union |= child_conflicts

        # Dead end: no value of `variable` extends the instantiation.
        if self._config.jump_mode == JUMP_CHRONOLOGICAL:
            stats.backtracks += 1
            return None, depth - 1, set(range(depth))
        if conflict_union:
            jump = max(conflict_union)
        else:
            jump = -1  # nothing above is responsible: unwind everything
        if jump < depth - 1:
            stats.backjumps += 1
        else:
            stats.backtracks += 1
        return None, jump, conflict_union - {jump}

    # -- heuristics -------------------------------------------------------

    def _select_variable(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        rng: random.Random,
        vec: "_VecOrderings | None" = None,
    ) -> int:
        if self._config.variable_ordering and vec is not None:
            return vec.select_most_constraining()
        unassigned = [i for i in range(kernel.variable_count) if values[i] is None]
        if not self._config.variable_ordering:
            return rng.choice(unassigned)
        # Most-constraining variable: maximize constraints to the not yet
        # instantiated part of the network ("detect a dead-end as early
        # as possible"); break ties toward higher total degree, then
        # smaller domain, then name (for determinism).
        neighbors = kernel.neighbors
        domains = kernel.domains
        rank = kernel.name_rank

        def key(variable: int) -> tuple[int, int, int, int]:
            future_degree = sum(
                1 for neighbor in neighbors[variable] if values[neighbor] is None
            )
            return (
                -future_degree,
                -len(neighbors[variable]),
                len(domains[variable]),
                rank[variable],
            )

        return min(unassigned, key=key)

    def _order_values(
        self,
        kernel: CompiledNetwork,
        variable: int,
        values: list[int | None],
        rng: random.Random,
        stats: SolverStats,
        vec: "_VecOrderings | None" = None,
    ) -> list[int]:
        if self._config.value_ordering and vec is not None:
            return vec.order_least_constraining(variable, stats)
        order = list(range(kernel.domain_size(variable)))
        if not self._config.value_ordering:
            rng.shuffle(order)
            return order
        # Least-constraining value: maximize the number of options left
        # for the uninstantiated neighbors.  One popcount per neighbor
        # replaces the per-value scan (the checks counter still reports
        # the per-pair cost, for comparability with the paper's tables).
        unassigned_neighbors = [
            neighbor
            for neighbor in kernel.neighbors[variable]
            if values[neighbor] is None
        ]
        supports = kernel.supports

        def support(value: int) -> int:
            total = 0
            for neighbor in unassigned_neighbors:
                stats.consistency_checks += kernel.domain_size(neighbor)
                total += supports[(variable, neighbor)][value].bit_count()
            return total

        scored = sorted((-support(value), value) for value in order)
        return [value for _, value in scored]

    # -- consistency -----------------------------------------------------

    def _check(
        self,
        kernel: CompiledNetwork,
        variable: int,
        value: int,
        values: list[int | None],
        depth_of: list[int],
        stats: SolverStats,
    ) -> tuple[bool, set[int]]:
        """Check ``variable=value`` against all instantiated neighbors.

        Returns (consistent, conflict_depths).  In graph mode the
        conflict set is every instantiated neighbor (the adjacency
        information of Figure 3); in conflict mode it is only the
        neighbors whose constraint actually failed.
        """
        conflicts: set[int] = set()
        consistent = True
        supports = kernel.supports
        for neighbor in kernel.neighbors[variable]:
            neighbor_value = values[neighbor]
            if neighbor_value is None:
                continue
            stats.consistency_checks += 1
            if not (supports[(variable, neighbor)][value] >> neighbor_value) & 1:
                consistent = False
                if self._config.jump_mode == JUMP_CONFLICT:
                    conflicts.add(depth_of[neighbor])
        if not consistent and self._config.jump_mode == JUMP_GRAPH:
            conflicts = {
                depth_of[neighbor]
                for neighbor in kernel.neighbors[variable]
                if values[neighbor] is not None
            }
        return consistent, conflicts

"""The depth-first search engine behind the systematic solvers.

One engine implements the whole family of Section 4 solvers; the
behaviour toggles are exactly the three enhancements of the paper plus
the choice of jump rule:

* variable ordering: random (base) or most-constraining (enhanced);
* value ordering: random (base) or least-constraining (enhanced);
* dead-end handling: chronological backtracking (base), graph-based
  backjumping (enhanced, the rule the paper illustrates in Figure 3),
  or conflict-directed backjumping (sharper extension).

The implementation is the classic recursive conflict-set formulation:
``_search`` returns ``(solution, jump_depth, conflict_depths)``.  A
frame whose depth is above ``jump_depth`` simply unwinds; the frame at
``jump_depth`` resumes with its next value, merging the child's
conflict set into its own.  This is sound for both jump rules and for
dynamic variable orders because conflict sets always name *depths of
currently instantiated variables* responsible for the failure.

The engine runs entirely on the compiled kernel
(:mod:`repro.csp.compiled`): variables and values are dense integer
indices, and a consistency check is one shift-and-mask on a support
bitmask.  Passing an authoring :class:`ConstraintNetwork` compiles it
(cached on the network); named assignments are reconstructed only at
the solution boundary.  The RNG stream and the value/variable orders
are identical to the historical object-based implementation, so seeded
runs reproduce the same searches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch

#: Jump rule names accepted by the engine.
JUMP_CHRONOLOGICAL = "chronological"
JUMP_GRAPH = "graph"
JUMP_CONFLICT = "conflict"


@dataclass(frozen=True)
class EngineConfig:
    """Behaviour switches for :class:`SearchEngine`.

    Attributes:
        variable_ordering: use the most-constraining-variable rule
            instead of a random choice.
        value_ordering: use the least-constraining-value rule instead
            of a random shuffle.
        jump_mode: one of ``chronological``, ``graph`` or ``conflict``.
        seed: RNG seed for the random orderings (ignored when both
            ordering rules are enabled).
        max_nodes: optional node budget; when exhausted the solver
            stops and reports an *incomplete* result (None assignment
            with ``complete=False``) instead of running unboundedly.
    """

    variable_ordering: bool = False
    value_ordering: bool = False
    jump_mode: str = JUMP_CHRONOLOGICAL
    seed: int = 0
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.jump_mode not in (JUMP_CHRONOLOGICAL, JUMP_GRAPH, JUMP_CONFLICT):
            raise ValueError(f"unknown jump mode {self.jump_mode!r}")
        if self.max_nodes is not None and self.max_nodes <= 0:
            raise ValueError("max_nodes must be positive when given")


class _NodeBudgetExhausted(Exception):
    """Internal: raised when the engine's node budget runs out."""


class SearchEngine:
    """Configurable systematic solver over a constraint network.

    Accepts either the authoring :class:`ConstraintNetwork` (compiled
    on entry, cached) or an already-compiled :class:`CompiledNetwork`.
    """

    def __init__(self, config: EngineConfig):
        self._config = config

    @property
    def config(self) -> EngineConfig:
        """The engine's configuration."""
        return self._config

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Run the search to the first solution or to an UNSAT proof."""
        kernel = as_compiled(network)
        stats = SolverStats()
        rng = random.Random(self._config.seed)
        complete = True
        with Stopwatch(stats):
            values: list[int | None] = [None] * kernel.variable_count
            depth_of = [0] * kernel.variable_count
            try:
                solution, _, _ = self._search(
                    kernel, values, 0, depth_of, rng, stats
                )
            except _NodeBudgetExhausted:
                solution = None
                complete = False
        return SolverResult(solution, stats, complete=complete)

    # -- search ---------------------------------------------------------

    def _search(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        depth: int,
        depth_of: list[int],
        rng: random.Random,
        stats: SolverStats,
    ) -> tuple[dict | None, int, set[int]]:
        if depth == kernel.variable_count:
            return kernel.to_named(values), depth, set()

        variable = self._select_variable(kernel, values, rng)
        conflict_union: set[int] = set()
        budget = self._config.max_nodes
        for value in self._order_values(kernel, variable, values, rng, stats):
            stats.nodes += 1
            if budget is not None and stats.nodes > budget:
                raise _NodeBudgetExhausted()
            consistent, conflicts = self._check(
                kernel, variable, value, values, depth_of, stats
            )
            if not consistent:
                conflict_union |= conflicts
                continue
            values[variable] = value
            depth_of[variable] = depth
            solution, jump, child_conflicts = self._search(
                kernel, values, depth + 1, depth_of, rng, stats
            )
            if solution is not None:
                return solution, jump, child_conflicts
            values[variable] = None
            if jump < depth:
                # We are being jumped over: unwind without retrying.
                return None, jump, child_conflicts
            conflict_union |= child_conflicts

        # Dead end: no value of `variable` extends the instantiation.
        if self._config.jump_mode == JUMP_CHRONOLOGICAL:
            stats.backtracks += 1
            return None, depth - 1, set(range(depth))
        if conflict_union:
            jump = max(conflict_union)
        else:
            jump = -1  # nothing above is responsible: unwind everything
        if jump < depth - 1:
            stats.backjumps += 1
        else:
            stats.backtracks += 1
        return None, jump, conflict_union - {jump}

    # -- heuristics -------------------------------------------------------

    def _select_variable(
        self,
        kernel: CompiledNetwork,
        values: list[int | None],
        rng: random.Random,
    ) -> int:
        unassigned = [i for i in range(kernel.variable_count) if values[i] is None]
        if not self._config.variable_ordering:
            return rng.choice(unassigned)
        # Most-constraining variable: maximize constraints to the not yet
        # instantiated part of the network ("detect a dead-end as early
        # as possible"); break ties toward higher total degree, then
        # smaller domain, then name (for determinism).
        neighbors = kernel.neighbors
        domains = kernel.domains
        rank = kernel.name_rank

        def key(variable: int) -> tuple[int, int, int, int]:
            future_degree = sum(
                1 for neighbor in neighbors[variable] if values[neighbor] is None
            )
            return (
                -future_degree,
                -len(neighbors[variable]),
                len(domains[variable]),
                rank[variable],
            )

        return min(unassigned, key=key)

    def _order_values(
        self,
        kernel: CompiledNetwork,
        variable: int,
        values: list[int | None],
        rng: random.Random,
        stats: SolverStats,
    ) -> list[int]:
        order = list(range(kernel.domain_size(variable)))
        if not self._config.value_ordering:
            rng.shuffle(order)
            return order
        # Least-constraining value: maximize the number of options left
        # for the uninstantiated neighbors.  One popcount per neighbor
        # replaces the per-value scan (the checks counter still reports
        # the per-pair cost, for comparability with the paper's tables).
        unassigned_neighbors = [
            neighbor
            for neighbor in kernel.neighbors[variable]
            if values[neighbor] is None
        ]
        supports = kernel.supports

        def support(value: int) -> int:
            total = 0
            for neighbor in unassigned_neighbors:
                stats.consistency_checks += kernel.domain_size(neighbor)
                total += supports[(variable, neighbor)][value].bit_count()
            return total

        scored = sorted((-support(value), value) for value in order)
        return [value for _, value in scored]

    # -- consistency -----------------------------------------------------

    def _check(
        self,
        kernel: CompiledNetwork,
        variable: int,
        value: int,
        values: list[int | None],
        depth_of: list[int],
        stats: SolverStats,
    ) -> tuple[bool, set[int]]:
        """Check ``variable=value`` against all instantiated neighbors.

        Returns (consistent, conflict_depths).  In graph mode the
        conflict set is every instantiated neighbor (the adjacency
        information of Figure 3); in conflict mode it is only the
        neighbors whose constraint actually failed.
        """
        conflicts: set[int] = set()
        consistent = True
        supports = kernel.supports
        for neighbor in kernel.neighbors[variable]:
            neighbor_value = values[neighbor]
            if neighbor_value is None:
                continue
            stats.consistency_checks += 1
            if not (supports[(variable, neighbor)][value] >> neighbor_value) & 1:
                consistent = False
                if self._config.jump_mode == JUMP_CONFLICT:
                    conflicts.add(depth_of[neighbor])
        if not consistent and self._config.jump_mode == JUMP_GRAPH:
            conflicts = {
                depth_of[neighbor]
                for neighbor in kernel.neighbors[variable]
                if values[neighbor] is not None
            }
        return consistent, conflicts

"""The depth-first search engine behind the systematic solvers.

One engine implements the whole family of Section 4 solvers; the
behaviour toggles are exactly the three enhancements of the paper plus
the choice of jump rule:

* variable ordering: random (base) or most-constraining (enhanced);
* value ordering: random (base) or least-constraining (enhanced);
* dead-end handling: chronological backtracking (base), graph-based
  backjumping (enhanced, the rule the paper illustrates in Figure 3),
  or conflict-directed backjumping (sharper extension).

The implementation is the classic recursive conflict-set formulation:
``_search`` returns ``(solution, jump_depth, conflict_depths)``.  A
frame whose depth is above ``jump_depth`` simply unwinds; the frame at
``jump_depth`` resumes with its next value, merging the child's
conflict set into its own.  This is sound for both jump rules and for
dynamic variable orders because conflict sets always name *depths of
currently instantiated variables* responsible for the failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult, SolverStats, Stopwatch

Value = Hashable

#: Jump rule names accepted by the engine.
JUMP_CHRONOLOGICAL = "chronological"
JUMP_GRAPH = "graph"
JUMP_CONFLICT = "conflict"


@dataclass(frozen=True)
class EngineConfig:
    """Behaviour switches for :class:`SearchEngine`.

    Attributes:
        variable_ordering: use the most-constraining-variable rule
            instead of a random choice.
        value_ordering: use the least-constraining-value rule instead
            of a random shuffle.
        jump_mode: one of ``chronological``, ``graph`` or ``conflict``.
        seed: RNG seed for the random orderings (ignored when both
            ordering rules are enabled).
        max_nodes: optional node budget; when exhausted the solver
            stops and reports an *incomplete* result (None assignment
            with ``complete=False``) instead of running unboundedly.
    """

    variable_ordering: bool = False
    value_ordering: bool = False
    jump_mode: str = JUMP_CHRONOLOGICAL
    seed: int = 0
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.jump_mode not in (JUMP_CHRONOLOGICAL, JUMP_GRAPH, JUMP_CONFLICT):
            raise ValueError(f"unknown jump mode {self.jump_mode!r}")
        if self.max_nodes is not None and self.max_nodes <= 0:
            raise ValueError("max_nodes must be positive when given")


class _NodeBudgetExhausted(Exception):
    """Internal: raised when the engine's node budget runs out."""


class SearchEngine:
    """Configurable systematic solver over a :class:`ConstraintNetwork`."""

    def __init__(self, config: EngineConfig):
        self._config = config

    @property
    def config(self) -> EngineConfig:
        """The engine's configuration."""
        return self._config

    def solve(self, network: ConstraintNetwork) -> SolverResult:
        """Run the search to the first solution or to an UNSAT proof."""
        stats = SolverStats()
        rng = random.Random(self._config.seed)
        complete = True
        with Stopwatch(stats):
            assignment: dict[str, Value] = {}
            depth_of: dict[str, int] = {}
            try:
                solution, _, _ = self._search(
                    network, assignment, depth_of, rng, stats
                )
            except _NodeBudgetExhausted:
                solution = None
                complete = False
        return SolverResult(solution, stats, complete=complete)

    # -- search ---------------------------------------------------------

    def _search(
        self,
        network: ConstraintNetwork,
        assignment: dict[str, Value],
        depth_of: dict[str, int],
        rng: random.Random,
        stats: SolverStats,
    ) -> tuple[dict[str, Value] | None, int, set[int]]:
        depth = len(assignment)
        if depth == len(network.variables):
            return dict(assignment), depth, set()

        variable = self._select_variable(network, assignment, rng)
        conflict_union: set[int] = set()
        budget = self._config.max_nodes
        for value in self._order_values(network, variable, assignment, rng, stats):
            stats.nodes += 1
            if budget is not None and stats.nodes > budget:
                raise _NodeBudgetExhausted()
            consistent, conflicts = self._check(
                network, variable, value, assignment, depth_of, stats
            )
            if not consistent:
                conflict_union |= conflicts
                continue
            assignment[variable] = value
            depth_of[variable] = depth
            solution, jump, child_conflicts = self._search(
                network, assignment, depth_of, rng, stats
            )
            if solution is not None:
                return solution, jump, child_conflicts
            del assignment[variable]
            del depth_of[variable]
            if jump < depth:
                # We are being jumped over: unwind without retrying.
                return None, jump, child_conflicts
            conflict_union |= child_conflicts

        # Dead end: no value of `variable` extends the instantiation.
        if self._config.jump_mode == JUMP_CHRONOLOGICAL:
            stats.backtracks += 1
            return None, depth - 1, set(range(depth))
        if conflict_union:
            jump = max(conflict_union)
        else:
            jump = -1  # nothing above is responsible: unwind everything
        if jump < depth - 1:
            stats.backjumps += 1
        else:
            stats.backtracks += 1
        return None, jump, conflict_union - {jump}

    # -- heuristics -------------------------------------------------------

    def _select_variable(
        self,
        network: ConstraintNetwork,
        assignment: dict[str, Value],
        rng: random.Random,
    ) -> str:
        unassigned = [v for v in network.variables if v not in assignment]
        if not self._config.variable_ordering:
            return rng.choice(unassigned)
        # Most-constraining variable: maximize constraints to the not yet
        # instantiated part of the network ("detect a dead-end as early
        # as possible"); break ties toward higher total degree, then
        # smaller domain, then name (for determinism).
        def key(variable: str) -> tuple[int, int, int, str]:
            future_degree = sum(
                1
                for neighbor in network.neighbors(variable)
                if neighbor not in assignment
            )
            return (
                -future_degree,
                -network.degree(variable),
                len(network.domain(variable)),
                variable,
            )

        return min(unassigned, key=key)

    def _order_values(
        self,
        network: ConstraintNetwork,
        variable: str,
        assignment: dict[str, Value],
        rng: random.Random,
        stats: SolverStats,
    ) -> Sequence[Value]:
        values = list(network.domain(variable))
        if not self._config.value_ordering:
            rng.shuffle(values)
            return values
        # Least-constraining value: maximize the number of options left
        # for the uninstantiated neighbors.
        unassigned_neighbors = [
            neighbor
            for neighbor in network.neighbors(variable)
            if neighbor not in assignment
        ]

        def support(value: Value) -> int:
            total = 0
            for neighbor in unassigned_neighbors:
                constraint = network.constraint_between(variable, neighbor)
                assert constraint is not None
                for neighbor_value in network.domain(neighbor):
                    stats.consistency_checks += 1
                    if constraint.allows(variable, value, neighbor_value):
                        total += 1
            return total

        scored = [(-support(value), index, value) for index, value in enumerate(values)]
        scored.sort(key=lambda item: (item[0], item[1]))
        return [value for _, _, value in scored]

    # -- consistency -----------------------------------------------------

    def _check(
        self,
        network: ConstraintNetwork,
        variable: str,
        value: Value,
        assignment: dict[str, Value],
        depth_of: dict[str, int],
        stats: SolverStats,
    ) -> tuple[bool, set[int]]:
        """Check ``variable=value`` against all instantiated neighbors.

        Returns (consistent, conflict_depths).  In graph mode the
        conflict set is every instantiated neighbor (the adjacency
        information of Figure 3); in conflict mode it is only the
        neighbors whose constraint actually failed.
        """
        conflicts: set[int] = set()
        consistent = True
        for neighbor in network.neighbors(variable):
            if neighbor not in assignment:
                continue
            constraint = network.constraint_between(variable, neighbor)
            assert constraint is not None
            stats.consistency_checks += 1
            if not constraint.allows(variable, value, assignment[neighbor]):
                consistent = False
                if self._config.jump_mode == JUMP_CONFLICT:
                    conflicts.add(depth_of[neighbor])
        if not consistent and self._config.jump_mode == JUMP_GRAPH:
            conflicts = {
                depth_of[neighbor]
                for neighbor in network.neighbors(variable)
                if neighbor in assignment
            }
        return consistent, conflicts

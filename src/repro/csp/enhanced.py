"""The paper's *enhanced scheme* and its per-enhancement ablation.

Section 4 improves the base scheme in three independent ways:

1. **variable selection** -- instantiate the variable that "maximally
   constrains the rest of the search space";
2. **value selection** -- pick the value that "maximizes the number of
   options available for future assignments";
3. **backjumping** -- on a dead end, jump to the most recent
   instantiated variable that co-appears in a constraint with the
   dead-end variable instead of the chronologically previous one.

:class:`EnhancementConfig` lets each be toggled individually, which is
exactly what the Figure 4 breakdown experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.csp.engine import (
    EngineConfig,
    JUMP_CHRONOLOGICAL,
    JUMP_GRAPH,
    SearchEngine,
)
from repro.csp.compiled import CompiledNetwork
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult


@dataclass(frozen=True)
class EnhancementConfig:
    """Which of the three Section 4 enhancements are active."""

    variable_ordering: bool = True
    value_ordering: bool = True
    backjumping: bool = True

    @staticmethod
    def all_off() -> "EnhancementConfig":
        """The base scheme's configuration."""
        return EnhancementConfig(False, False, False)

    @staticmethod
    def all_on() -> "EnhancementConfig":
        """The full enhanced scheme."""
        return EnhancementConfig(True, True, True)

    def label(self) -> str:
        """Short label for reports: e.g. ``var+val+bj`` or ``base``."""
        parts = []
        if self.variable_ordering:
            parts.append("var")
        if self.value_ordering:
            parts.append("val")
        if self.backjumping:
            parts.append("bj")
        return "+".join(parts) if parts else "base"


class EnhancedSolver:
    """The enhanced scheme (all three improvements by default).

    Complete: if a solution exists it is found; the solution may differ
    from the base scheme's when several exist (the paper observes this
    for Med-Im04, Radar and Track in Table 3).
    """

    name = "enhanced"

    def __init__(
        self,
        config: EnhancementConfig | None = None,
        seed: int = 0,
        max_nodes: int | None = None,
        engine: str = "auto",
    ):
        self._config = config if config is not None else EnhancementConfig.all_on()
        self._engine = SearchEngine(
            EngineConfig(
                variable_ordering=self._config.variable_ordering,
                value_ordering=self._config.value_ordering,
                jump_mode=JUMP_GRAPH if self._config.backjumping else JUMP_CHRONOLOGICAL,
                seed=seed,
                max_nodes=max_nodes,
                engine=engine,
            )
        )

    @property
    def config(self) -> EnhancementConfig:
        """The active enhancement toggles."""
        return self._config

    def set_deadline(self, seconds: float) -> None:
        """Bound the next solve's wall clock (``complete=False`` on expiry)."""
        self._engine.set_deadline(seconds)

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Find one solution (or prove there is none)."""
        return self._engine.solve(network)

"""Weighted constraint networks and branch & bound (future work #1).

The paper's conclusion: "we would like to give weights to constraints.
This will help us distinguish between different solutions to a given
network."  Here each constraint carries a positive weight (for layout
networks: the estimated cost of the nest that generated it), and the
solver maximizes the total weight of *satisfied* constraints.  When the
hard network is satisfiable the optimum satisfies everything, and the
weights break ties between multiple solutions; when it is not, the
result is the best partial-locality compromise (a Max-CSP solution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.csp.compiled import CompiledNetwork, as_compiled
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverStats, Stopwatch
from repro.csp.vectorized import (
    ENGINE_AUTO,
    ENGINE_NATIVE,
    ENGINE_NUMPY,
    as_vectorized,
    numpy_available,
    resolve_engine,
)

Value = Hashable


class WeightedNetwork:
    """A constraint network plus a positive weight per constraint."""

    def __init__(
        self,
        network: ConstraintNetwork,
        weights: Mapping[frozenset[str], float] | None = None,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self._network = network
        self._weights: dict[frozenset[str], float] = {}
        for constraint in network.constraints:
            key = frozenset((constraint.first, constraint.second))
            weight = default_weight
            if weights is not None and key in weights:
                weight = weights[key]
            if weight <= 0:
                raise ValueError(f"constraint {sorted(key)} has non-positive weight")
            self._weights[key] = weight

    @property
    def network(self) -> ConstraintNetwork:
        """The underlying hard network."""
        return self._network

    def weight_between(self, first: str, second: str) -> float:
        """Weight of a constraint (0.0 when unconstrained)."""
        return self._weights.get(frozenset((first, second)), 0.0)

    @property
    def total_weight(self) -> float:
        """Sum of all constraint weights (the satisfiable optimum)."""
        return sum(self._weights.values())

    def satisfied_weight(self, assignment: Mapping[str, Value]) -> float:
        """Total weight of constraints satisfied by a total assignment."""
        total = 0.0
        for constraint in self._network.constraints:
            if constraint.allows(
                constraint.first,
                assignment[constraint.first],
                assignment[constraint.second],
            ):
                total += self.weight_between(constraint.first, constraint.second)
        return total


@dataclass(frozen=True)
class WeightedResult:
    """Outcome of a branch & bound run.

    Attributes:
        assignment: the best total assignment found.
        satisfied_weight: its satisfied constraint weight.
        optimal_weight: the network's total weight (equal to
            ``satisfied_weight`` iff the hard network is satisfiable).
        stats: search effort counters.
    """

    assignment: dict[str, Value]
    satisfied_weight: float
    optimal_weight: float
    stats: SolverStats

    @property
    def fully_satisfied(self) -> bool:
        """True iff every constraint is satisfied."""
        return abs(self.satisfied_weight - self.optimal_weight) < 1e-9


class BranchAndBoundSolver:
    """Exact Max-CSP solver: maximizes satisfied constraint weight.

    Branches over variables in static max-degree order; prunes a branch
    when the weight already lost (violated constraints among assigned
    variables) cannot be recovered.  The inner loop runs on the
    compiled kernel: a violation test is one shift-and-mask, weights
    are looked up per index pair.  The numpy engine
    (:mod:`repro.csp.vectorized`) computes each frame's per-value
    penalty vector with one support-column accumulation per
    instantiated neighbor -- same traversal, same effort counters, and
    bit-identical weights (the float additions happen in the same
    order).
    """

    name = "branch-and-bound"

    def __init__(self, engine: str = ENGINE_AUTO):
        self._engine = engine

    def solve(self, weighted: WeightedNetwork) -> WeightedResult:
        """Find the assignment maximizing satisfied weight (exact)."""
        kernel = as_compiled(weighted.network)
        weight_of = {
            pair: weighted.weight_between(kernel.names[pair[0]], kernel.names[pair[1]])
            for pair in kernel.pairs
        }
        return self._solve(kernel, weight_of)

    def solve_compiled(
        self,
        kernel: CompiledNetwork,
        weights: Mapping[frozenset[str], float] | None = None,
        default_weight: float = 1.0,
    ) -> WeightedResult:
        """Solve directly on a compiled kernel plus a name-keyed weight map.

        This is the path the service layer uses: the race ships one
        compiled kernel to every worker, so no worker rebuilds a
        :class:`WeightedNetwork` (or recompiles) just to attach weights.

        Raises:
            ValueError: for non-positive weights.
        """
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        weight_of: dict[tuple[int, int], float] = {}
        for first, second in kernel.pairs:
            key = frozenset((kernel.names[first], kernel.names[second]))
            weight = default_weight
            if weights is not None and key in weights:
                weight = weights[key]
            if weight <= 0:
                raise ValueError(f"constraint {sorted(key)} has non-positive weight")
            weight_of[(first, second)] = float(weight)
        return self._solve(kernel, weight_of)

    def _solve(
        self, kernel: CompiledNetwork, weight_of: dict[tuple[int, int], float]
    ) -> WeightedResult:
        # Index the weights under both orientations so the inner loop
        # never normalizes a pair.
        for (first, second), weight in list(weight_of.items()):
            weight_of[(second, first)] = weight
        vectorized = None
        resolved = resolve_engine(self._engine, kernel)
        # Branch-and-bound pricing has no C lowering; the native tier
        # borrows the numpy frame evaluator when the planes exist and
        # otherwise runs the plain per-pair loop (same search, same
        # result either way).
        if resolved == ENGINE_NUMPY or (
            resolved == ENGINE_NATIVE and numpy_available()
        ):
            vectorized = as_vectorized(kernel)
        stats = SolverStats()
        with Stopwatch(stats):
            order = sorted(
                range(kernel.variable_count),
                key=lambda v: (-len(kernel.neighbors[v]), kernel.name_rank[v]),
            )
            values: list[int | None] = [None] * kernel.variable_count
            best: dict[str, Value] = {}
            best_lost = float("inf")
            supports = kernel.supports
            neighbors = kernel.neighbors
            if vectorized is not None:
                import numpy as np

                penalty_frame = self._penalty_frame(
                    np, vectorized, weight_of, values
                )

            def search(index: int, lost: float) -> None:
                nonlocal best, best_lost
                if lost >= best_lost:
                    return
                if index == len(order):
                    best = kernel.to_named(values)
                    best_lost = lost
                    return
                variable = order[index]
                if vectorized is not None:
                    # Instantiated neighbors are fixed for the whole
                    # frame: price every candidate value in one pass.
                    penalties, instantiated = penalty_frame(variable)
                    for value in range(kernel.domain_size(variable)):
                        stats.nodes += 1
                        stats.consistency_checks += instantiated
                        values[variable] = value
                        search(index + 1, lost + penalties[value])
                        values[variable] = None
                    return
                for value in range(kernel.domain_size(variable)):
                    stats.nodes += 1
                    additional = 0.0
                    for neighbor in neighbors[variable]:
                        neighbor_value = values[neighbor]
                        if neighbor_value is None:
                            continue
                        stats.consistency_checks += 1
                        if not (
                            supports[(variable, neighbor)][value] >> neighbor_value
                        ) & 1:
                            additional += weight_of[(variable, neighbor)]
                    values[variable] = value
                    search(index + 1, lost + additional)
                    values[variable] = None

            search(0, 0.0)
        total = sum(weight for pair, weight in weight_of.items() if pair[0] < pair[1])
        return WeightedResult(best, total - best_lost, total, stats)

    @staticmethod
    def _penalty_frame(np, vectorized, weight_of, values):
        """Build the per-frame penalty evaluator for the numpy engine.

        Returns a callable mapping a variable to ``(penalties,
        instantiated_count)`` where ``penalties[a]`` is the weight lost
        by assigning value ``a`` given the currently instantiated
        neighbors.  The accumulation adds the same weights in the same
        neighbor order as the bitset loop (plus exact zeros for
        satisfied pairs), so the floats are bit-identical.
        """
        count = vectorized.variable_count
        weight_rows = np.zeros((count, max(1, vectorized.max_degree)))
        for v in range(count):
            for d, n in enumerate(vectorized.neighbor_lists[v]):
                weight_rows[v, d] = weight_of[(v, n)]

        def penalty_frame(variable):
            domain = vectorized.domain_size_list[variable]
            penalties = np.zeros(domain)
            instantiated = 0
            for d, neighbor in enumerate(vectorized.neighbor_lists[variable]):
                neighbor_value = values[neighbor]
                if neighbor_value is None:
                    continue
                instantiated += 1
                column = vectorized.support_tensor[
                    variable, d, :domain, neighbor_value
                ]
                penalties = penalties + weight_rows[variable, d] * (1.0 - column)
            return penalties.tolist(), instantiated

        return penalty_frame

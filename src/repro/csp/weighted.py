"""Weighted constraint networks and branch & bound (future work #1).

The paper's conclusion: "we would like to give weights to constraints.
This will help us distinguish between different solutions to a given
network."  Here each constraint carries a positive weight (for layout
networks: the estimated cost of the nest that generated it), and the
solver maximizes the total weight of *satisfied* constraints.  When the
hard network is satisfiable the optimum satisfies everything, and the
weights break ties between multiple solutions; when it is not, the
result is the best partial-locality compromise (a Max-CSP solution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverStats, Stopwatch

Value = Hashable


class WeightedNetwork:
    """A constraint network plus a positive weight per constraint."""

    def __init__(
        self,
        network: ConstraintNetwork,
        weights: Mapping[frozenset[str], float] | None = None,
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self._network = network
        self._weights: dict[frozenset[str], float] = {}
        for constraint in network.constraints:
            key = frozenset((constraint.first, constraint.second))
            weight = default_weight
            if weights is not None and key in weights:
                weight = weights[key]
            if weight <= 0:
                raise ValueError(f"constraint {sorted(key)} has non-positive weight")
            self._weights[key] = weight

    @property
    def network(self) -> ConstraintNetwork:
        """The underlying hard network."""
        return self._network

    def weight_between(self, first: str, second: str) -> float:
        """Weight of a constraint (0.0 when unconstrained)."""
        return self._weights.get(frozenset((first, second)), 0.0)

    @property
    def total_weight(self) -> float:
        """Sum of all constraint weights (the satisfiable optimum)."""
        return sum(self._weights.values())

    def satisfied_weight(self, assignment: Mapping[str, Value]) -> float:
        """Total weight of constraints satisfied by a total assignment."""
        total = 0.0
        for constraint in self._network.constraints:
            if constraint.allows(
                constraint.first,
                assignment[constraint.first],
                assignment[constraint.second],
            ):
                total += self.weight_between(constraint.first, constraint.second)
        return total


@dataclass(frozen=True)
class WeightedResult:
    """Outcome of a branch & bound run.

    Attributes:
        assignment: the best total assignment found.
        satisfied_weight: its satisfied constraint weight.
        optimal_weight: the network's total weight (equal to
            ``satisfied_weight`` iff the hard network is satisfiable).
        stats: search effort counters.
    """

    assignment: dict[str, Value]
    satisfied_weight: float
    optimal_weight: float
    stats: SolverStats

    @property
    def fully_satisfied(self) -> bool:
        """True iff every constraint is satisfied."""
        return abs(self.satisfied_weight - self.optimal_weight) < 1e-9


class BranchAndBoundSolver:
    """Exact Max-CSP solver: maximizes satisfied constraint weight.

    Branches over variables in static max-degree order; prunes a branch
    when the weight already lost (violated constraints among assigned
    variables) cannot be recovered.
    """

    name = "branch-and-bound"

    def solve(self, weighted: WeightedNetwork) -> WeightedResult:
        """Find the assignment maximizing satisfied weight (exact)."""
        network = weighted.network
        stats = SolverStats()
        with Stopwatch(stats):
            order = sorted(
                network.variables,
                key=lambda v: (-network.degree(v), v),
            )
            best: dict[str, Value] = {}
            best_lost = float("inf")

            def search(index: int, assignment: dict[str, Value], lost: float) -> None:
                nonlocal best, best_lost
                if lost >= best_lost:
                    return
                if index == len(order):
                    best = dict(assignment)
                    best_lost = lost
                    return
                variable = order[index]
                for value in network.domain(variable):
                    stats.nodes += 1
                    additional = 0.0
                    for neighbor in network.neighbors(variable):
                        if neighbor not in assignment:
                            continue
                        constraint = network.constraint_between(variable, neighbor)
                        assert constraint is not None
                        stats.consistency_checks += 1
                        if not constraint.allows(
                            variable, value, assignment[neighbor]
                        ):
                            additional += weighted.weight_between(variable, neighbor)
                    assignment[variable] = value
                    search(index + 1, assignment, lost + additional)
                    del assignment[variable]

            search(0, {}, 0.0)
        total = weighted.total_weight
        return WeightedResult(best, total - best_lost, total, stats)

"""The paper's *base scheme*: chronological backtracking.

"It starts with an assignment of a variable (e.g., randomly selected)
and then increases the number of partial instantiations.  When it is
found that no solution can exist based on the current partial
instantiation, it backtracks to the previous variable instantiated"
(Section 4).  Both the variable picked at each forward step and the
order of attempted values are random, seeded for reproducibility.
"""

from __future__ import annotations

from repro.csp.engine import EngineConfig, JUMP_CHRONOLOGICAL, SearchEngine
from repro.csp.compiled import CompiledNetwork
from repro.csp.network import ConstraintNetwork
from repro.csp.stats import SolverResult


class BacktrackingSolver:
    """Base scheme: random orders, chronological dead-end handling.

    Complete: a ``None`` assignment in the result proves
    unsatisfiability.
    """

    name = "base"

    def __init__(
        self, seed: int = 0, max_nodes: int | None = None, engine: str = "auto"
    ):
        self._engine = SearchEngine(
            EngineConfig(
                variable_ordering=False,
                value_ordering=False,
                jump_mode=JUMP_CHRONOLOGICAL,
                seed=seed,
                max_nodes=max_nodes,
                engine=engine,
            )
        )

    def set_deadline(self, seconds: float) -> None:
        """Bound the next solve's wall clock (``complete=False`` on expiry)."""
        self._engine.set_deadline(seconds)

    def solve(self, network: ConstraintNetwork | CompiledNetwork) -> SolverResult:
        """Find one solution (or prove there is none)."""
        return self._engine.solve(network)

"""ASCII visualizations of the paper's illustrative figures."""

from repro.viz.chart import ranking_agreement_chart, stacked_bar_chart
from repro.viz.layout_art import render_layout_grid, layout_gallery
from repro.viz.search_art import render_search_trace, TraceRecorder

__all__ = [
    "ranking_agreement_chart",
    "stacked_bar_chart",
    "render_layout_grid",
    "layout_gallery",
    "render_search_trace",
    "TraceRecorder",
]

"""ASCII visualizations of the paper's illustrative figures."""

from repro.viz.layout_art import render_layout_grid, layout_gallery
from repro.viz.search_art import render_search_trace, TraceRecorder

__all__ = [
    "render_layout_grid",
    "layout_gallery",
    "render_search_trace",
    "TraceRecorder",
]

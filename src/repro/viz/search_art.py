"""Textual search traces (the paper's Figure 3).

:class:`TraceRecorder` replays a solver's decisions on small networks
so the difference between chronological backtracking and backjumping is
visible: on a dead end the backjumper skips variables that share no
constraint with the dead-end variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.csp.network import ConstraintNetwork

Value = Hashable


@dataclass
class TraceRecorder:
    """Collects (event, detail) lines during an instrumented search."""

    events: list[str] = field(default_factory=list)

    def assign(self, variable: str, value: Value) -> None:
        """Record a forward-phase instantiation."""
        self.events.append(f"assign   {variable} = {value!r}")

    def reject(self, variable: str, value: Value) -> None:
        """Record a consistency failure for a tried value."""
        self.events.append(f"reject   {variable} = {value!r}")

    def backtrack(self, source: str, target: str) -> None:
        """Record a chronological step back."""
        self.events.append(f"backtrack {source} -> {target}")

    def backjump(self, source: str, target: str, skipped: int) -> None:
        """Record a jump that skipped ``skipped`` variables."""
        self.events.append(
            f"backjump  {source} -> {target} (skipped {skipped})"
        )

    def solution(self) -> None:
        """Record success."""
        self.events.append("solution found")

    def render(self) -> str:
        """The trace as a numbered text block."""
        return "\n".join(
            f"{index + 1:3d}. {event}" for index, event in enumerate(self.events)
        )


def traced_backtracking(
    network: ConstraintNetwork,
    order: list[str],
    recorder: TraceRecorder,
    backjumping: bool,
) -> dict[str, Value] | None:
    """A small, static-order solver that narrates its decisions.

    Intentionally simple (static variable order, no value heuristics):
    the purpose is the Figure 3 illustration, not performance.  Returns
    the solution or None.
    """
    assignment: dict[str, Value] = {}

    def search(depth: int) -> tuple[dict[str, Value] | None, int]:
        if depth == len(order):
            recorder.solution()
            return dict(assignment), depth
        variable = order[depth]
        for value in network.domain(variable):
            consistent = True
            for earlier in order[:depth]:
                if not network.check_pair(
                    variable, value, earlier, assignment[earlier]
                ):
                    consistent = False
                    break
            if not consistent:
                recorder.reject(variable, value)
                continue
            recorder.assign(variable, value)
            assignment[variable] = value
            solution, jump = search(depth + 1)
            if solution is not None:
                return solution, jump
            del assignment[variable]
            if jump < depth:
                return None, jump
        # Dead end.
        if backjumping:
            connected = [
                index
                for index in range(depth)
                if network.constraint_between(variable, order[index]) is not None
            ]
            target = max(connected) if connected else -1
            if target >= 0:
                recorder.backjump(
                    variable, order[target], depth - 1 - target
                )
            return None, target
        if depth > 0:
            recorder.backtrack(variable, order[depth - 1])
        return None, depth - 1

    solution, _ = search(0)
    return solution


def render_search_trace(
    network: ConstraintNetwork, order: list[str], backjumping: bool
) -> str:
    """Run the traced solver and return the rendered narration."""
    recorder = TraceRecorder()
    traced_backtracking(network, order, recorder, backjumping)
    mode = "backjumping" if backjumping else "backtracking"
    return f"[{mode}]\n{recorder.render()}"

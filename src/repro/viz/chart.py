"""ASCII bar charts (Figure 4 breakdown, ranking agreement)."""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fill characters per series, cycled.
_FILLS = "#=+*o"


def ranking_agreement_chart(
    labels: Sequence[str],
    analytic: Sequence[float],
    refined: Sequence[float],
    refined_name: str = "simulated",
    width: int = 24,
) -> str:
    """Side-by-side ranks of two cost models over the same candidates.

    Each candidate gets its rank under both scorings plus a bar of its
    refined score (normalized to the worst candidate); a trailing line
    reports the Kendall tau.  This is the picture of where the
    analytic model mispredicted -- rows whose two ranks differ.

    Raises:
        ValueError: on length mismatch or empty input.
    """
    from repro.eval.agreement import kendall_tau, rank_positions

    if not labels or len(labels) != len(analytic) or len(labels) != len(refined):
        raise ValueError("need equal, nonempty labels/analytic/refined")
    analytic_ranks = rank_positions(analytic)
    refined_ranks = rank_positions(refined)
    label_width = max(len(label) for label in labels)
    worst = max(refined)
    lines = [
        f"{'candidate'.ljust(label_width)}  analytic  {refined_name:<9} "
        f"{refined_name} score"
    ]
    for index, label in enumerate(labels):
        marker = " " if analytic_ranks[index] == refined_ranks[index] else "!"
        bar = "#" * max(
            1, int(round(width * (refined[index] / worst))) if worst > 0 else 1
        )
        lines.append(
            f"{label.ljust(label_width)}  #{analytic_ranks[index]:<7} "
            f"#{refined_ranks[index]:<7}{marker} {bar} {refined[index]:,.0f}"
        )
    tau = kendall_tau(analytic, refined)
    lines.append(
        f"agreement: tau={tau:+.2f} "
        f"('!' rows are where the analytic model mispredicted)"
    )
    return "\n".join(lines)


def stacked_bar_chart(
    rows: Mapping[str, Sequence[float]],
    series: Sequence[str],
    width: int = 50,
) -> str:
    """Render 100%-stacked horizontal bars.

    Args:
        rows: label -> one share per series (shares are normalized).
        series: series names, in stacking order.
        width: bar width in characters.

    >>> print(stacked_bar_chart({"x": [1, 1]}, ["a", "b"], width=8))
    x  ####====  a 50.0% / b 50.0%
    <BLANKLINE>
    legend: a '#'  b '='
    """
    if not series:
        raise ValueError("need at least one series")
    label_width = max(len(label) for label in rows) if rows else 0
    lines = []
    for label, values in rows.items():
        if len(values) != len(series):
            raise ValueError(f"row {label!r} has {len(values)} values, "
                             f"expected {len(series)}")
        total = float(sum(values))
        if total <= 0:
            shares = [0.0] * len(values)
        else:
            shares = [value / total for value in values]
        cells = [int(round(share * width)) for share in shares]
        # Fix rounding drift so the bar is exactly `width` wide.
        drift = width - sum(cells)
        if cells and total > 0:
            cells[cells.index(max(cells))] += drift
        bar = "".join(
            _FILLS[index % len(_FILLS)] * count
            for index, count in enumerate(cells)
        )
        annotation = " / ".join(
            f"{name} {100 * share:.1f}%"
            for name, share in zip(series, shares)
        )
        lines.append(f"{label.ljust(label_width)}  {bar}  {annotation}")
    legend = "  ".join(
        f"{name} '{_FILLS[index % len(_FILLS)]}'"
        for index, name in enumerate(series)
    )
    lines.append("")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)

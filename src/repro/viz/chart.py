"""ASCII bar charts (used for the Figure 4 breakdown)."""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fill characters per series, cycled.
_FILLS = "#=+*o"


def stacked_bar_chart(
    rows: Mapping[str, Sequence[float]],
    series: Sequence[str],
    width: int = 50,
) -> str:
    """Render 100%-stacked horizontal bars.

    Args:
        rows: label -> one share per series (shares are normalized).
        series: series names, in stacking order.
        width: bar width in characters.

    >>> print(stacked_bar_chart({"x": [1, 1]}, ["a", "b"], width=8))
    x  ####====  a 50.0% / b 50.0%
    <BLANKLINE>
    legend: a '#'  b '='
    """
    if not series:
        raise ValueError("need at least one series")
    label_width = max(len(label) for label in rows) if rows else 0
    lines = []
    for label, values in rows.items():
        if len(values) != len(series):
            raise ValueError(f"row {label!r} has {len(values)} values, "
                             f"expected {len(series)}")
        total = float(sum(values))
        if total <= 0:
            shares = [0.0] * len(values)
        else:
            shares = [value / total for value in values]
        cells = [int(round(share * width)) for share in shares]
        # Fix rounding drift so the bar is exactly `width` wide.
        drift = width - sum(cells)
        if cells and total > 0:
            cells[cells.index(max(cells))] += drift
        bar = "".join(
            _FILLS[index % len(_FILLS)] * count
            for index, count in enumerate(cells)
        )
        annotation = " / ".join(
            f"{name} {100 * share:.1f}%"
            for name, share in zip(series, shares)
        )
        lines.append(f"{label.ljust(label_width)}  {bar}  {annotation}")
    legend = "  ".join(
        f"{name} '{_FILLS[index % len(_FILLS)]}'"
        for index, name in enumerate(series)
    )
    lines.append("")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)

"""ASCII rendering of hyperplane layouts (the paper's Figure 1).

Each array element is drawn as the symbol of its hyperplane constant
``c = y . d`` (mod the symbol alphabet), so elements stored together
share a symbol: rows of equal symbols for (1 0), columns for (0 1),
diagonals for (1 -1), anti-diagonals for (1 1).
"""

from __future__ import annotations

from repro.layout.hyperplane import Hyperplane
from repro.layout.layout import Layout, antidiagonal, column_major, diagonal, row_major

_SYMBOLS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_layout_grid(layout: Layout, size: int = 8) -> str:
    """Draw a size x size 2-D array under a 2-D layout.

    Raises:
        ValueError: for layouts of other dimensionalities.
    """
    if layout.dimension != 2:
        raise ValueError("render_layout_grid draws 2-D layouts only")
    hyperplane = Hyperplane(layout.rows[0])
    lines = []
    for row in range(size):
        symbols = []
        for column in range(size):
            constant = hyperplane.constant_for((row, column))
            symbols.append(_SYMBOLS[constant % len(_SYMBOLS)])
        lines.append(" ".join(symbols))
    return "\n".join(lines)


def layout_gallery(size: int = 8) -> str:
    """The four Figure 1 layouts side by side with their vectors."""
    entries = [
        ("(a) row-major", row_major(2)),
        ("(b) column-major", column_major(2)),
        ("(c) diagonal", diagonal()),
        ("(d) anti-diagonal", antidiagonal()),
    ]
    blocks = []
    for title, layout in entries:
        vector = Hyperplane(layout.rows[0])
        header = f"{title}  {vector}"
        blocks.append(header + "\n" + render_layout_grid(layout, size))
    return "\n\n".join(blocks)

"""How much do two cost models agree about a candidate ranking?

The simulation-guided loop is only worth its cycles where the analytic
model mispredicts; these helpers quantify that.  ``kendall_tau`` is
the classic concordant-minus-discordant pair statistic (tau-a over
untied pairs): 1.0 when two models order every candidate pair the same
way, -1.0 when they disagree on all of them.
"""

from __future__ import annotations

from typing import Sequence


def rank_positions(values: Sequence[float]) -> list[int]:
    """1-based ranks, best (lowest) value first; ties broken by index.

    >>> rank_positions([30.0, 10.0, 20.0])
    [3, 1, 2]
    """
    order = sorted(range(len(values)), key=lambda i: (values[i], i))
    ranks = [0] * len(values)
    for position, index in enumerate(order):
        ranks[index] = position + 1
    return ranks


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Rank correlation of two scorings of the same candidates.

    Pairs tied in either scoring are ignored; with fewer than two
    comparable pairs the correlation is defined as 1.0 (nothing to
    disagree about).

    Raises:
        ValueError: on length mismatch.
    """
    if len(a) != len(b):
        raise ValueError("scorings must have equal length")
    concordant = 0
    discordant = 0
    for i in range(len(a)):
        for j in range(i + 1, len(a)):
            first = (a[i] > a[j]) - (a[i] < a[j])
            second = (b[i] > b[j]) - (b[i] < b[j])
            if first == 0 or second == 0:
                continue
            if first == second:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total

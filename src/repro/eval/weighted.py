"""The weighted cost model: violated nest-cost constraint weight.

Scores a candidate by how much of the layout network it fails to
satisfy, weighting every violated constraint by the estimated cost of
the nests that generated it -- the branch & bound's Max-CSP objective
turned into a reusable evaluator.  A candidate satisfying the whole
network costs 0.0; comparisons between partial-locality compromises
follow the paper's future-work weighting.
"""

from __future__ import annotations

from typing import Mapping

from repro.eval.cost import Cost, register_cost_model
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.opt.network_builder import BuildOptions, LayoutNetwork, build_layout_network
from repro.transform.unimodular_loop import LoopTransform


@register_cost_model("weighted")
class WeightedCostModel:
    """Violated constraint weight over the program's layout network.

    Args:
        options: network-construction options (must match how the
            candidate was produced for the score to mean anything).
        network: a prebuilt :class:`LayoutNetwork` to score against,
            skipping construction -- callers scoring many candidates
            of one program should pass it.
    """

    name = "weighted"

    def __init__(
        self,
        options: BuildOptions | None = None,
        network: LayoutNetwork | None = None,
    ):
        self._options = options if options is not None else BuildOptions()
        self._network = network

    def score(
        self,
        program: Program,
        layouts: Mapping[str, Layout],
        transforms: Mapping[str, LoopTransform] | None = None,
    ) -> Cost:
        layout_network = self._network
        if layout_network is None:
            layout_network = build_layout_network(program, self._options)
        network = layout_network.network
        satisfied = 0.0
        violated = 0.0
        for constraint in network.constraints:
            weight = layout_network.weights.get(
                frozenset((constraint.first, constraint.second)), 1.0
            )
            first = layouts.get(constraint.first)
            second = layouts.get(constraint.second)
            if first is not None and second is not None and constraint.allows(
                constraint.first, first, second
            ):
                satisfied += weight
            else:
                violated += weight
        return Cost(
            model=self.name,
            value=violated,
            unit="violated-weight",
            details={
                "satisfied_weight": satisfied,
                "total_weight": satisfied + violated,
            },
        )

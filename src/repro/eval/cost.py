"""The :class:`CostModel` protocol and its registry.

Before this layer existed the repo had three unrelated evaluators --
the locality counts driving network construction, the weighted
nest-cost objective of the branch & bound, and the trace-driven cache
simulator -- each with its own calling convention, reachable from
different layers.  A :class:`CostModel` gives them one face:

``score(program, layouts, transforms) -> Cost``

where lower ``Cost.value`` is better.  Implementations register under
a short name (``analytic``, ``weighted``, ``simulated``) so the
optimizer, the service and the benchmarks select evaluators by
configuration instead of by import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, runtime_checkable

from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.transform.unimodular_loop import LoopTransform


@dataclass(frozen=True)
class Cost:
    """One evaluator's verdict on a candidate (layouts, transforms).

    Attributes:
        model: registered name of the model that produced it.
        value: the score; **lower is better**.  Units differ by model
            (see ``unit``) -- costs are comparable only within a model.
        unit: human-readable unit ("cycles", "est-misses", "violated-weight").
        details: model-specific breakdown (e.g. the per-level cache
            report for the simulated model).
    """

    model: str
    value: float
    unit: str
    details: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.model}: {self.value:,.0f} {self.unit}"


@runtime_checkable
class CostModel(Protocol):
    """Anything that can price a candidate layout assignment."""

    name: str

    def score(
        self,
        program: Program,
        layouts: Mapping[str, Layout],
        transforms: Mapping[str, LoopTransform] | None = None,
    ) -> Cost:
        """Price the candidate; lower :attr:`Cost.value` is better."""
        ...


_FACTORIES: dict[str, Callable[..., CostModel]] = {}


def register_cost_model(name: str):
    """Class decorator registering a cost-model factory under ``name``.

    The decorated class is instantiated by :func:`get_cost_model` with
    whatever keyword arguments the caller supplies.

    Raises:
        ValueError: when the name is already taken by a different
            factory (re-registering the same class is a no-op, which
            keeps module reloads harmless).
    """

    def decorate(factory: Callable[..., CostModel]):
        existing = _FACTORIES.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"cost model {name!r} is already registered")
        _FACTORIES[name] = factory
        return factory

    return decorate


def available_cost_models() -> tuple[str, ...]:
    """Registered cost-model names, sorted."""
    _load_builtins()
    return tuple(sorted(_FACTORIES))


def get_cost_model(name: str, **kwargs) -> CostModel:
    """Instantiate a registered cost model by name.

    Raises:
        ValueError: for an unknown name.
    """
    _load_builtins()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown cost model {name!r}; know {available_cost_models()}"
        )
    return factory(**kwargs)


def _load_builtins() -> None:
    """Import the built-in models so their registrations run."""
    from repro.eval import analytic, simulated, weighted  # noqa: F401

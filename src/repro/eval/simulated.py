"""The simulated cost model: cycles from the batch cache simulator.

The empirical pillar of the paper (Table 3) as a first-class
evaluator.  One model instance owns one resettable
:class:`~repro.cachesim.hierarchy.MemoryHierarchy` and reuses it
across evaluations, so scoring k candidates of one program pays cache
construction once; the compiled batch engine keeps a single
evaluation fast enough for the request path.  Per-instance
:class:`~repro.cachesim.hierarchy.HierarchyConfig` means one service
deployment can price the same program for many machine models.
"""

from __future__ import annotations

from typing import Mapping

from repro.cachesim.cpu import CPUConfig
from repro.cachesim.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.eval.cost import Cost, register_cost_model
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.simul.executor import resolve_engine, simulate_program
from repro.transform.unimodular_loop import LoopTransform


@register_cost_model("simulated")
class SimulatedCostModel:
    """Simulated execution cycles on a configurable machine model.

    Args:
        hierarchy_config: cache geometry/latencies (paper's by default).
        cpu_config: issue model (paper's dual-issue by default).
        engine: simulation engine ("auto" picks the compiled batch
            engine when numpy is available).
        max_iterations_per_nest: iteration-space sampling cap for
            large nests (see :func:`repro.simul.simulate_program`);
            ``None`` simulates exactly.
        validate: bounds-check programs before simulating.
    """

    name = "simulated"

    def __init__(
        self,
        hierarchy_config: HierarchyConfig | None = None,
        cpu_config: CPUConfig | None = None,
        engine: str = "auto",
        max_iterations_per_nest: int | None = None,
        validate: bool = True,
    ):
        self.hierarchy_config = (
            hierarchy_config if hierarchy_config is not None else HierarchyConfig()
        )
        self.cpu_config = cpu_config
        self.engine = resolve_engine(engine)
        self.max_iterations_per_nest = max_iterations_per_nest
        self.validate = validate
        # One hierarchy, reset per evaluation: construction amortized
        # across every candidate this model ever scores.
        self._hierarchy = MemoryHierarchy(self.hierarchy_config)

    def score(
        self,
        program: Program,
        layouts: Mapping[str, Layout],
        transforms: Mapping[str, LoopTransform] | None = None,
    ) -> Cost:
        result = simulate_program(
            program,
            layouts,
            transforms=transforms,
            cpu_config=self.cpu_config,
            validate=self.validate,
            engine=self.engine,
            hierarchy=self._hierarchy,
            max_iterations_per_nest=self.max_iterations_per_nest,
        )
        return Cost(
            model=self.name,
            value=float(result.cycles),
            unit="cycles",
            details={
                "instructions": result.instructions,
                "memory_accesses": result.memory_accesses,
                "cache_report": result.cache_report,
                "l1_miss_rate": result.l1_miss_rate,
                "footprint_bytes": result.footprint_bytes,
                "engine": result.engine,
                "sampled": result.sampled,
                "hierarchy": self.hierarchy_config.fingerprint(),
            },
        )

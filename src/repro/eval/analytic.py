"""The analytic cost model: Section 2 locality classes, priced.

This is the evaluator implicit in the optimizer all along: classify
every reference (under the innermost direction its nest executes with)
as temporal / spatial / no-locality and charge the estimated number of
cache misses.  A no-locality reference misses roughly once per
iteration; a spatial one once per line's worth of elements; a temporal
one never.  No machine state is simulated, so it is by far the
cheapest model -- and the one the ``simulated`` model exists to keep
honest.
"""

from __future__ import annotations

from typing import Mapping

from repro.eval.cost import Cost, register_cost_model
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.layout.locality import (
    access_delta,
    has_spatial_locality,
    has_temporal_locality,
)
from repro.transform.unimodular_loop import LoopTransform


@register_cost_model("analytic")
class AnalyticCostModel:
    """Estimated data-cache misses from locality classification.

    Args:
        line_size: cache line size in bytes used to price spatial
            locality (one miss per line of consecutive elements).
    """

    name = "analytic"

    def __init__(self, line_size: int = 32):
        if line_size <= 0:
            raise ValueError("line_size must be positive")
        self._line_size = line_size

    def score(
        self,
        program: Program,
        layouts: Mapping[str, Layout],
        transforms: Mapping[str, LoopTransform] | None = None,
    ) -> Cost:
        transforms = transforms or {}
        total = 0.0
        classes = {"temporal": 0, "spatial": 0, "none": 0}
        for nest in program.nests:
            transform = transforms.get(nest.name)
            if transform is not None:
                direction = transform.innermost_direction()
            else:
                direction = tuple([0] * (nest.depth - 1) + [1])
            order = nest.index_order
            iterations = nest.weight * nest.trip_count
            for reference in nest.body:
                layout = layouts.get(reference.array)
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta):
                    classes["temporal"] += 1
                    continue
                if layout is not None and has_spatial_locality(layout, delta):
                    classes["spatial"] += 1
                    element_size = program.array(reference.array).element_size
                    total += iterations * element_size / self._line_size
                else:
                    classes["none"] += 1
                    total += iterations
        return Cost(
            model=self.name,
            value=total,
            unit="est-misses",
            details={"reference_classes": classes},
        )

"""The unified evaluation layer: pluggable cost models.

Everything that prices a candidate layout assignment lives behind one
protocol (:class:`~repro.eval.cost.CostModel`) and one registry:

========== ==================== ==========================================
name       unit                 what it measures
========== ==================== ==========================================
analytic   est-misses           Section 2 locality classes, priced per
                                reference (no machine state; cheapest)
weighted   violated-weight      nest-cost weight of the layout-network
                                constraints the candidate violates
simulated  cycles               trace-driven execution on the batch cache
                                simulator (configurable machine model)
========== ==================== ==========================================

``LayoutOptimizer(refine="simulated")`` closes the loop: the CSP
search proposes top-k candidates analytically, the simulator re-ranks
them empirically.  The service's ``evaluate`` request kind serves the
same models remotely with per-request hierarchy overrides.
"""

from repro.eval.agreement import kendall_tau, rank_positions
from repro.eval.analytic import AnalyticCostModel
from repro.eval.cost import (
    Cost,
    CostModel,
    available_cost_models,
    get_cost_model,
    register_cost_model,
)
from repro.eval.simulated import SimulatedCostModel
from repro.eval.weighted import WeightedCostModel

__all__ = [
    "Cost",
    "CostModel",
    "available_cost_models",
    "get_cost_model",
    "register_cost_model",
    "AnalyticCostModel",
    "WeightedCostModel",
    "SimulatedCostModel",
    "kendall_tau",
    "rank_positions",
]

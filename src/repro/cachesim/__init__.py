"""Trace-driven cache hierarchy and CPU timing model.

The paper evaluates execution time with SimpleScalar, modelling "an
embedded processor that can issue and execute two instructions in
parallel" with 8KB 2-way 32B-line split L1 caches, a unified 64KB 4-way
64B-line L2, and 1/6/70-cycle L1/L2/memory latencies (Section 5).  This
package is our from-scratch substitute: a trace-driven, write-back /
write-allocate set-associative cache model plus a dual-issue in-order
timing model.  Relative execution times under different memory layouts
-- all Table 3 needs -- are faithfully reproduced because they are
dominated by data-cache hit/miss behaviour on the reference stream.
"""

from repro.cachesim.cache import Cache, ReplacementPolicy
from repro.cachesim.hierarchy import MemoryHierarchy, HierarchyConfig, paper_hierarchy
from repro.cachesim.cpu import DualIssueCPU, CPUConfig
from repro.cachesim.stats import CacheStats

__all__ = [
    "Cache",
    "ReplacementPolicy",
    "MemoryHierarchy",
    "HierarchyConfig",
    "paper_hierarchy",
    "DualIssueCPU",
    "CPUConfig",
    "CacheStats",
]

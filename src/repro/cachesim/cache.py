"""A single set-associative cache level.

Write-back, write-allocate, with LRU (default), FIFO or seeded-random
replacement.  The access interface is line-granular via
:meth:`Cache.access_line`; byte-granular accesses that may straddle a
line boundary go through :meth:`Cache.access`, which splits them.

The implementation is optimized for trace-driven simulation in pure
Python: each set is a list of tags in recency order (MRU last), and the
hot path avoids attribute lookups where it matters.
"""

from __future__ import annotations

import enum
import random
from typing import Iterator, Sequence

from repro.cachesim.stats import CacheStats


class ReplacementPolicy(enum.Enum):
    """Victim selection policy."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class Cache:
    """One set-associative cache level.

    Args:
        name: label used in reports ("L1D", "L2", ...).
        size_bytes: total capacity; must be divisible into sets.
        associativity: ways per set.
        line_size: line (block) size in bytes; power of two.
        policy: replacement policy.
        seed: RNG seed (used only by the RANDOM policy).

    Raises:
        ValueError: for inconsistent geometry.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_size: int,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
        seed: int = 0,
    ):
        if not _is_power_of_two(line_size):
            raise ValueError(f"{name}: line size must be a power of two")
        if size_bytes <= 0 or associativity <= 0:
            raise ValueError(f"{name}: size and associativity must be positive")
        if size_bytes % (associativity * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"associativity*line ({associativity}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.policy = policy
        self.num_sets = size_bytes // (associativity * line_size)
        if not _is_power_of_two(self.num_sets):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self.stats = CacheStats()
        self._seed = seed
        self._rng = random.Random(seed)
        # Per set: list of tags, recency order (MRU last) for LRU,
        # insertion order for FIFO.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: list[set[int]] = [set() for _ in range(self.num_sets)]

    # -- core access -------------------------------------------------------

    def access_line(self, line_address: int, is_write: bool) -> bool:
        """Access one line (already line-aligned index, not a byte address).

        Returns:
            True on hit, False on miss.  On a miss the line is filled
            (write-allocate); a dirty victim increments ``writebacks``.
        """
        set_index = line_address & (self.num_sets - 1)
        tag = line_address >> 0  # full line id kept as tag (simpler, exact)
        tags = self._sets[set_index]
        stats = self.stats
        stats.accesses += 1
        if tag in tags:
            stats.hits += 1
            if self.policy is ReplacementPolicy.LRU:
                tags.remove(tag)
                tags.append(tag)
            if is_write:
                self._dirty[set_index].add(tag)
            return True
        stats.misses += 1
        if len(tags) >= self.associativity:
            victim = self._select_victim(set_index)
            tags.remove(victim)
            stats.evictions += 1
            if victim in self._dirty[set_index]:
                self._dirty[set_index].discard(victim)
                stats.writebacks += 1
        tags.append(tag)
        if is_write:
            self._dirty[set_index].add(tag)
        return False

    def access(self, address: int, size: int, is_write: bool) -> tuple[int, int]:
        """Byte-granular access, splitting across line boundaries.

        Returns:
            (hits, misses) over the touched lines.
        """
        if size <= 0:
            raise ValueError("access size must be positive")
        first_line = address // self.line_size
        last_line = (address + size - 1) // self.line_size
        hits = 0
        misses = 0
        for line in range(first_line, last_line + 1):
            if self.access_line(line, is_write):
                hits += 1
            else:
                misses += 1
        return hits, misses

    def lines_of(self, address: int, size: int) -> Iterator[int]:
        """The line indices a byte-range access touches."""
        first_line = address // self.line_size
        last_line = (address + size - 1) // self.line_size
        return iter(range(first_line, last_line + 1))

    def contains(self, address: int) -> bool:
        """True iff the line holding ``address`` is currently resident."""
        line = address // self.line_size
        set_index = line & (self.num_sets - 1)
        return line in self._sets[set_index]

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines dropped."""
        dirty_total = sum(len(d) for d in self._dirty)
        self._sets = [[] for _ in range(self.num_sets)]
        self._dirty = [set() for _ in range(self.num_sets)]
        return dirty_total

    def reset(self) -> None:
        """Return the cache to its just-constructed state.

        Empties every set, zeroes the statistics and re-seeds the
        replacement RNG, so one cache object can be reused across
        independent evaluations with fully deterministic results.
        """
        self.flush()
        self.stats = CacheStats()
        self._rng = random.Random(self._seed)

    # -- batch access ------------------------------------------------------

    def access_line_runs(
        self,
        run_lines: Sequence[int],
        run_sets: Sequence[int],
        run_counts: Sequence[int],
        run_writes: Sequence[int],
    ) -> list[int]:
        """Access a set-grouped, run-length-encoded line stream.

        The caller groups a line-access stream by set index (preserving
        order within each set -- inter-set order is irrelevant to a
        set-associative cache) and collapses consecutive same-line
        accesses within a set into runs.  Every access of a run after
        the first is a guaranteed hit (nothing else touched that set in
        between), so only the run heads need stateful simulation; tail
        accesses are bulk-counted.  Statistics and final cache state are
        byte-identical to the equivalent :meth:`access_line` sequence.

        Args:
            run_lines: line address of each run.
            run_sets: set index of each run (``line & (num_sets - 1)``).
            run_counts: number of consecutive accesses in each run.
            run_writes: truthy when any access of the run is a write.

        Returns:
            Positions (indices into the run arrays) whose head access
            missed -- the caller forwards exactly these to the next
            level, in the stream order it recorded for the run heads.

        Raises:
            ValueError: for the RANDOM policy, whose victim RNG stream
                depends on global (not per-set) access order.
        """
        if self.policy is ReplacementPolicy.RANDOM:
            raise ValueError(
                f"{self.name}: batch access requires a deterministic "
                "replacement policy (LRU or FIFO)"
            )
        sets = self._sets
        dirty = self._dirty
        stats = self.stats
        lru = self.policy is ReplacementPolicy.LRU
        associativity = self.associativity
        misses: list[int] = []
        append_miss = misses.append
        total = 0
        head_hits = 0
        evictions = 0
        writebacks = 0
        for position, line in enumerate(run_lines):
            set_index = run_sets[position]
            count = run_counts[position]
            total += count
            tags = sets[set_index]
            if line in tags:
                head_hits += 1
                if lru:
                    tags.remove(line)
                    tags.append(line)
            else:
                append_miss(position)
                if len(tags) >= associativity:
                    victim = tags.pop(0)
                    evictions += 1
                    dirty_set = dirty[set_index]
                    if victim in dirty_set:
                        dirty_set.discard(victim)
                        writebacks += 1
                tags.append(line)
            if run_writes[position]:
                dirty[set_index].add(line)
        stats.accesses += total
        stats.hits += head_hits + (total - len(run_lines))
        stats.misses += len(misses)
        stats.evictions += evictions
        stats.writebacks += writebacks
        return misses

    def _select_victim(self, set_index: int) -> int:
        tags = self._sets[set_index]
        if self.policy is ReplacementPolicy.RANDOM:
            return self._rng.choice(tags)
        # LRU keeps MRU last; FIFO keeps newest last -- either way the
        # victim is the front of the list.
        return tags[0]

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.size_bytes // 1024}KB "
            f"{self.associativity}-way {self.line_size}B lines "
            f"({self.num_sets} sets, {self.policy.value})"
        )

"""Dual-issue in-order CPU timing model.

The paper models "an embedded processor that can issue and execute two
instructions in parallel".  For a trace-driven relative-time study the
essential behaviour is: non-memory instructions retire at up to
``issue_width`` per cycle, and each memory access stalls the pipeline
for its hierarchy latency beyond the single cycle already counted for
the instruction itself (blocking loads, in-order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cachesim.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class CPUConfig:
    """Issue width and per-body instruction estimates.

    Attributes:
        issue_width: instructions issued per cycle (paper: 2).
        ops_per_reference: non-memory instructions accompanying each
            array reference (address arithmetic + compute).  Embedded
            cores with post-increment addressing spend ~2 per access.
        loop_overhead_ops: non-memory instructions per innermost
            iteration (increment, compare, branch).
    """

    issue_width: int = 2
    ops_per_reference: int = 2
    loop_overhead_ops: int = 2

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue width must be positive")


class DualIssueCPU:
    """Accumulates cycles for a stream of instructions and memory accesses."""

    def __init__(self, hierarchy: MemoryHierarchy, config: CPUConfig | None = None):
        self.hierarchy = hierarchy
        self.config = config if config is not None else CPUConfig()
        self.cycles = 0
        self.instructions = 0
        self.memory_accesses = 0

    def execute_ops(self, count: int) -> None:
        """Retire ``count`` non-memory instructions."""
        if count < 0:
            raise ValueError("instruction count cannot be negative")
        self.instructions += count
        self.cycles += math.ceil(count / self.config.issue_width)

    def execute_memory(self, address: int, size: int, is_write: bool) -> None:
        """Execute one load/store, stalling for the hierarchy latency."""
        latency = self.hierarchy.access_data(address, size, is_write)
        self.instructions += 1
        self.memory_accesses += 1
        # The instruction itself occupies one issue slot; extra latency
        # beyond the first cycle stalls the in-order pipeline.
        self.cycles += 1 + max(0, latency - 1)

    def fetch_instructions(self, address: int, count: int) -> None:
        """Model instruction fetch for a block of ``count`` instructions.

        Fetches are line-granular: one I-cache access per line the block
        spans (4-byte instructions assumed).
        """
        if count <= 0:
            return
        line_size = self.hierarchy.l1_instruction.line_size
        first = address // line_size
        last = (address + 4 * count - 1) // line_size
        for line in range(first, last + 1):
            latency = self.hierarchy.access_instruction(line * line_size)
            # A hit is fully pipelined (no extra cycles); a miss stalls.
            self.cycles += max(0, latency - self.hierarchy.config.l1_latency)

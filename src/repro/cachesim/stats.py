"""Per-cache statistics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level.

    Attributes:
        accesses: total line accesses.
        hits: line accesses that hit.
        misses: line accesses that missed.
        evictions: lines evicted to make room.
        writebacks: dirty lines written back on eviction.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (0.0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0.0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "hit_rate": self.hit_rate,
        }

"""Multi-level memory hierarchy.

Split L1 (instruction + data) backed by a unified L2 backed by flat
main memory -- the exact structure of the paper's SimpleScalar
configuration.  Latencies are *access* latencies: an L1 hit costs the
L1 latency; an L1 miss that hits in L2 costs L1 + L2; a full miss costs
L1 + L2 + memory.  Writebacks are modelled for statistics but add no
latency (the store buffer hides them), which matches the relative-time
purpose of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachesim.cache import Cache, ReplacementPolicy


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latencies of the modelled hierarchy.

    Defaults are the paper's Section 5 machine: 8KB 2-way 32B-line
    split L1, 64KB 4-way 64B-line unified L2, latencies 1/6/70.
    """

    l1_size: int = 8 * 1024
    l1_associativity: int = 2
    l1_line: int = 32
    l2_size: int = 64 * 1024
    l2_associativity: int = 4
    l2_line: int = 64
    l1_latency: int = 1
    l2_latency: int = 6
    memory_latency: int = 70

    def __post_init__(self) -> None:
        if min(self.l1_latency, self.l2_latency, self.memory_latency) <= 0:
            raise ValueError("latencies must be positive")


class MemoryHierarchy:
    """Split-L1 / unified-L2 hierarchy with per-level statistics."""

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config if config is not None else HierarchyConfig()
        cfg = self.config
        self.l1_data = Cache(
            "L1D", cfg.l1_size, cfg.l1_associativity, cfg.l1_line
        )
        self.l1_instruction = Cache(
            "L1I", cfg.l1_size, cfg.l1_associativity, cfg.l1_line
        )
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_associativity, cfg.l2_line)

    def access_data(self, address: int, size: int, is_write: bool) -> int:
        """A load/store; returns its latency in cycles."""
        cfg = self.config
        l1 = self.l1_data
        first_line = address // l1.line_size
        last_line = (address + size - 1) // l1.line_size
        latency = 0
        for line in range(first_line, last_line + 1):
            latency += cfg.l1_latency
            if not l1.access_line(line, is_write):
                # L1 line index -> L2 line index (line sizes may differ).
                l2_line = (line * l1.line_size) // self.l2.line_size
                latency += cfg.l2_latency
                if not self.l2.access_line(l2_line, False):
                    latency += cfg.memory_latency
        return latency

    def access_instruction(self, address: int, size: int = 4) -> int:
        """An instruction fetch; returns its latency in cycles."""
        cfg = self.config
        l1 = self.l1_instruction
        first_line = address // l1.line_size
        last_line = (address + size - 1) // l1.line_size
        latency = 0
        for line in range(first_line, last_line + 1):
            latency += cfg.l1_latency
            if not l1.access_line(line, False):
                l2_line = (line * l1.line_size) // self.l2.line_size
                latency += cfg.l2_latency
                if not self.l2.access_line(l2_line, False):
                    latency += cfg.memory_latency
        return latency

    def flush(self) -> None:
        """Empty all levels (used between independent simulations)."""
        self.l1_data.flush()
        self.l1_instruction.flush()
        self.l2.flush()

    def report(self) -> dict[str, dict[str, float]]:
        """Per-level statistics as plain dicts."""
        return {
            "L1D": self.l1_data.stats.as_dict(),
            "L1I": self.l1_instruction.stats.as_dict(),
            "L2": self.l2.stats.as_dict(),
        }


def paper_hierarchy() -> MemoryHierarchy:
    """A hierarchy with exactly the paper's Section 5 configuration."""
    return MemoryHierarchy(HierarchyConfig())

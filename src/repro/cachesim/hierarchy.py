"""Multi-level memory hierarchy.

Split L1 (instruction + data) backed by a unified L2 backed by flat
main memory -- the exact structure of the paper's SimpleScalar
configuration.  Latencies are *access* latencies: an L1 hit costs the
L1 latency; an L1 miss that hits in L2 costs L1 + L2; a full miss costs
L1 + L2 + memory.  Writebacks are modelled for statistics but add no
latency (the store buffer hides them), which matches the relative-time
purpose of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachesim.cache import Cache, ReplacementPolicy, _is_power_of_two


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latencies of the modelled hierarchy.

    Defaults are the paper's Section 5 machine: 8KB 2-way 32B-line
    split L1, 64KB 4-way 64B-line unified L2, latencies 1/6/70.
    """

    l1_size: int = 8 * 1024
    l1_associativity: int = 2
    l1_line: int = 32
    l2_size: int = 64 * 1024
    l2_associativity: int = 4
    l2_line: int = 64
    l1_latency: int = 1
    l2_latency: int = 6
    memory_latency: int = 70

    def __post_init__(self) -> None:
        if min(self.l1_latency, self.l2_latency, self.memory_latency) <= 0:
            raise ValueError("latencies must be positive")
        for level, size, associativity, line in (
            ("l1", self.l1_size, self.l1_associativity, self.l1_line),
            ("l2", self.l2_size, self.l2_associativity, self.l2_line),
        ):
            if not _is_power_of_two(size):
                raise ValueError(f"{level}_size must be a power of two")
            if not _is_power_of_two(line):
                raise ValueError(f"{level}_line must be a power of two")
            if line > size:
                raise ValueError(f"{level}_line cannot exceed {level}_size")
            if associativity <= 0:
                raise ValueError(f"{level}_associativity must be positive")
            if size % (associativity * line) != 0 or not _is_power_of_two(
                size // (associativity * line)
            ):
                raise ValueError(
                    f"{level}_associativity {associativity} does not divide "
                    f"{level}_size {size} into a power-of-two set count"
                )

    def fingerprint(self) -> str:
        """Canonical token for cache keys: one deployment, many machines."""
        return (
            f"hier[l1={self.l1_size}/{self.l1_associativity}/{self.l1_line}"
            f",l2={self.l2_size}/{self.l2_associativity}/{self.l2_line}"
            f",lat={self.l1_latency}/{self.l2_latency}/{self.memory_latency}]"
        )


class MemoryHierarchy:
    """Split-L1 / unified-L2 hierarchy with per-level statistics."""

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config if config is not None else HierarchyConfig()
        cfg = self.config
        self.l1_data = Cache(
            "L1D", cfg.l1_size, cfg.l1_associativity, cfg.l1_line
        )
        self.l1_instruction = Cache(
            "L1I", cfg.l1_size, cfg.l1_associativity, cfg.l1_line
        )
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_associativity, cfg.l2_line)

    def access_data(self, address: int, size: int, is_write: bool) -> int:
        """A load/store; returns its latency in cycles."""
        cfg = self.config
        l1 = self.l1_data
        first_line = address // l1.line_size
        last_line = (address + size - 1) // l1.line_size
        latency = 0
        for line in range(first_line, last_line + 1):
            latency += cfg.l1_latency
            if not l1.access_line(line, is_write):
                # L1 line index -> L2 line index (line sizes may differ).
                l2_line = (line * l1.line_size) // self.l2.line_size
                latency += cfg.l2_latency
                if not self.l2.access_line(l2_line, False):
                    latency += cfg.memory_latency
        return latency

    def access_instruction(self, address: int, size: int = 4) -> int:
        """An instruction fetch; returns its latency in cycles."""
        cfg = self.config
        l1 = self.l1_instruction
        first_line = address // l1.line_size
        last_line = (address + size - 1) // l1.line_size
        latency = 0
        for line in range(first_line, last_line + 1):
            latency += cfg.l1_latency
            if not l1.access_line(line, False):
                l2_line = (line * l1.line_size) // self.l2.line_size
                latency += cfg.l2_latency
                if not self.l2.access_line(l2_line, False):
                    latency += cfg.memory_latency
        return latency

    def flush(self) -> None:
        """Empty all levels (used between independent simulations)."""
        self.l1_data.flush()
        self.l1_instruction.flush()
        self.l2.flush()

    def reset(self) -> None:
        """Empty all levels *and* zero their statistics.

        One hierarchy object can then be reused across evaluations
        (the evaluation layer resets between scoring calls instead of
        constructing a fresh hierarchy per candidate layout).
        """
        self.l1_data.reset()
        self.l1_instruction.reset()
        self.l2.reset()

    def access_data_lines(self, lines, writes) -> tuple[int, int, int]:
        """Feed a batch of single-line data accesses, in stream order.

        ``lines`` and ``writes`` are equal-length numpy arrays: the L1
        line index of each access and whether it is a write.  Accesses
        are grouped by L1 set (order within a set is preserved --
        inter-set order cannot affect a set-associative cache) and
        consecutive same-line accesses collapse into runs whose tails
        are guaranteed hits; only run heads are simulated statefully.
        L1 misses are re-ordered back into stream order before being
        replayed into the (unified) L2 the same way.  Statistics and
        final cache state are byte-identical to the equivalent sequence
        of :meth:`access_data` calls for accesses that touch one line
        each.

        Returns:
            ``(accesses, l1_misses, l2_misses)`` -- everything a timing
            model needs, since access latency is additive per level.
        """
        import numpy as np

        count = int(lines.shape[0])
        if count == 0:
            return (0, 0, 0)
        l1 = self.l1_data
        l2 = self.l2

        order = np.argsort(lines & (l1.num_sets - 1), kind="stable")
        grouped = lines[order]
        heads = np.empty(count, dtype=bool)
        heads[0] = True
        np.not_equal(grouped[1:], grouped[:-1], out=heads[1:])
        head_positions = np.flatnonzero(heads)
        run_lines = grouped[head_positions]
        run_counts = np.diff(np.append(head_positions, count))
        run_writes = np.bitwise_or.reduceat(
            writes[order].astype(np.uint8), head_positions
        )
        miss_positions = l1.access_line_runs(
            run_lines.tolist(),
            (run_lines & (l1.num_sets - 1)).tolist(),
            run_counts.tolist(),
            run_writes.tolist(),
        )
        l1_misses = len(miss_positions)
        if l1_misses == 0:
            return (count, 0, 0)

        # Replay the L1 misses into L2 in stream order.  A miss happens
        # at its run's head access, whose stream position is the
        # smallest in the run (stable grouping preserves in-set order).
        miss_index = np.asarray(miss_positions, dtype=np.int64)
        miss_stream_order = order[head_positions[miss_index]]
        l2_lines = (run_lines[miss_index] * l1.line_size) // l2.line_size
        l2_stream = l2_lines[np.argsort(miss_stream_order, kind="stable")]
        l2_order = np.argsort(l2_stream & (l2.num_sets - 1), kind="stable")
        l2_grouped = l2_stream[l2_order]
        l2_heads = np.empty(l1_misses, dtype=bool)
        l2_heads[0] = True
        np.not_equal(l2_grouped[1:], l2_grouped[:-1], out=l2_heads[1:])
        l2_head_positions = np.flatnonzero(l2_heads)
        l2_run_lines = l2_grouped[l2_head_positions]
        l2_run_counts = np.diff(np.append(l2_head_positions, l1_misses))
        l2_misses = len(
            l2.access_line_runs(
                l2_run_lines.tolist(),
                (l2_run_lines & (l2.num_sets - 1)).tolist(),
                l2_run_counts.tolist(),
                [0] * len(l2_run_lines),
            )
        )
        return (count, l1_misses, l2_misses)

    def report(self) -> dict[str, dict[str, float]]:
        """Per-level statistics as plain dicts."""
        return {
            "L1D": self.l1_data.stats.as_dict(),
            "L1I": self.l1_instruction.stats.as_dict(),
            "L2": self.l2.stats.as_dict(),
        }


def paper_hierarchy() -> MemoryHierarchy:
    """A hierarchy with exactly the paper's Section 5 configuration."""
    return MemoryHierarchy(HierarchyConfig())

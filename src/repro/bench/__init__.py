"""Benchmark programs (the paper's Table 1 workloads).

The original five embedded codes (Med-Im04, MxM, Radar, Shape, Track)
are proprietary; we rebuild each as a synthetic program matched to the
published characteristics -- total data size, constraint-network domain
size, and the access-pattern mix typical of the domain (see DESIGN.md,
"Substitutions").  ``MxM`` is the exception: triple matrix
multiplication is fully specified by its name and is written out
directly.
"""

from repro.bench.generator import SyntheticSpec, generate_program, PATTERNS
from repro.bench.programs import (
    BENCHMARK_NAMES,
    TABLE1_REFERENCE,
    build_benchmark,
    benchmark_build_options,
    random_suite,
)

__all__ = [
    "SyntheticSpec",
    "generate_program",
    "PATTERNS",
    "BENCHMARK_NAMES",
    "TABLE1_REFERENCE",
    "build_benchmark",
    "benchmark_build_options",
    "random_suite",
]

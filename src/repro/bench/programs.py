"""The five Table 1 benchmarks.

``MxM`` (triple matrix multiplication) is written out explicitly; the
other four are synthetic programs generated to match the published data
size and to land near the published constraint-network domain size (see
DESIGN.md, "Substitutions").  All generation is deterministic; the
exact measured characteristics are recorded in EXPERIMENTS.md.

The paper's numbers, for reference::

    Benchmark   Domain Size   Data Size
    Med-Im04        258        825.55KB
    MxM              34      1,173.56KB
    Radar           422        905.28KB
    Shape           656      1,284.06KB
    Track           388        744.80KB
"""

from __future__ import annotations

from repro.bench.generator import (
    SyntheticSpec,
    extents_for_data_size,
    generate_program,
)
from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef
from repro.opt.network_builder import BuildOptions

#: Paper-reported Table 1 values: name -> (domain size, data KB).
TABLE1_REFERENCE: dict[str, tuple[int, float]] = {
    "Med-Im04": (258, 825.55),
    "MxM": (34, 1173.56),
    "Radar": (422, 905.28),
    "Shape": (656, 1284.06),
    "Track": (388, 744.80),
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(TABLE1_REFERENCE)

#: The matrix side of MxM: five 242x242 float32 matrices are 1,171.56KB,
#: within 0.2% of the paper's 1,173.56KB.
_MXM_EXTENT = 242
#: MxM nests block the i and j loops (so trace simulation stays
#: tractable) but keep the full k extent: the inner k-loop then streams
#: a whole 242-element column of B, touching 242 distinct L1 lines per
#: (i, j) iteration -- just like the full-size multiply, this thrashes
#: the 256-line L1 under the original ijk order.
_MXM_BLOCK = 44


def _build_mxm() -> Program:
    """Triple matrix multiplication: T = A*B, then D = T*C."""
    size = _MXM_EXTENT
    arrays = tuple(
        ArrayDecl(name, (size, size), "float32")
        for name in ("A", "B", "T", "C", "D")
    )
    i, j, k = AffineExpr.var("i"), AffineExpr.var("j"), AffineExpr.var("k")
    bound = _MXM_BLOCK - 1
    loops = (Loop("i", 0, bound), Loop("j", 0, bound), Loop("k", 0, size - 1))
    nest1 = LoopNest(
        "mm1",
        loops,
        (
            ArrayRef("A", (i, k), AccessKind.READ),
            ArrayRef("B", (k, j), AccessKind.READ),
            ArrayRef("T", (i, j), AccessKind.READ),
            ArrayRef("T", (i, j), AccessKind.WRITE),
        ),
    )
    nest2 = LoopNest(
        "mm2",
        loops,
        (
            ArrayRef("T", (i, k), AccessKind.READ),
            ArrayRef("C", (k, j), AccessKind.READ),
            ArrayRef("D", (i, j), AccessKind.READ),
            ArrayRef("D", (i, j), AccessKind.WRITE),
        ),
    )
    return Program("MxM", arrays, (nest1, nest2))


#: Synthetic specs for the other four benchmarks.  Array counts target
#: the published data sizes; nest counts and pattern mixes target the
#: published domain sizes.  Seeds are fixed for determinism and chosen
#: so the resulting network is satisfiable (verified by the test
#: suite).
_SYNTHETIC_SPECS: dict[str, SyntheticSpec] = {
    "Med-Im04": SyntheticSpec(
        name="Med-Im04",
        array_extents=extents_for_data_size(int(825.55 * 1024), 22),
        nest_count=13,
        arrays_per_nest=(2, 4),
        pattern_variety=0.20,
        conflict_nests=3,
        seed=104,
    ),
    "Radar": SyntheticSpec(
        name="Radar",
        array_extents=extents_for_data_size(int(905.28 * 1024), 27),
        nest_count=16,
        arrays_per_nest=(2, 4),
        pattern_variety=0.06,
        conflict_nests=4,
        seed=202,
    ),
    "Shape": SyntheticSpec(
        name="Shape",
        array_extents=extents_for_data_size(int(1284.06 * 1024), 30),
        nest_count=18,
        arrays_per_nest=(2, 3),
        pattern_variety=0.06,
        conflict_nests=4,
        seed=309,
    ),
    "Track": SyntheticSpec(
        name="Track",
        array_extents=extents_for_data_size(int(744.80 * 1024), 24),
        nest_count=15,
        arrays_per_nest=(2, 4),
        pattern_variety=0.12,
        conflict_nests=3,
        seed=404,
    ),
}

_CACHE: dict[str, Program] = {}


def build_benchmark(name: str) -> Program:
    """Build (and cache) one of the five benchmarks by name.

    Raises:
        KeyError: for an unknown benchmark name.
    """
    if name not in TABLE1_REFERENCE:
        raise KeyError(f"unknown benchmark {name!r}; know {BENCHMARK_NAMES}")
    if name not in _CACHE:
        if name == "MxM":
            _CACHE[name] = _build_mxm()
        else:
            _CACHE[name] = generate_program(_SYNTHETIC_SPECS[name])
    return _CACHE[name]


def random_suite(count: int, seed: int = 0) -> tuple[Program, ...]:
    """A deterministic suite of small synthetic programs.

    Used by the service layer's batch CLI and throughput benchmarks to
    generate load beyond the five Table 1 programs: each program is a
    fresh :class:`SyntheticSpec` draw (distinct seeds derived from
    ``seed``), small enough that any systematic scheme solves it in
    well under a second but varied enough that networks differ.

    Raises:
        ValueError: for a non-positive count.
    """
    if count < 1:
        raise ValueError("count must be positive")
    programs = []
    for index in range(count):
        spec = SyntheticSpec(
            name=f"Rand-{seed}-{index + 1:03d}",
            array_extents=extents_for_data_size(
                96 * 1024 + 8 * 1024 * (index % 5), 8 + index % 5
            ),
            nest_count=6 + index % 4,
            arrays_per_nest=(2, 3),
            pattern_variety=0.1 + 0.05 * (index % 3),
            conflict_nests=index % 2,
            seed=seed * 10_000 + 7 * index + 1,
        )
        programs.append(generate_program(spec))
    return tuple(programs)


def benchmark_build_options() -> BuildOptions:
    """The network-construction options used for all Table 1..3 runs.

    Skew factors 1..3 widen the per-nest restructuring catalog the
    way the paper's per-array domain sizes imply (tens of candidate
    layouts per benchmark come from non-permutation restructurings).
    """
    return BuildOptions(
        include_standard=True,
        include_reversals=False,
        skew_factors=(1, 2, 3),
        combine="union",
    )

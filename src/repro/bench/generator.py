"""Synthetic array-program generator.

Generates programs with the statistical character of embedded
image/signal-processing codes: many 2-D arrays, a chain of loop nests
each reading a few arrays and writing one, with per-reference access
patterns drawn from a palette (row, column, diagonal, skewed, strided).
The written array is referenced exactly once per nest so that every
loop permutation stays legal and the constraint networks stay rich.

**Planted satisfiability.**  The paper's solvers assume "a solution
exists" for the Table 2/3 runs, so the generator plants one: every
array gets a *home layout* and is always accessed with patterns whose
identity-transform locality preference is exactly that home layout.
The identity combo of every nest then assigns home layouts, so the
all-homes assignment satisfies every constraint.  Non-identity
restructurings (permutations, skews) contribute the decoy layouts that
make the search problem hard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef

_I = AffineExpr.var

#: Access-pattern palette.  Each entry maps the two loop indices (i, j)
#: to a pair of affine subscripts, together with the factor by which the
#: loop bound must shrink so subscripts stay inside an ExE array, and
#: the canonical hyperplane vector the pattern prefers under the
#: original (identity) loop order -- its *home*.
PatternFn = Callable[[str, str], tuple[AffineExpr, AffineExpr]]
PATTERNS: dict[str, tuple[PatternFn, int, tuple[int, int]]] = {
    "row": (lambda i, j: (_I(i), _I(j)), 1, (1, 0)),
    "anti": (lambda i, j: (_I(i), _I(i) + _I(j)), 2, (1, 0)),
    "col": (lambda i, j: (_I(j), _I(i)), 1, (0, 1)),
    "diag_t": (lambda i, j: (_I(i) + _I(j), _I(i)), 2, (0, 1)),
    "skew2_t": (lambda i, j: (2 * _I(i) + _I(j), _I(i)), 3, (0, 1)),
    "diag": (lambda i, j: (_I(i) + _I(j), _I(j)), 2, (1, -1)),
    "anti_t": (lambda i, j: (_I(j), _I(i) + _I(j)), 2, (1, -1)),
    "sheared": (lambda i, j: (2 * _I(i) + _I(j), _I(i) + _I(j)), 3, (1, -1)),
    "skew2": (lambda i, j: (_I(i) + 2 * _I(j), _I(j)), 3, (1, -2)),
}

#: Home layouts available for planting, keyed by hyperplane vector.
HOME_VECTORS: tuple[tuple[int, int], ...] = ((1, 0), (0, 1), (1, -1), (1, -2))


def patterns_with_home(home: tuple[int, int]) -> tuple[str, ...]:
    """Palette entries whose identity-order preference is ``home``."""
    return tuple(
        name for name, (_, _, vector) in PATTERNS.items() if vector == home
    )


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic benchmark.

    Attributes:
        name: program name.
        array_extents: one (square) extent per 2-D array; array count
            and data size follow directly.
        nest_count: number of loop nests.
        arrays_per_nest: (min, max) arrays referenced per nest.
        home_weights: relative frequency of each home layout among the
            arrays (vectors from :data:`HOME_VECTORS`).
        pattern_variety: probability that a nest accesses an array with
            a *different* pattern from the array's home group instead
            of the array's canonical pattern.  0.0 keeps one pattern
            per array (many global solutions; easy networks); higher
            values knock out the non-identity planted solutions and
            make the search harder.  The identity/home solution always
            survives, so the network stays satisfiable.
        conflict_nests: number of extra *conflicting* nests appended
            after the clean ones.  A conflicting nest reuses the arrays
            of one clean nest but accesses them with *foreign* patterns
            (wrong home group) and carries the highest weight in the
            program.  Its constraint pairs are unioned with the clean
            nest's (same array pairs), so the planted solution still
            satisfies the network -- but no layout assignment can give
            every nest locality.  This is what separates the greedy
            heuristic [9] (which satisfies the costly conflicting nest
            first and sacrifices many clean nests) from the
            constraint-network schemes, reproducing the Table 3 gap.
        seed: RNG seed; generation is fully deterministic.
        max_weight: nest weights are drawn from 1..max_weight; a
            conflicting nest gets ``max_weight + 2``.
    """

    name: str
    array_extents: tuple[int, ...]
    nest_count: int
    arrays_per_nest: tuple[int, int] = (3, 4)
    home_weights: tuple[tuple[tuple[int, int], float], ...] = (
        ((1, 0), 1.0),
        ((0, 1), 2.0),
        ((1, -1), 1.5),
        ((1, -2), 0.5),
    )
    pattern_variety: float = 0.25
    conflict_nests: int = 0
    seed: int = 0
    max_weight: int = 3

    def __post_init__(self) -> None:
        if not self.array_extents:
            raise ValueError("need at least one array")
        if self.nest_count < 1:
            raise ValueError("need at least one nest")
        low, high = self.arrays_per_nest
        if not 2 <= low <= high:
            raise ValueError("arrays_per_nest must satisfy 2 <= low <= high")
        for vector, _ in self.home_weights:
            if vector not in HOME_VECTORS:
                raise ValueError(f"unknown home vector {vector!r}")
        if not 0.0 <= self.pattern_variety <= 1.0:
            raise ValueError("pattern_variety must be in [0, 1]")
        if self.conflict_nests < 0:
            raise ValueError("conflict_nests cannot be negative")

    @property
    def data_bytes(self) -> int:
        """Total float32 data footprint implied by the extents."""
        return sum(4 * extent * extent for extent in self.array_extents)


def generate_program(spec: SyntheticSpec) -> Program:
    """Generate the program described by a spec (deterministic)."""
    rng = random.Random(spec.seed)
    arrays = tuple(
        ArrayDecl(f"Q{index + 1}", (extent, extent), "float32")
        for index, extent in enumerate(spec.array_extents)
    )
    names = [decl.name for decl in arrays]
    extents = {decl.name: decl.extents[0] for decl in arrays}
    home_vectors = [vector for vector, _ in spec.home_weights]
    home_frequency = [weight for _, weight in spec.home_weights]
    homes = {
        name: rng.choices(home_vectors, weights=home_frequency, k=1)[0]
        for name in names
    }
    canonical = {
        name: rng.choice(patterns_with_home(homes[name])) for name in names
    }

    def pattern_for(array: str) -> str:
        group = patterns_with_home(homes[array])
        if len(group) > 1 and rng.random() < spec.pattern_variety:
            alternatives = [p for p in group if p != canonical[array]]
            return rng.choice(alternatives)
        return canonical[array]

    nests = []
    uncovered = set(names)
    for nest_index in range(spec.nest_count):
        low, high = spec.arrays_per_nest
        count = min(rng.randint(low, high), len(names))
        # Prefer arrays no nest has referenced yet, so every declared
        # array ends up in the constraint network.
        from_uncovered = rng.sample(
            sorted(uncovered), min(count, len(uncovered))
        )
        remaining = [name for name in names if name not in from_uncovered]
        chosen = from_uncovered + rng.sample(
            remaining, count - len(from_uncovered)
        )
        rng.shuffle(chosen)
        uncovered.difference_update(chosen)
        patterns = [pattern_for(array) for array in chosen]
        # The loop bound must fit every chosen pattern in every chosen
        # array: bound = min(extent // shrink).
        bound = min(
            extents[array] // PATTERNS[pattern][1]
            for array, pattern in zip(chosen, patterns)
        )
        bound = max(bound, 2)
        body: list[ArrayRef] = []
        # Reads first, then the single write (last array of the sample).
        for position, (array, pattern) in enumerate(zip(chosen, patterns)):
            make_subscripts, _, _ = PATTERNS[pattern]
            subscripts = make_subscripts("i", "j")
            kind = AccessKind.WRITE if position == count - 1 else AccessKind.READ
            body.append(ArrayRef(array, subscripts, kind))
        nests.append(
            LoopNest(
                name=f"nest{nest_index + 1}",
                loops=(Loop("i", 0, bound - 1), Loop("j", 0, bound - 1)),
                body=tuple(body),
                weight=rng.randint(1, spec.max_weight),
            )
        )

    # Conflicting nests: reuse a clean nest's arrays with foreign
    # patterns.  Because the array pairs already occur in the clean
    # nest, the union constraint keeps the planted home solution valid.
    for conflict_index in range(spec.conflict_nests):
        donor = rng.choice(nests[: spec.nest_count])
        donor_arrays = list(donor.arrays())
        count = min(len(donor_arrays), rng.randint(2, 3))
        chosen = rng.sample(donor_arrays, count)
        patterns = []
        for array in chosen:
            foreign_homes = [v for v in home_vectors if v != homes[array]]
            foreign_home = rng.choice(foreign_homes)
            patterns.append(rng.choice(patterns_with_home(foreign_home)))
        bound = min(
            extents[array] // PATTERNS[pattern][1]
            for array, pattern in zip(chosen, patterns)
        )
        bound = max(bound, 2)
        body = []
        for position, (array, pattern) in enumerate(zip(chosen, patterns)):
            make_subscripts, _, _ = PATTERNS[pattern]
            kind = AccessKind.WRITE if position == count - 1 else AccessKind.READ
            body.append(ArrayRef(array, make_subscripts("i", "j"), kind))
        nests.append(
            LoopNest(
                name=f"conflict{conflict_index + 1}",
                loops=(Loop("i", 0, bound - 1), Loop("j", 0, bound - 1)),
                body=tuple(body),
                weight=spec.max_weight + 2,
            )
        )
    return Program(spec.name, arrays, tuple(nests))


def extents_for_data_size(
    target_bytes: int, array_count: int, granularity: int = 4
) -> tuple[int, ...]:
    """Choose square extents so total float32 data is close to a target.

    All arrays share one base extent (a multiple of ``granularity``),
    with the first array's extent adjusted by one granule when it
    improves the fit.
    """
    if array_count < 1:
        raise ValueError("array_count must be positive")
    per_array = target_bytes / array_count / 4.0
    base = max(granularity, int(round(per_array**0.5 / granularity)) * granularity)

    def total(extents: Sequence[int]) -> int:
        return sum(4 * e * e for e in extents)

    best = tuple([base] * array_count)
    best_error = abs(total(best) - target_bytes)
    for first_delta in (-granularity, 0, granularity):
        for base_delta in (-granularity, 0, granularity):
            extents = [base + base_delta] * array_count
            extents[0] += first_delta
            if min(extents) < granularity:
                continue
            error = abs(total(extents) - target_bytes)
            if error < best_error:
                best = tuple(extents)
                best_error = error
    return best

"""The layout optimizer façade.

``LayoutOptimizer`` runs the whole pipeline of the paper: build the
network, solve it with the chosen scheme, and return one layout per
array.  When the hard network is unsatisfiable (possible: different
nests may want irreconcilable layouts) the optimizer falls back to the
weighted branch & bound of :mod:`repro.csp.weighted`, which returns the
assignment violating the least total nest cost -- the graceful version
of "no solution exists".

:func:`select_transforms` then picks, per nest, the legal restructuring
best matched to the *final* layouts; this mirrors how the evaluated
binaries of Table 3 combine data transformations with (legal, purely
local) loop restructurings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.splitsearch import (
    SEARCH_AUTO,
    SEARCH_SPLIT,
    SEARCHES,
    SplitSearchSolver,
    resolve_search,
)
from repro.csp.stats import SolverStats
from repro.csp.weighted import BranchAndBoundSolver
from repro.ir.program import Program
from repro.layout.candidates import nest_layout_combos
from repro.layout.layout import Layout, row_major
from repro.layout.locality import access_delta, has_spatial_locality, has_temporal_locality
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.opt.network_builder import BuildOptions, LayoutNetwork, build_layout_network
from repro.transform.catalog import legal_transforms
from repro.transform.unimodular_loop import LoopTransform

#: Scheme name -> solver factory (seed -> solver).  "weighted" is the
#: branch & bound over the nest-cost weighted network: always returns
#: an assignment, exact exactly when the hard network is satisfiable.
_SCHEMES = {
    "base": lambda seed: BacktrackingSolver(seed=seed),
    "enhanced": lambda seed: EnhancedSolver(seed=seed),
    "cbj": lambda seed: ConflictDirectedSolver(seed=seed),
    "forward-checking": lambda seed: ForwardCheckingSolver(seed=seed),
    "min-conflicts": lambda seed: MinConflictsSolver(seed=seed),
    "split": lambda seed: SplitSearchSolver(seed=seed),
    "weighted": lambda seed: BranchAndBoundSolver(),
}


@dataclass(frozen=True)
class CandidateScore:
    """One refinement candidate and how the cost models priced it.

    Attributes:
        label: provenance ("search" for the solver's own answer,
            "solution-N" for enumerated alternatives).
        layouts: the candidate's full layout assignment.
        analytic_value: the analytic model's estimate (the rank the
            optimizer would have used without refinement).
        refined_value: the refining model's score (lower is better).
        chosen: True for the candidate the refined outcome adopted.
    """

    label: str
    layouts: dict[str, Layout]
    analytic_value: float
    refined_value: float
    chosen: bool = False


@dataclass(frozen=True)
class RefinementReport:
    """What simulation-guided refinement saw and decided.

    Attributes:
        model: registered name of the refining cost model.
        candidates: every scored candidate, in scoring order.
        agreement: Kendall tau between the analytic and refined
            rankings of the candidates (1.0 = the simulator confirmed
            the analytic order; low values are where the feedback loop
            earned its cycles).
        evaluate_seconds: wall-clock spent scoring candidates.
    """

    model: str
    candidates: tuple[CandidateScore, ...]
    agreement: float
    evaluate_seconds: float

    @property
    def chosen(self) -> CandidateScore:
        """The adopted candidate."""
        for candidate in self.candidates:
            if candidate.chosen:
                return candidate
        raise ValueError("refinement report has no chosen candidate")


@dataclass
class OptimizationOutcome:
    """Result of a layout optimization run.

    Attributes:
        program: the optimized program's name.
        scheme: the solver scheme used.
        layouts: one layout per declared array.
        stats: solver effort counters.
        solve_seconds: end-to-end time (network build + solve).
        network: the constraint network with provenance.
        exact: True when the layouts satisfy every constraint; False
            when the weighted fallback produced a best-effort result.
        cost: the refining cost model's score of ``layouts`` (None
            when no refinement ran).
        refinement: the candidate table refinement considered (None
            when no refinement ran).
    """

    program: str
    scheme: str
    layouts: dict[str, Layout]
    stats: SolverStats
    solve_seconds: float
    network: LayoutNetwork
    exact: bool
    cost: object | None = None
    refinement: RefinementReport | None = None


class LayoutOptimizer:
    """Front door of the library: programs in, layouts out.

    Args:
        scheme: "base", "enhanced", "cbj", "forward-checking",
            "min-conflicts", "split" (space-splitting parallel search
            over the forward-checking frontier), "weighted" (branch &
            bound over the nest-cost weighted network), an
            :class:`EnhancementConfig`
            for per-enhancement ablation runs, or a *portfolio
            strategy*: the string ``"portfolio:enhanced,cbj,weighted"``
            (or a :class:`repro.service.PortfolioConfig`) races the
            named schemes concurrently and the outcome's ``scheme``
            field reports which one won, e.g. ``"portfolio:cbj"``.
        seed: RNG seed for the randomized schemes.  Threaded into the
            ``"portfolio:..."`` string forms; a ``PortfolioConfig``
            instance carries its own seed, which takes precedence.
        options: network construction options.
        refine: close the analytic <-> empirical loop: a registered
            cost-model name (``"simulated"``, ``"analytic"``,
            ``"weighted"``) or a configured
            :class:`repro.eval.CostModel` instance.  The optimizer
            enumerates up to ``refine_top_k`` solutions of the
            compiled network alongside the solver's own answer and
            adopts the candidate the model scores cheapest; the
            outcome's ``cost`` and ``refinement`` fields carry the
            evidence.  ``None`` (default) keeps the classic behavior.
        refine_top_k: how many enumerated solutions to score.
        search: search-space execution mode, threaded into the
            ``"split"`` scheme and the refinement enumeration:
            ``"serial"``, ``"split"``, or ``"auto"`` (default; the
            split solver escalates only after its serial budget).
            When the mode resolves to ``"split"`` (explicitly or via
            ``REPRO_CSP_SEARCH``), refinement candidates stream from
            :func:`repro.csp.splitsearch.enumerate_solutions_parallel`
            -- the frontier is enumerated lazily across worker
            processes and stops at ``refine_top_k`` solutions.

    Raises:
        ValueError: for an unknown scheme name, unknown refine model,
            unknown search mode, or non-positive ``refine_top_k``.
    """

    def __init__(
        self,
        scheme="enhanced",
        seed: int = 0,
        options: BuildOptions | None = None,
        refine=None,
        refine_top_k: int = 8,
        search: str = SEARCH_AUTO,
    ):
        if search not in SEARCHES:
            raise ValueError(
                f"unknown search {search!r}; pick one of {SEARCHES}"
            )
        self._search = search
        self._portfolio = None
        self._portfolio_solver = None
        self._solver = None
        portfolio_config = _as_portfolio_config(scheme, seed)
        if portfolio_config is not None:
            self._portfolio = portfolio_config
            self._scheme_name = f"portfolio[{','.join(portfolio_config.schemes)}]"
        elif isinstance(scheme, EnhancementConfig):
            self._scheme_name = scheme.label()
            self._solver = EnhancedSolver(scheme, seed=seed)
        else:
            if scheme not in _SCHEMES:
                raise ValueError(
                    f"unknown scheme {scheme!r}; pick one of {sorted(_SCHEMES)}"
                )
            self._scheme_name = scheme
            if scheme == "split":
                # Thread the search mode through (the registry factory
                # keeps the solver's own default for other callers).
                self._solver = SplitSearchSolver(seed=seed, search=search)
            else:
                self._solver = _SCHEMES[scheme](seed)
        self._options = options if options is not None else BuildOptions()
        if refine_top_k <= 0:
            raise ValueError("refine_top_k must be positive")
        self._refine_top_k = refine_top_k
        if isinstance(refine, str):
            from repro.eval import get_cost_model

            # The weighted model scores against a layout network, which
            # must be built the same way the candidates were.
            kwargs = {"options": self._options} if refine == "weighted" else {}
            refine = get_cost_model(refine, **kwargs)
        self._refine = refine

    def optimize(self, program: Program) -> OptimizationOutcome:
        """Choose one memory layout for every array of the program."""
        if self._portfolio is not None:
            outcome = self._optimize_portfolio(program)
            if self._refine is not None:
                outcome = self._apply_refinement(program, outcome)
            return outcome
        start = time.perf_counter()
        with obs_trace.span("build_network"):
            layout_network = build_layout_network(program, self._options)
            kernel = layout_network.kernel()
        with obs_trace.span("solve", scheme=self._scheme_name):
            if isinstance(self._solver, BranchAndBoundSolver):
                # First-class weighted scheme: solve the weighted network
                # directly -- exact iff the hard network is satisfiable.
                weighted_result = self._solver.solve_compiled(
                    kernel, layout_network.weights
                )
                assignment = dict(weighted_result.assignment)
                stats = weighted_result.stats
                exact = weighted_result.fully_satisfied
            else:
                result = self._solver.solve(kernel)
                exact = result.assignment is not None
                if exact:
                    assignment = dict(result.assignment)
                    stats = result.stats
                else:
                    weighted_result = BranchAndBoundSolver().solve_compiled(
                        kernel, layout_network.weights
                    )
                    assignment = dict(weighted_result.assignment)
                    stats = weighted_result.stats
                    exact = weighted_result.fully_satisfied
        obs_metrics.counter(
            "repro_optimizer_solves_total",
            labels={"scheme": self._scheme_name, "exact": str(exact).lower()},
            help="Direct (non-portfolio) optimizer solves by scheme.",
        )
        if exact:
            repair_inflation(layout_network.network, assignment, program)
        elapsed = time.perf_counter() - start

        layouts: dict[str, Layout] = {}
        for decl in program.arrays:
            chosen = assignment.get(decl.name)
            layouts[decl.name] = (
                chosen if chosen is not None else row_major(decl.rank)
            )
        outcome = OptimizationOutcome(
            program=program.name,
            scheme=self._scheme_name,
            layouts=layouts,
            stats=stats,
            solve_seconds=elapsed,
            network=layout_network,
            exact=exact,
        )
        if self._refine is not None:
            outcome = self._apply_refinement(program, outcome)
        return outcome

    def _apply_refinement(
        self, program: Program, outcome: OptimizationOutcome
    ) -> OptimizationOutcome:
        """Re-rank the solver's answer against enumerated alternatives.

        The candidate pool is the outcome's own layouts plus up to
        ``refine_top_k`` distinct solutions of the compiled network;
        each is paired with its best legal restructurings and scored
        by the refining model (and, for the agreement statistic, by
        the analytic model).  Ties keep the earlier candidate, so the
        solver's answer survives unless the model strictly prefers an
        alternative.

        When the optimizer's search mode resolves to ``"split"``, the
        alternatives stream lazily from the parallel frontier
        enumerator -- same solutions in the same (lexicographic)
        order, produced by racing worker processes -- so a small
        ``refine_top_k`` stops the enumeration early instead of
        paying for the whole solution set.
        """
        from repro.csp.compiled import enumerate_solutions
        from repro.csp.splitsearch import enumerate_solutions_parallel
        from repro.eval import AnalyticCostModel, kendall_tau

        start = time.perf_counter()
        model = self._refine
        analytic = model if model.name == "analytic" else AnalyticCostModel()

        split = resolve_search(self._search) == SEARCH_SPLIT
        with obs_trace.span("refine", model=model.name) as refine_span:
            if split:
                solutions = enumerate_solutions_parallel(
                    outcome.network.kernel(), self._refine_top_k
                )
            else:
                solutions = enumerate_solutions(
                    outcome.network.kernel(), self._refine_top_k
                )
            pool: list[tuple[str, dict[str, Layout]]] = [
                ("search", dict(outcome.layouts))
            ]
            seen = {_layout_key(outcome.layouts)}
            for index, assignment in enumerate(solutions):
                layouts = {
                    decl.name: assignment.get(decl.name, row_major(decl.rank))
                    for decl in program.arrays
                }
                key = _layout_key(layouts)
                if key in seen:
                    continue
                seen.add(key)
                pool.append((f"solution-{index + 1}", layouts))
            refine_span.set_attribute("candidates", len(pool))

            scored = []
            for label, layouts in pool:
                transforms = select_transforms(
                    program,
                    layouts,
                    self._options.include_reversals,
                    self._options.skew_factors,
                )
                cost = model.score(program, layouts, transforms)
                if analytic is model:
                    analytic_value = cost.value
                else:
                    analytic_value = analytic.score(
                        program, layouts, transforms
                    ).value
                scored.append((label, layouts, analytic_value, cost))

        best = min(range(len(scored)), key=lambda i: scored[i][3].value)
        agreement = kendall_tau(
            [entry[2] for entry in scored],
            [entry[3].value for entry in scored],
        )
        report = RefinementReport(
            model=model.name,
            candidates=tuple(
                CandidateScore(
                    label=label,
                    layouts=layouts,
                    analytic_value=analytic_value,
                    refined_value=cost.value,
                    chosen=(index == best),
                )
                for index, (label, layouts, analytic_value, cost) in enumerate(
                    scored
                )
            ),
            agreement=agreement,
            evaluate_seconds=time.perf_counter() - start,
        )
        outcome.layouts = dict(scored[best][1])
        outcome.cost = scored[best][3]
        outcome.refinement = report
        return outcome

    def _optimize_portfolio(self, program: Program) -> OptimizationOutcome:
        """Delegate to the service layer's racing portfolio.

        The solver instance is built once and reused for every request
        this optimizer serves -- resident processes (the service
        daemon's warm workers) keep optimizers alive across requests,
        and rebuilding the portfolio plumbing per call was the last
        per-request setup cost left on that path.
        """
        if self._portfolio_solver is None:
            from repro.service.portfolio import PortfolioSolver

            self._portfolio_solver = PortfolioSolver(
                self._portfolio, options=self._options
            )
        result = self._portfolio_solver.optimize(program)
        network = result.network
        if network is None:  # served from a cache: rebuild provenance
            network = build_layout_network(program, self._options)
        return OptimizationOutcome(
            program=program.name,
            scheme=f"portfolio:{result.winner}",
            layouts=result.layouts,
            stats=result.winner_stats(),
            solve_seconds=result.solve_seconds,
            network=network,
            exact=result.exact,
        )


#: Bounded pool of shared optimizer instances, keyed by configuration.
_SHARED_OPTIMIZERS: dict[tuple, LayoutOptimizer] = {}
_SHARED_OPTIMIZERS_CAP = 32


def shared_optimizer(
    scheme="enhanced",
    seed: int = 0,
    options: BuildOptions | None = None,
    refine=None,
    refine_top_k: int = 8,
    search: str = SEARCH_AUTO,
) -> LayoutOptimizer:
    """A process-shared, reusable :class:`LayoutOptimizer`.

    Resident services serve many requests per process; constructing a
    fresh optimizer per request rebuilds the same solver/portfolio
    plumbing every time.  This factory memoizes instances by their
    full configuration (an optimizer is stateless between ``optimize``
    calls, so sharing is safe within one thread of control) and keeps
    the pool bounded.  Configured model instances (``refine`` given as
    a :class:`~repro.eval.CostModel`) are not memoizable -- those
    callers get a fresh optimizer.
    """
    if refine is not None and not isinstance(refine, str):
        return LayoutOptimizer(
            scheme=scheme, seed=seed, options=options,
            refine=refine, refine_top_k=refine_top_k, search=search,
        )
    key = (repr(scheme), seed, repr(options), refine, refine_top_k, search)
    optimizer = _SHARED_OPTIMIZERS.get(key)
    if optimizer is None:
        optimizer = LayoutOptimizer(
            scheme=scheme, seed=seed, options=options,
            refine=refine, refine_top_k=refine_top_k, search=search,
        )
        if len(_SHARED_OPTIMIZERS) >= _SHARED_OPTIMIZERS_CAP:
            _SHARED_OPTIMIZERS.pop(next(iter(_SHARED_OPTIMIZERS)))
        _SHARED_OPTIMIZERS[key] = optimizer
    return optimizer


def _layout_key(layouts: Mapping[str, Layout]) -> tuple:
    """Hashable identity of a full layout assignment (for dedup)."""
    return tuple(sorted((name, layout) for name, layout in layouts.items()))


def _as_portfolio_config(scheme, seed: int):
    """Interpret a scheme argument as a portfolio strategy, if it is one.

    Accepts a :class:`repro.service.PortfolioConfig` instance or the
    string forms ``"portfolio"`` (default line-up) and
    ``"portfolio:a,b,c"``.  Returns None for plain scheme names.  The
    service import is lazy: :mod:`repro.service` imports this module.
    """
    if isinstance(scheme, str):
        if scheme != "portfolio" and not scheme.startswith("portfolio:"):
            return None
        from repro.service.portfolio import PortfolioConfig

        if scheme == "portfolio":
            return PortfolioConfig(seed=seed)
        return PortfolioConfig.parse(scheme[len("portfolio:"):], seed=seed)
    if isinstance(scheme, EnhancementConfig):
        return None
    from repro.service.portfolio import PortfolioConfig

    return scheme if isinstance(scheme, PortfolioConfig) else None


def repair_inflation(network, assignment: dict, program: Program) -> None:
    """Swap each array to the best equivalent value among solutions.

    Constraint networks routinely admit several solutions (the paper
    observes base and enhanced finding different ones), and the solver
    has no reason to prefer the execution-friendly one.  This pass
    greedily replaces each array's layout with a domain value that is
    better on the lexicographic objective

    1. lower bounding-box inflation (footnote 2's data-space growth),
    2. more references with locality under the original loop order,

    whenever the swap keeps the assignment a solution -- it never
    leaves the solution set, so exactness is preserved.
    """
    from repro.layout.locality import (
        access_delta,
        has_spatial_locality,
        has_temporal_locality,
    )
    from repro.layout.mapping import LayoutMapping

    objective_cache: dict[tuple[str, Layout], tuple[float, int]] = {}

    def objective(array: str, layout: Layout) -> tuple[float, int]:
        cached = objective_cache.get((array, layout))
        if cached is not None:
            return cached
        inflation = LayoutMapping.create(program.array(array), layout).inflation
        locality = 0
        for nest in program.nests_referencing(array):
            direction = tuple([0] * (nest.depth - 1) + [1])
            order = nest.index_order
            for reference in nest.references_to(array):
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta) or has_spatial_locality(
                    layout, delta
                ):
                    locality += nest.weight
        score = (inflation, -locality)
        objective_cache[(array, layout)] = score
        return score

    # Iterate to a fixpoint: improving one array can unlock a better
    # swap for a neighbor (bounded: each pass strictly improves the
    # global objective or stops).
    for _ in range(len(network.variables)):
        changed = False
        for array in network.variables:
            current = assignment[array]
            best = current
            best_key = objective(array, current)
            for candidate in network.domain(array):
                if candidate == current:
                    continue
                key = objective(array, candidate)
                if key >= best_key:
                    continue
                consistent = all(
                    network.check_pair(
                        array, candidate, neighbor, assignment[neighbor]
                    )
                    for neighbor in network.neighbors(array)
                )
                if consistent:
                    best = candidate
                    best_key = key
            if best != current:
                assignment[array] = best
                changed = True
        if not changed:
            break


def select_transforms(
    program: Program,
    layouts: Mapping[str, Layout],
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> dict[str, LoopTransform]:
    """Per nest, the legal restructuring best matched to final layouts.

    The score of a transform weighs references by the memory cost their
    locality class avoids: a reference with *no* locality pays roughly
    a full cache-miss per iteration, so it is worth far more to fix one
    such reference than to upgrade spatial locality (one miss per line,
    ~1/8 of the accesses) to temporal (same element every iteration).
    Ties prefer the identity (no restructuring without benefit).
    """
    with obs_trace.span("transform_selection"):
        return _select_transforms(program, layouts, include_reversals, skew_factors)


def _select_transforms(
    program: Program,
    layouts: Mapping[str, Layout],
    include_reversals: bool,
    skew_factors: tuple[int, ...],
) -> dict[str, LoopTransform]:
    chosen: dict[str, LoopTransform] = {}
    for nest in program.nests:
        order = nest.index_order
        best: LoopTransform | None = None
        best_score = -1
        for transform in legal_transforms(
            nest, include_reversals, skew_factors
        ):
            direction = transform.innermost_direction()
            score = 0
            for reference in nest.body:
                layout = layouts.get(reference.array)
                if layout is None:
                    continue
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta):
                    score += 7
                elif has_spatial_locality(layout, delta):
                    score += 6
            better = score > best_score or (
                score == best_score
                and best is not None
                and transform.is_identity
                and not best.is_identity
            )
            if better:
                best = transform
                best_score = score
        assert best is not None  # identity is always legal
        chosen[nest.name] = best
    return chosen

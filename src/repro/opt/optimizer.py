"""The layout optimizer façade.

``LayoutOptimizer`` runs the whole pipeline of the paper: build the
network, solve it with the chosen scheme, and return one layout per
array.  When the hard network is unsatisfiable (possible: different
nests may want irreconcilable layouts) the optimizer falls back to the
weighted branch & bound of :mod:`repro.csp.weighted`, which returns the
assignment violating the least total nest cost -- the graceful version
of "no solution exists".

:func:`select_transforms` then picks, per nest, the legal restructuring
best matched to the *final* layouts; this mirrors how the evaluated
binaries of Table 3 combine data transformations with (legal, purely
local) loop restructurings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.stats import SolverStats
from repro.csp.weighted import BranchAndBoundSolver
from repro.ir.program import Program
from repro.layout.candidates import nest_layout_combos
from repro.layout.layout import Layout, row_major
from repro.layout.locality import access_delta, has_spatial_locality, has_temporal_locality
from repro.opt.network_builder import BuildOptions, LayoutNetwork, build_layout_network
from repro.transform.catalog import legal_transforms
from repro.transform.unimodular_loop import LoopTransform

#: Scheme name -> solver factory (seed -> solver).
_SCHEMES = {
    "base": lambda seed: BacktrackingSolver(seed=seed),
    "enhanced": lambda seed: EnhancedSolver(seed=seed),
    "cbj": lambda seed: ConflictDirectedSolver(seed=seed),
    "forward-checking": lambda seed: ForwardCheckingSolver(seed=seed),
    "min-conflicts": lambda seed: MinConflictsSolver(seed=seed),
}


@dataclass
class OptimizationOutcome:
    """Result of a layout optimization run.

    Attributes:
        program: the optimized program's name.
        scheme: the solver scheme used.
        layouts: one layout per declared array.
        stats: solver effort counters.
        solve_seconds: end-to-end time (network build + solve).
        network: the constraint network with provenance.
        exact: True when the layouts satisfy every constraint; False
            when the weighted fallback produced a best-effort result.
    """

    program: str
    scheme: str
    layouts: dict[str, Layout]
    stats: SolverStats
    solve_seconds: float
    network: LayoutNetwork
    exact: bool


class LayoutOptimizer:
    """Front door of the library: programs in, layouts out.

    Args:
        scheme: "base", "enhanced", "cbj", "forward-checking",
            "min-conflicts", or an :class:`EnhancementConfig` for
            per-enhancement ablation runs.
        seed: RNG seed for the randomized schemes.
        options: network construction options.

    Raises:
        ValueError: for an unknown scheme name.
    """

    def __init__(
        self,
        scheme: str | EnhancementConfig = "enhanced",
        seed: int = 0,
        options: BuildOptions | None = None,
    ):
        if isinstance(scheme, EnhancementConfig):
            self._scheme_name = scheme.label()
            self._solver = EnhancedSolver(scheme, seed=seed)
        else:
            if scheme not in _SCHEMES:
                raise ValueError(
                    f"unknown scheme {scheme!r}; pick one of {sorted(_SCHEMES)}"
                )
            self._scheme_name = scheme
            self._solver = _SCHEMES[scheme](seed)
        self._options = options if options is not None else BuildOptions()

    def optimize(self, program: Program) -> OptimizationOutcome:
        """Choose one memory layout for every array of the program."""
        start = time.perf_counter()
        layout_network = build_layout_network(program, self._options)
        result = self._solver.solve(layout_network.network)
        exact = result.assignment is not None
        if exact:
            assignment = dict(result.assignment)
            stats = result.stats
        else:
            weighted_result = BranchAndBoundSolver().solve(layout_network.weighted())
            assignment = dict(weighted_result.assignment)
            stats = weighted_result.stats
            exact = weighted_result.fully_satisfied
        if exact:
            repair_inflation(layout_network.network, assignment, program)
        elapsed = time.perf_counter() - start

        layouts: dict[str, Layout] = {}
        for decl in program.arrays:
            chosen = assignment.get(decl.name)
            layouts[decl.name] = (
                chosen if chosen is not None else row_major(decl.rank)
            )
        return OptimizationOutcome(
            program=program.name,
            scheme=self._scheme_name,
            layouts=layouts,
            stats=stats,
            solve_seconds=elapsed,
            network=layout_network,
            exact=exact,
        )


def repair_inflation(network, assignment: dict, program: Program) -> None:
    """Swap each array to the best equivalent value among solutions.

    Constraint networks routinely admit several solutions (the paper
    observes base and enhanced finding different ones), and the solver
    has no reason to prefer the execution-friendly one.  This pass
    greedily replaces each array's layout with a domain value that is
    better on the lexicographic objective

    1. lower bounding-box inflation (footnote 2's data-space growth),
    2. more references with locality under the original loop order,

    whenever the swap keeps the assignment a solution -- it never
    leaves the solution set, so exactness is preserved.
    """
    from repro.layout.locality import (
        access_delta,
        has_spatial_locality,
        has_temporal_locality,
    )
    from repro.layout.mapping import LayoutMapping

    def objective(array: str, layout: Layout) -> tuple[float, int]:
        inflation = LayoutMapping.create(program.array(array), layout).inflation
        locality = 0
        for nest in program.nests_referencing(array):
            direction = tuple([0] * (nest.depth - 1) + [1])
            order = nest.index_order
            for reference in nest.references_to(array):
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta) or has_spatial_locality(
                    layout, delta
                ):
                    locality += nest.weight
        return (inflation, -locality)

    # Iterate to a fixpoint: improving one array can unlock a better
    # swap for a neighbor (bounded: each pass strictly improves the
    # global objective or stops).
    for _ in range(len(network.variables)):
        changed = False
        for array in network.variables:
            current = assignment[array]
            best = current
            best_key = objective(array, current)
            for candidate in network.domain(array):
                if candidate == current:
                    continue
                key = objective(array, candidate)
                if key >= best_key:
                    continue
                consistent = all(
                    network.check_pair(
                        array, candidate, neighbor, assignment[neighbor]
                    )
                    for neighbor in network.neighbors(array)
                )
                if consistent:
                    best = candidate
                    best_key = key
            if best != current:
                assignment[array] = best
                changed = True
        if not changed:
            break


def select_transforms(
    program: Program,
    layouts: Mapping[str, Layout],
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> dict[str, LoopTransform]:
    """Per nest, the legal restructuring best matched to final layouts.

    The score of a transform weighs references by the memory cost their
    locality class avoids: a reference with *no* locality pays roughly
    a full cache-miss per iteration, so it is worth far more to fix one
    such reference than to upgrade spatial locality (one miss per line,
    ~1/8 of the accesses) to temporal (same element every iteration).
    Ties prefer the identity (no restructuring without benefit).
    """
    chosen: dict[str, LoopTransform] = {}
    for nest in program.nests:
        order = nest.index_order
        best: LoopTransform | None = None
        best_score = -1
        for transform in legal_transforms(
            nest, include_reversals, skew_factors
        ):
            direction = transform.innermost_direction()
            score = 0
            for reference in nest.body:
                layout = layouts.get(reference.array)
                if layout is None:
                    continue
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta):
                    score += 7
                elif has_spatial_locality(layout, delta):
                    score += 6
            better = score > best_score or (
                score == best_score
                and best is not None
                and transform.is_identity
                and not best.is_identity
            )
            if better:
                best = transform
                best_score = score
        assert best is not None  # identity is always legal
        chosen[nest.name] = best
    return chosen

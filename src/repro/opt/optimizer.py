"""The layout optimizer façade.

``LayoutOptimizer`` runs the whole pipeline of the paper: build the
network, solve it with the chosen scheme, and return one layout per
array.  When the hard network is unsatisfiable (possible: different
nests may want irreconcilable layouts) the optimizer falls back to the
weighted branch & bound of :mod:`repro.csp.weighted`, which returns the
assignment violating the least total nest cost -- the graceful version
of "no solution exists".

:func:`select_transforms` then picks, per nest, the legal restructuring
best matched to the *final* layouts; this mirrors how the evaluated
binaries of Table 3 combine data transformations with (legal, purely
local) loop restructurings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.stats import SolverStats
from repro.csp.weighted import BranchAndBoundSolver
from repro.ir.program import Program
from repro.layout.candidates import nest_layout_combos
from repro.layout.layout import Layout, row_major
from repro.layout.locality import access_delta, has_spatial_locality, has_temporal_locality
from repro.opt.network_builder import BuildOptions, LayoutNetwork, build_layout_network
from repro.transform.catalog import legal_transforms
from repro.transform.unimodular_loop import LoopTransform

#: Scheme name -> solver factory (seed -> solver).  "weighted" is the
#: branch & bound over the nest-cost weighted network: always returns
#: an assignment, exact exactly when the hard network is satisfiable.
_SCHEMES = {
    "base": lambda seed: BacktrackingSolver(seed=seed),
    "enhanced": lambda seed: EnhancedSolver(seed=seed),
    "cbj": lambda seed: ConflictDirectedSolver(seed=seed),
    "forward-checking": lambda seed: ForwardCheckingSolver(seed=seed),
    "min-conflicts": lambda seed: MinConflictsSolver(seed=seed),
    "weighted": lambda seed: BranchAndBoundSolver(),
}


@dataclass
class OptimizationOutcome:
    """Result of a layout optimization run.

    Attributes:
        program: the optimized program's name.
        scheme: the solver scheme used.
        layouts: one layout per declared array.
        stats: solver effort counters.
        solve_seconds: end-to-end time (network build + solve).
        network: the constraint network with provenance.
        exact: True when the layouts satisfy every constraint; False
            when the weighted fallback produced a best-effort result.
    """

    program: str
    scheme: str
    layouts: dict[str, Layout]
    stats: SolverStats
    solve_seconds: float
    network: LayoutNetwork
    exact: bool


class LayoutOptimizer:
    """Front door of the library: programs in, layouts out.

    Args:
        scheme: "base", "enhanced", "cbj", "forward-checking",
            "min-conflicts", "weighted" (branch & bound over the
            nest-cost weighted network), an :class:`EnhancementConfig`
            for per-enhancement ablation runs, or a *portfolio
            strategy*: the string ``"portfolio:enhanced,cbj,weighted"``
            (or a :class:`repro.service.PortfolioConfig`) races the
            named schemes concurrently and the outcome's ``scheme``
            field reports which one won, e.g. ``"portfolio:cbj"``.
        seed: RNG seed for the randomized schemes.  Threaded into the
            ``"portfolio:..."`` string forms; a ``PortfolioConfig``
            instance carries its own seed, which takes precedence.
        options: network construction options.

    Raises:
        ValueError: for an unknown scheme name.
    """

    def __init__(
        self,
        scheme="enhanced",
        seed: int = 0,
        options: BuildOptions | None = None,
    ):
        self._portfolio = None
        self._solver = None
        portfolio_config = _as_portfolio_config(scheme, seed)
        if portfolio_config is not None:
            self._portfolio = portfolio_config
            self._scheme_name = f"portfolio[{','.join(portfolio_config.schemes)}]"
        elif isinstance(scheme, EnhancementConfig):
            self._scheme_name = scheme.label()
            self._solver = EnhancedSolver(scheme, seed=seed)
        else:
            if scheme not in _SCHEMES:
                raise ValueError(
                    f"unknown scheme {scheme!r}; pick one of {sorted(_SCHEMES)}"
                )
            self._scheme_name = scheme
            self._solver = _SCHEMES[scheme](seed)
        self._options = options if options is not None else BuildOptions()

    def optimize(self, program: Program) -> OptimizationOutcome:
        """Choose one memory layout for every array of the program."""
        if self._portfolio is not None:
            return self._optimize_portfolio(program)
        start = time.perf_counter()
        layout_network = build_layout_network(program, self._options)
        kernel = layout_network.kernel()
        if isinstance(self._solver, BranchAndBoundSolver):
            # First-class weighted scheme: solve the weighted network
            # directly -- exact iff the hard network is satisfiable.
            weighted_result = self._solver.solve_compiled(
                kernel, layout_network.weights
            )
            assignment = dict(weighted_result.assignment)
            stats = weighted_result.stats
            exact = weighted_result.fully_satisfied
        else:
            result = self._solver.solve(kernel)
            exact = result.assignment is not None
            if exact:
                assignment = dict(result.assignment)
                stats = result.stats
            else:
                weighted_result = BranchAndBoundSolver().solve_compiled(
                    kernel, layout_network.weights
                )
                assignment = dict(weighted_result.assignment)
                stats = weighted_result.stats
                exact = weighted_result.fully_satisfied
        if exact:
            repair_inflation(layout_network.network, assignment, program)
        elapsed = time.perf_counter() - start

        layouts: dict[str, Layout] = {}
        for decl in program.arrays:
            chosen = assignment.get(decl.name)
            layouts[decl.name] = (
                chosen if chosen is not None else row_major(decl.rank)
            )
        return OptimizationOutcome(
            program=program.name,
            scheme=self._scheme_name,
            layouts=layouts,
            stats=stats,
            solve_seconds=elapsed,
            network=layout_network,
            exact=exact,
        )

    def _optimize_portfolio(self, program: Program) -> OptimizationOutcome:
        """Delegate to the service layer's racing portfolio."""
        from repro.service.portfolio import PortfolioSolver

        result = PortfolioSolver(self._portfolio, options=self._options).optimize(
            program
        )
        network = result.network
        if network is None:  # served from a cache: rebuild provenance
            network = build_layout_network(program, self._options)
        return OptimizationOutcome(
            program=program.name,
            scheme=f"portfolio:{result.winner}",
            layouts=result.layouts,
            stats=result.winner_stats(),
            solve_seconds=result.solve_seconds,
            network=network,
            exact=result.exact,
        )


def _as_portfolio_config(scheme, seed: int):
    """Interpret a scheme argument as a portfolio strategy, if it is one.

    Accepts a :class:`repro.service.PortfolioConfig` instance or the
    string forms ``"portfolio"`` (default line-up) and
    ``"portfolio:a,b,c"``.  Returns None for plain scheme names.  The
    service import is lazy: :mod:`repro.service` imports this module.
    """
    if isinstance(scheme, str):
        if scheme != "portfolio" and not scheme.startswith("portfolio:"):
            return None
        from repro.service.portfolio import PortfolioConfig

        if scheme == "portfolio":
            return PortfolioConfig(seed=seed)
        return PortfolioConfig.parse(scheme[len("portfolio:"):], seed=seed)
    if isinstance(scheme, EnhancementConfig):
        return None
    from repro.service.portfolio import PortfolioConfig

    return scheme if isinstance(scheme, PortfolioConfig) else None


def repair_inflation(network, assignment: dict, program: Program) -> None:
    """Swap each array to the best equivalent value among solutions.

    Constraint networks routinely admit several solutions (the paper
    observes base and enhanced finding different ones), and the solver
    has no reason to prefer the execution-friendly one.  This pass
    greedily replaces each array's layout with a domain value that is
    better on the lexicographic objective

    1. lower bounding-box inflation (footnote 2's data-space growth),
    2. more references with locality under the original loop order,

    whenever the swap keeps the assignment a solution -- it never
    leaves the solution set, so exactness is preserved.
    """
    from repro.layout.locality import (
        access_delta,
        has_spatial_locality,
        has_temporal_locality,
    )
    from repro.layout.mapping import LayoutMapping

    objective_cache: dict[tuple[str, Layout], tuple[float, int]] = {}

    def objective(array: str, layout: Layout) -> tuple[float, int]:
        cached = objective_cache.get((array, layout))
        if cached is not None:
            return cached
        inflation = LayoutMapping.create(program.array(array), layout).inflation
        locality = 0
        for nest in program.nests_referencing(array):
            direction = tuple([0] * (nest.depth - 1) + [1])
            order = nest.index_order
            for reference in nest.references_to(array):
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta) or has_spatial_locality(
                    layout, delta
                ):
                    locality += nest.weight
        score = (inflation, -locality)
        objective_cache[(array, layout)] = score
        return score

    # Iterate to a fixpoint: improving one array can unlock a better
    # swap for a neighbor (bounded: each pass strictly improves the
    # global objective or stops).
    for _ in range(len(network.variables)):
        changed = False
        for array in network.variables:
            current = assignment[array]
            best = current
            best_key = objective(array, current)
            for candidate in network.domain(array):
                if candidate == current:
                    continue
                key = objective(array, candidate)
                if key >= best_key:
                    continue
                consistent = all(
                    network.check_pair(
                        array, candidate, neighbor, assignment[neighbor]
                    )
                    for neighbor in network.neighbors(array)
                )
                if consistent:
                    best = candidate
                    best_key = key
            if best != current:
                assignment[array] = best
                changed = True
        if not changed:
            break


def select_transforms(
    program: Program,
    layouts: Mapping[str, Layout],
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> dict[str, LoopTransform]:
    """Per nest, the legal restructuring best matched to final layouts.

    The score of a transform weighs references by the memory cost their
    locality class avoids: a reference with *no* locality pays roughly
    a full cache-miss per iteration, so it is worth far more to fix one
    such reference than to upgrade spatial locality (one miss per line,
    ~1/8 of the accesses) to temporal (same element every iteration).
    Ties prefer the identity (no restructuring without benefit).
    """
    chosen: dict[str, LoopTransform] = {}
    for nest in program.nests:
        order = nest.index_order
        best: LoopTransform | None = None
        best_score = -1
        for transform in legal_transforms(
            nest, include_reversals, skew_factors
        ):
            direction = transform.innermost_direction()
            score = 0
            for reference in nest.body:
                layout = layouts.get(reference.array)
                if layout is None:
                    continue
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta):
                    score += 7
                elif has_spatial_locality(layout, delta):
                    score += 6
            better = score > best_score or (
                score == best_score
                and best is not None
                and transform.is_identity
                and not best.is_identity
            )
            if better:
                best = transform
                best_score = score
        assert best is not None  # identity is always legal
        chosen[nest.name] = best
    return chosen

"""The layout optimizer façade, as a thin pass-pipeline assembler.

``LayoutOptimizer`` no longer interleaves the paper's phases in one
monolithic method: each phase is a first-class pass in
:mod:`repro.opt.passes` (build the network, solve it with the chosen
scheme or racing portfolio, repair the solution, pick per-nest loop
restructurings, optionally refine against a cost model), and the
façade's job is to assemble the default pipeline -- byte-identical
outcomes to the historical monolith -- or any custom one via the
``passes=``/``pipeline=`` overrides.  The pipeline runner gives every
pass its own observability span and a ``repro_pass_seconds{pass}``
histogram sample, surfaced per-outcome in ``pass_seconds`` and fleet-
wide in daemon ``stats``.

When the hard network is unsatisfiable (possible: different nests may
want irreconcilable layouts) the solve pass falls back to the weighted
branch & bound of :mod:`repro.csp.weighted`, which returns the
assignment violating the least total nest cost -- the graceful version
of "no solution exists".

:func:`select_transforms` (re-exported here from
:mod:`repro.opt.passes.transforms`) picks, per nest, the legal
restructuring best matched to the *final* layouts; this mirrors how
the evaluated binaries of Table 3 combine data transformations with
(legal, purely local) loop restructurings.  The opt-in ``joint`` pass
searches layouts and transforms together instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.splitsearch import (
    SEARCH_AUTO,
    SEARCHES,
    SplitSearchSolver,
)
from repro.csp.stats import SolverStats
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.opt.network_builder import BuildOptions, LayoutNetwork
from repro.opt.passes import (
    Pipeline,
    PipelineContext,
    resolve_passes,
)

# Historical homes: the scheme registry, repair fixpoint, transform
# selection and refinement report types grew up in this module; the
# service layer and downstream callers import them from here.
from repro.opt.passes.refine import CandidateScore, RefinementReport  # noqa: F401
from repro.opt.passes.solve import _SCHEMES, repair_inflation  # noqa: F401
from repro.opt.passes.transforms import (  # noqa: F401
    _select_transforms,
    select_transforms,
)


@dataclass
class OptimizationOutcome:
    """Result of a layout optimization run.

    Attributes:
        program: the optimized program's name.
        scheme: the solver scheme used.
        layouts: one layout per declared array.
        stats: solver effort counters.
        solve_seconds: end-to-end pipeline time.
        network: the constraint network with provenance.
        exact: True when the layouts satisfy every constraint; False
            when the weighted fallback produced a best-effort result.
        cost: the refining cost model's score of ``layouts`` (None
            when no refinement ran).
        refinement: the candidate table refinement considered (None
            when no refinement ran).
        transforms: per-nest loop restructurings matched to
            ``layouts`` (None when no transform pass ran).
        dynamic: per-array :class:`~repro.opt.dynamic.DynamicPlan`
            schedules (None unless the ``dynamic`` pass ran).
        pass_seconds: wall-clock per pipeline pass, in execution order.
    """

    program: str
    scheme: str
    layouts: dict[str, Layout]
    stats: SolverStats
    solve_seconds: float
    network: LayoutNetwork
    exact: bool
    cost: object | None = None
    refinement: RefinementReport | None = None
    transforms: dict | None = None
    dynamic: dict | None = None
    pass_seconds: dict[str, float] = field(default_factory=dict)


class LayoutOptimizer:
    """Front door of the library: programs in, layouts out.

    Args:
        scheme: "base", "enhanced", "cbj", "forward-checking",
            "min-conflicts", "split" (space-splitting parallel search
            over the forward-checking frontier), "weighted" (branch &
            bound over the nest-cost weighted network), an
            :class:`EnhancementConfig`
            for per-enhancement ablation runs, or a *portfolio
            strategy*: the string ``"portfolio:enhanced,cbj,weighted"``
            (or a :class:`repro.service.PortfolioConfig`) races the
            named schemes concurrently and the outcome's ``scheme``
            field reports which one won, e.g. ``"portfolio:cbj"``.
        seed: RNG seed for the randomized schemes.  Threaded into the
            ``"portfolio:..."`` string forms; a ``PortfolioConfig``
            instance carries its own seed, which takes precedence.
        options: network construction options.
        refine: close the analytic <-> empirical loop: a registered
            cost-model name (``"simulated"``, ``"analytic"``,
            ``"weighted"``) or a configured
            :class:`repro.eval.CostModel` instance.  The refine pass
            enumerates up to ``refine_top_k`` solutions of the
            compiled network alongside the solver's own answer and
            adopts the candidate the model scores cheapest; the
            outcome's ``cost`` and ``refinement`` fields carry the
            evidence.  ``None`` (default) keeps the classic behavior.
        refine_top_k: how many enumerated solutions to score.
        search: search-space execution mode, threaded into the
            ``"split"`` scheme and the refinement enumeration:
            ``"serial"``, ``"split"``, or ``"auto"`` (default; the
            split solver escalates only after its serial budget).
            When the mode resolves to ``"split"`` (explicitly or via
            ``REPRO_CSP_SEARCH``), refinement candidates stream from
            :func:`repro.csp.splitsearch.enumerate_solutions_parallel`
            -- the frontier is enumerated lazily across worker
            processes and stops at ``refine_top_k`` solutions.
        passes: override the default pass list: a sequence mixing
            registered pass names (``"build"``, ``"solve"``,
            ``"repair"``, ``"transform"``, ``"refine"``, ``"joint"``,
            ``"dynamic"``, anything added via
            :func:`repro.opt.passes.register_pass`) and ready
            :class:`~repro.opt.passes.Pass` instances; the string
            ``"default"`` expands to the default list in place.
        pipeline: a fully assembled
            :class:`~repro.opt.passes.Pipeline` (or pass sequence) to
            run as-is.  Mutually exclusive with ``passes``.

    Raises:
        ValueError: for an unknown scheme name, unknown refine model,
            unknown search mode, non-positive ``refine_top_k``,
            unknown pass names, or ``passes`` combined with
            ``pipeline``.
    """

    def __init__(
        self,
        scheme="enhanced",
        seed: int = 0,
        options: BuildOptions | None = None,
        refine=None,
        refine_top_k: int = 8,
        search: str = SEARCH_AUTO,
        passes=None,
        pipeline=None,
    ):
        if search not in SEARCHES:
            raise ValueError(
                f"unknown search {search!r}; pick one of {SEARCHES}"
            )
        self._search = search
        self._seed = seed
        self._portfolio = None
        self._portfolio_solver = None
        self._solver = None
        portfolio_config = _as_portfolio_config(scheme, seed)
        if portfolio_config is not None:
            self._portfolio = portfolio_config
            self._scheme_name = f"portfolio[{','.join(portfolio_config.schemes)}]"
        elif isinstance(scheme, EnhancementConfig):
            self._scheme_name = scheme.label()
            self._solver = EnhancedSolver(scheme, seed=seed)
        else:
            if scheme not in _SCHEMES:
                raise ValueError(
                    f"unknown scheme {scheme!r}; pick one of {sorted(_SCHEMES)}"
                )
            self._scheme_name = scheme
            if scheme == "split":
                # Thread the search mode through (the registry factory
                # keeps the solver's own default for other callers).
                self._solver = SplitSearchSolver(seed=seed, search=search)
            else:
                self._solver = _SCHEMES[scheme](seed)
        self._options = options if options is not None else BuildOptions()
        if refine_top_k <= 0:
            raise ValueError("refine_top_k must be positive")
        self._refine_top_k = refine_top_k
        if isinstance(refine, str):
            from repro.eval import get_cost_model

            # The weighted model scores against a layout network, which
            # must be built the same way the candidates were.
            kwargs = {"options": self._options} if refine == "weighted" else {}
            refine = get_cost_model(refine, **kwargs)
        self._refine = refine

        if passes is not None and pipeline is not None:
            raise ValueError("pass either passes= or pipeline=, not both")
        if pipeline is not None:
            self._pipeline = (
                pipeline
                if isinstance(pipeline, Pipeline)
                else Pipeline(pipeline)
            )
        else:
            spec = passes if passes is not None else ["default"]
            self._pipeline = Pipeline(resolve_passes(spec, self))

    # -- configuration surface read by the pass factories ---------------

    @property
    def options(self) -> BuildOptions:
        """Network construction options."""
        return self._options

    @property
    def scheme_name(self) -> str:
        """The configured scheme's display name."""
        return self._scheme_name

    @property
    def seed(self) -> int:
        """RNG seed for the randomized schemes."""
        return self._seed

    @property
    def solver(self):
        """The configured direct solver (None on the portfolio path)."""
        return self._solver

    @property
    def refine(self):
        """The configured refining cost model (may be None)."""
        return self._refine

    @property
    def refine_top_k(self) -> int:
        """How many enumerated candidates refinement/joint search score."""
        return self._refine_top_k

    @property
    def search(self) -> str:
        """The configured search-space execution mode."""
        return self._search

    @property
    def portfolio_config(self):
        """The portfolio configuration (None for direct schemes)."""
        return self._portfolio

    @property
    def pipeline(self) -> Pipeline:
        """The assembled pass pipeline."""
        return self._pipeline

    def portfolio_solver(self):
        """The racing portfolio solver, built once and kept warm.

        Resident processes (the service daemon's warm workers) keep
        optimizers alive across requests, and rebuilding the portfolio
        plumbing per call was the last per-request setup cost left on
        that path.
        """
        if self._portfolio_solver is None:
            from repro.service.portfolio import PortfolioSolver

            self._portfolio_solver = PortfolioSolver(
                self._portfolio, options=self._options
            )
        return self._portfolio_solver

    def default_pass_names(self) -> tuple[str, ...]:
        """The default pipeline for this configuration.

        ``build -> solve -> repair [-> refine] -> transform``: the
        refine pass joins exactly when a refining model is configured,
        and transform selection runs last so the reported transforms
        always match the final layouts.
        """
        names = ["build", "solve", "repair"]
        if self._refine is not None:
            names.append("refine")
        names.append("transform")
        return tuple(names)

    def optimize(self, program: Program) -> OptimizationOutcome:
        """Choose one memory layout for every array of the program."""
        ctx = PipelineContext(
            program=program,
            options=self._options,
            scheme=self._scheme_name,
        )
        self._pipeline.run(ctx)
        return OptimizationOutcome(
            program=program.name,
            scheme=ctx.scheme,
            layouts=ctx.layouts if ctx.layouts is not None else {},
            stats=ctx.stats if ctx.stats is not None else SolverStats(),
            solve_seconds=ctx.solve_seconds,
            network=ctx.network,
            exact=ctx.exact,
            cost=ctx.cost,
            refinement=ctx.refinement,
            transforms=ctx.transforms,
            dynamic=ctx.dynamic,
            pass_seconds=dict(ctx.pass_seconds),
        )


#: Bounded LRU pool of shared optimizer instances, keyed by
#: configuration; hits refresh recency so the hottest configurations
#: survive eviction.
_SHARED_OPTIMIZERS: OrderedDict[tuple, LayoutOptimizer] = OrderedDict()
_SHARED_OPTIMIZERS_CAP = 32


def shared_optimizer(
    scheme="enhanced",
    seed: int = 0,
    options: BuildOptions | None = None,
    refine=None,
    refine_top_k: int = 8,
    search: str = SEARCH_AUTO,
) -> LayoutOptimizer:
    """A process-shared, reusable :class:`LayoutOptimizer`.

    Resident services serve many requests per process; constructing a
    fresh optimizer per request rebuilds the same solver/portfolio
    plumbing every time.  This factory memoizes instances by their
    full configuration (an optimizer is stateless between ``optimize``
    calls, so sharing is safe within one thread of control) and keeps
    the pool bounded with least-recently-used eviction.  Configured
    model instances (``refine`` given as a
    :class:`~repro.eval.CostModel`) are not memoizable -- those
    callers get a fresh optimizer.
    """
    if refine is not None and not isinstance(refine, str):
        return LayoutOptimizer(
            scheme=scheme, seed=seed, options=options,
            refine=refine, refine_top_k=refine_top_k, search=search,
        )
    key = (repr(scheme), seed, repr(options), refine, refine_top_k, search)
    optimizer = _SHARED_OPTIMIZERS.get(key)
    if optimizer is None:
        optimizer = LayoutOptimizer(
            scheme=scheme, seed=seed, options=options,
            refine=refine, refine_top_k=refine_top_k, search=search,
        )
        if len(_SHARED_OPTIMIZERS) >= _SHARED_OPTIMIZERS_CAP:
            _SHARED_OPTIMIZERS.popitem(last=False)
        _SHARED_OPTIMIZERS[key] = optimizer
    else:
        _SHARED_OPTIMIZERS.move_to_end(key)
    return optimizer


def _as_portfolio_config(scheme, seed: int):
    """Interpret a scheme argument as a portfolio strategy, if it is one.

    Accepts a :class:`repro.service.PortfolioConfig` instance or the
    string forms ``"portfolio"`` (default line-up) and
    ``"portfolio:a,b,c"``.  Returns None for plain scheme names.  The
    service import is lazy: :mod:`repro.service` imports this module.
    """
    if isinstance(scheme, str):
        if scheme != "portfolio" and not scheme.startswith("portfolio:"):
            return None
        from repro.service.portfolio import PortfolioConfig

        if scheme == "portfolio":
            return PortfolioConfig(seed=seed)
        return PortfolioConfig.parse(scheme[len("portfolio:"):], seed=seed)
    if isinstance(scheme, EnhancementConfig):
        return None
    from repro.service.portfolio import PortfolioConfig

    return scheme if isinstance(scheme, PortfolioConfig) else None

"""The prior-work heuristic baseline [9] (Leung & Zahorjan style).

Summarized in the paper's Section 5: order the loop nests by an
importance criterion; process them most-important-first; for each nest
pick a good (loop transformation, memory layouts) combination; then
propagate the already-fixed layouts forward, so later (cheaper) nests
only choose layouts for arrays not yet fixed.  "This approach tends to
give priority to satisfying the layout requirements of costly nests."
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.ir.program import Program
from repro.layout.candidates import LayoutCombo, nest_layout_combos
from repro.layout.layout import Layout, row_major
from repro.transform.unimodular_loop import LoopTransform
from repro.transform.catalog import legal_transforms


@dataclass
class HeuristicOutcome:
    """Result of the propagation heuristic.

    Attributes:
        program: the program name.
        layouts: one layout per declared array.
        transforms: the per-nest restructuring the heuristic selected.
        solve_seconds: wall-clock decision time.
        nest_order: the importance order used.
    """

    program: str
    layouts: dict[str, Layout]
    transforms: dict[str, str]
    solve_seconds: float
    nest_order: tuple[str, ...]


class HeuristicOptimizer:
    """Greedy nest-ordered layout propagation.

    Args:
        include_reversals: widen the per-nest transform catalog.
        skew_factors: innermost skew factors for the catalog.
    """

    name = "heuristic"

    def __init__(
        self,
        include_reversals: bool = False,
        skew_factors: tuple[int, ...] = (),
    ):
        self._include_reversals = include_reversals
        self._skew_factors = skew_factors

    def optimize(self, program: Program) -> HeuristicOutcome:
        """Run the heuristic on a program."""
        start = time.perf_counter()
        ordered = sorted(
            program.nests, key=lambda nest: -nest.estimated_cost
        )
        fixed: dict[str, Layout] = {}
        transforms: dict[str, str] = {}
        for nest in ordered:
            combos = nest_layout_combos(
                program,
                nest,
                include_reversals=self._include_reversals,
                skew_factors=self._skew_factors,
            )
            combo = self._pick_combo(combos, fixed)
            if combo is None:
                transforms[nest.name] = "identity"
                continue
            transforms[nest.name] = combo.transform
            for array, layout in combo.assignments:
                if array not in fixed:
                    fixed[array] = layout
        layouts = {
            decl.name: fixed.get(decl.name, row_major(decl.rank))
            for decl in program.arrays
        }
        elapsed = time.perf_counter() - start
        return HeuristicOutcome(
            program=program.name,
            layouts=layouts,
            transforms=transforms,
            solve_seconds=elapsed,
            nest_order=tuple(nest.name for nest in ordered),
        )

    @staticmethod
    def _pick_combo(
        combos: list[LayoutCombo], fixed: dict[str, Layout]
    ) -> LayoutCombo | None:
        """The combo agreeing most with already-fixed layouts.

        Score = number of fixed arrays whose combo layout matches minus
        the number that disagree.  Ties keep the *earliest* combo,
        i.e. the least-restructured one (the catalog lists the identity
        first) -- mirroring [9], which only restructures a nest when
        locality demands it.
        """
        if not combos:
            return None
        best: LayoutCombo | None = None
        best_score: int | None = None
        for combo in combos:
            agreements = 0
            disagreements = 0
            for array, layout in combo.assignments:
                if array in fixed:
                    if fixed[array] == layout:
                        agreements += 1
                    else:
                        disagreements += 1
            score = agreements - disagreements
            if best_score is None or score > best_score:
                best = combo
                best_score = score
        return best

"""End-to-end memory layout optimization.

Ties the substrates together: build the constraint network from a
program (Section 3), solve it with the base or enhanced scheme
(Section 4), fall back to weighted branch & bound when the hard network
is unsatisfiable, and pick per-nest loop restructurings consistent with
the chosen layouts for the execution-time evaluation (Section 5).

Also contains the prior-work heuristic [9] used as the comparison
baseline and the dynamic-layout planner (the paper's second future-work
direction).
"""

from repro.opt.network_builder import (
    BuildOptions,
    LayoutNetwork,
    build_layout_network,
)
from repro.opt.optimizer import (
    CandidateScore,
    LayoutOptimizer,
    OptimizationOutcome,
    RefinementReport,
    select_transforms,
    repair_inflation,
    shared_optimizer,
)
from repro.opt.heuristic import HeuristicOptimizer
from repro.opt.dynamic import DynamicLayoutPlanner, DynamicPlan
from repro.opt.report import format_table, optimization_report
from repro.opt.passes import (
    BuildNetworkPass,
    DynamicLayoutPass,
    JointSearchPass,
    Pass,
    Pipeline,
    PipelineContext,
    PipelineError,
    RefinementPass,
    RepairInflationPass,
    SolvePass,
    TransformSelectionPass,
    available_passes,
    register_pass,
)

__all__ = [
    "BuildOptions",
    "LayoutNetwork",
    "build_layout_network",
    "CandidateScore",
    "LayoutOptimizer",
    "OptimizationOutcome",
    "RefinementReport",
    "select_transforms",
    "repair_inflation",
    "shared_optimizer",
    "HeuristicOptimizer",
    "DynamicLayoutPlanner",
    "DynamicPlan",
    "format_table",
    "optimization_report",
    "Pass",
    "Pipeline",
    "PipelineContext",
    "PipelineError",
    "BuildNetworkPass",
    "SolvePass",
    "RepairInflationPass",
    "TransformSelectionPass",
    "RefinementPass",
    "JointSearchPass",
    "DynamicLayoutPass",
    "available_passes",
    "register_pass",
]

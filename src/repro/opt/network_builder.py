"""Program -> constraint network construction (Section 3).

Variables are the program's referenced arrays; the domain ``M_i`` of an
array is every layout some nest would like it to have (plus the
standard layouts as fallbacks); the constraint ``S_ij`` collects, for
every nest touching both arrays and every candidate restructuring of
that nest, the pair of layouts that restructuring wants -- "each pair
represents the best layout choice under a given loop restructuring".

Two nests can constrain the same array pair.  The paper keeps a single
``S_ij`` per pair, so the pairs must be combined; we support both
interpretations:

* ``combine="union"`` (default, matching the paper's example): a
  selected pair need only be the preference of *some* nest;
* ``combine="intersect"``: the pair must suit *every* nest -- stricter,
  and often unsatisfiable, in which case the builder falls back to the
  union for that pair and records a note.

Each constraint also carries a weight (the total estimated cost of the
contributing nests) for the weighted future-work extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.csp.compiled import CompiledNetwork, compile_network
from repro.csp.network import ConstraintNetwork
from repro.csp.weighted import WeightedNetwork
from repro.ir.program import Program
from repro.layout.candidates import (
    LayoutCombo,
    candidate_layouts_for_array,
    nest_layout_combos,
)
from repro.layout.layout import Layout


@dataclass(frozen=True)
class BuildOptions:
    """Knobs for network construction.

    Attributes:
        include_standard: add the conventional layouts to every domain.
        include_reversals: consider reversal-composed restructurings.
        skew_factors: innermost-loop skew factors to consider.
        combine: "union" or "intersect" (see module docstring).
    """

    include_standard: bool = True
    include_reversals: bool = False
    skew_factors: tuple[int, ...] = ()
    combine: str = "union"

    def __post_init__(self) -> None:
        if self.combine not in ("union", "intersect"):
            raise ValueError(f"unknown combine mode {self.combine!r}")


@dataclass
class LayoutNetwork:
    """The built network plus provenance information.

    Attributes:
        network: the binary constraint network over array layouts
            (the authoring representation).
        weights: per-pair constraint weights (nest cost totals).
        combos: the per-nest layout combinations that generated it.
        notes: human-readable remarks (e.g. intersect fallbacks).
        compiled: the execution-form kernel, compiled once at build
            time so no consumer (one scheme, a whole racing portfolio,
            the fingerprinter) ever pays recompilation.
    """

    network: ConstraintNetwork
    weights: dict[frozenset[str], float]
    combos: dict[str, list[LayoutCombo]]
    notes: list[str] = field(default_factory=list)
    compiled: CompiledNetwork | None = None

    def kernel(self) -> CompiledNetwork:
        """The compiled execution form (compiling lazily if unset)."""
        if self.compiled is None:
            self.compiled = compile_network(self.network)
        return self.compiled

    def weighted(self) -> WeightedNetwork:
        """The network with its nest-cost weights attached."""
        return WeightedNetwork(self.network, self.weights)

    @property
    def domain_size(self) -> int:
        """The paper's Table 1 'Domain Size' (sum of domain sizes)."""
        return self.network.total_domain_size


def build_layout_network(
    program: Program, options: BuildOptions | None = None
) -> LayoutNetwork:
    """Construct the layout constraint network of a program.

    Raises:
        ValueError: if the program references no arrays.
    """
    options = options if options is not None else BuildOptions()
    arrays = program.referenced_arrays()
    if not arrays:
        raise ValueError(f"program {program.name} references no arrays")

    network = ConstraintNetwork()
    for array in arrays:
        domain = candidate_layouts_for_array(
            program,
            array,
            include_standard=options.include_standard,
            include_reversals=options.include_reversals,
            skew_factors=options.skew_factors,
        )
        network.add_variable(array, domain)

    combos_by_nest: dict[str, list[LayoutCombo]] = {}
    pair_sources: dict[frozenset[str], list[set[tuple[Layout, Layout]]]] = {}
    pair_orientation: dict[frozenset[str], tuple[str, str]] = {}
    weights: dict[frozenset[str], float] = {}
    notes: list[str] = []

    for nest in program.nests:
        combos = nest_layout_combos(
            program,
            nest,
            include_reversals=options.include_reversals,
            skew_factors=options.skew_factors,
        )
        combos_by_nest[nest.name] = combos
        if not combos:
            continue
        constrained = sorted(
            {array for combo in combos for array in combo.arrays()}
        )
        nest_pairs: dict[frozenset[str], set[tuple[Layout, Layout]]] = {}
        for combo in combos:
            for i, first in enumerate(constrained):
                layout_first = combo.layout_of(first)
                for second in constrained[i + 1:]:
                    layout_second = combo.layout_of(second)
                    if layout_first is None and layout_second is None:
                        # This restructuring leaves both arrays free
                        # (temporal locality): it imposes nothing.
                        continue
                    key = frozenset((first, second))
                    pair_orientation.setdefault(key, (first, second))
                    oriented = pair_orientation[key]
                    # An array the restructuring leaves free (temporal
                    # locality) is a *wildcard*: any layout in its
                    # domain is acceptable alongside the partner's
                    # preference under this restructuring.
                    firsts = (
                        [layout_first]
                        if layout_first is not None
                        else list(network.domain(first))
                    )
                    seconds = (
                        [layout_second]
                        if layout_second is not None
                        else list(network.domain(second))
                    )
                    bucket = nest_pairs.setdefault(key, set())
                    for value_first in firsts:
                        for value_second in seconds:
                            pair = (
                                (value_first, value_second)
                                if oriented == (first, second)
                                else (value_second, value_first)
                            )
                            bucket.add(pair)
        for key, pairs in nest_pairs.items():
            pair_sources.setdefault(key, []).append(pairs)
            weights[key] = weights.get(key, 0.0) + float(nest.estimated_cost)

    for key, source_sets in pair_sources.items():
        first, second = pair_orientation[key]
        if options.combine == "intersect" and len(source_sets) > 1:
            merged = set.intersection(*source_sets)
            if not merged:
                merged = set.union(*source_sets)
                notes.append(
                    f"constraint ({first}, {second}): empty intersection "
                    "across nests; fell back to union"
                )
        else:
            merged = set.union(*source_sets)
        network.add_constraint(first, second, merged)

    return LayoutNetwork(
        network, weights, combos_by_nest, notes, compiled=compile_network(network)
    )

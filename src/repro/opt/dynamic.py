"""Dynamic memory layouts (the paper's second future-work direction).

"We would like to expand our constraint network formulation to
accommodate dynamic memory layouts, i.e., the layouts that can change
during execution based on the requirements of the different segments of
the program."

Given a per-array sequence of nests, the planner chooses a layout *per
nest* minimizing total analytic cost: per-nest access cost (references
that miss spatial locality under the layout are charged full-line
misses) plus a redistribution cost whenever the layout changes between
consecutive nests (one read + one write of every element).  Because the
cost decomposes per array, each array is an independent shortest-path
problem over (nest stage, layout) states, solved exactly by dynamic
programming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.layout.candidates import candidate_layouts_for_array
from repro.layout.layout import Layout
from repro.layout.locality import (
    access_delta,
    has_spatial_locality,
    has_temporal_locality,
)

#: Relative cost of an access with / without spatial locality.  The
#: ratio approximates a line-reuse hit (1 miss per line of 8 elements)
#: versus a per-access miss.
_LOCAL_ACCESS_COST = 0.125
_NONLOCAL_ACCESS_COST = 1.0

#: Per-element cost of redistributing an array between two layouts
#: (one read plus one write per element).
_REDISTRIBUTION_COST_PER_ELEMENT = 2.0


@dataclass(frozen=True)
class DynamicPlan:
    """The chosen layout schedule for one array.

    Attributes:
        array: the array name.
        schedule: (nest name, layout) in program order; only nests
            referencing the array appear.
        total_cost: analytic cost of the schedule.
        static_cost: cost of the best *single* layout (for comparison).
        changes: number of redistributions the schedule performs.
        redistribution_cost: total cost the schedule pays for its
            redistributions (``changes`` x per-change cost; part of
            ``total_cost``).
    """

    array: str
    schedule: tuple[tuple[str, Layout], ...]
    total_cost: float
    static_cost: float
    changes: int
    redistribution_cost: float = 0.0

    @property
    def improvement(self) -> float:
        """Fractional cost reduction versus the best static layout."""
        if self.static_cost == 0:
            return 0.0
        return 1.0 - self.total_cost / self.static_cost


class DynamicLayoutPlanner:
    """Exact per-array dynamic-layout scheduling by DP."""

    def __init__(
        self,
        redistribution_cost_per_element: float = _REDISTRIBUTION_COST_PER_ELEMENT,
    ):
        if redistribution_cost_per_element < 0:
            raise ValueError("redistribution cost cannot be negative")
        self._redistribution = redistribution_cost_per_element

    def access_cost(
        self, program: Program, nest: LoopNest, array: str, layout: Layout
    ) -> float:
        """Analytic cost of one nest's accesses to one array under a layout."""
        order = nest.index_order
        direction = tuple([0] * (nest.depth - 1) + [1])
        total = 0.0
        for reference in nest.references_to(array):
            delta = access_delta(reference, order, direction)
            if has_temporal_locality(delta) or has_spatial_locality(layout, delta):
                per_access = _LOCAL_ACCESS_COST
            else:
                per_access = _NONLOCAL_ACCESS_COST
            total += per_access * nest.trip_count * nest.weight
        return total

    def plan(self, program: Program, array: str) -> DynamicPlan:
        """Optimal layout schedule of one array over the program.

        Raises:
            ValueError: if no nest references the array.
        """
        nests = program.nests_referencing(array)
        if not nests:
            raise ValueError(f"array {array} is referenced by no nest")
        candidates = candidate_layouts_for_array(program, array)
        decl = program.array(array)
        change_cost = self._redistribution * decl.element_count

        # stage_costs[s][l]: access cost of nest s under candidate l.
        stage_costs = [
            [self.access_cost(program, nest, array, layout) for layout in candidates]
            for nest in nests
        ]

        # DP over (stage, layout).
        infinity = float("inf")
        best = list(stage_costs[0])
        parents: list[list[int | None]] = [[None] * len(candidates)]
        for stage in range(1, len(nests)):
            new_best = [infinity] * len(candidates)
            parent_row: list[int | None] = [None] * len(candidates)
            for current in range(len(candidates)):
                for previous in range(len(candidates)):
                    transition = 0.0 if previous == current else change_cost
                    cost = best[previous] + transition + stage_costs[stage][current]
                    if cost < new_best[current]:
                        new_best[current] = cost
                        parent_row[current] = previous
            best = new_best
            parents.append(parent_row)

        final = min(range(len(candidates)), key=lambda l: best[l])
        total_cost = best[final]
        # Reconstruct the schedule.
        indices = [final]
        for stage in range(len(nests) - 1, 0, -1):
            previous = parents[stage][indices[-1]]
            assert previous is not None
            indices.append(previous)
        indices.reverse()
        schedule = tuple(
            (nest.name, candidates[index]) for nest, index in zip(nests, indices)
        )
        changes = sum(
            1 for a, b in zip(indices, indices[1:]) if a != b
        )

        static_cost = min(
            sum(stage_costs[stage][layout_index] for stage in range(len(nests)))
            for layout_index in range(len(candidates))
        )
        return DynamicPlan(
            array,
            schedule,
            total_cost,
            static_cost,
            changes,
            redistribution_cost=changes * change_cost,
        )

    def plan_all(self, program: Program) -> dict[str, DynamicPlan]:
        """Schedules for every referenced array."""
        return {
            array: self.plan(program, array)
            for array in program.referenced_arrays()
        }

"""Joint layout x transform search pass.

The default pipeline is sequential: layouts are frozen first, then
each nest independently picks the restructuring best matched to them
(:func:`~repro.opt.passes.transforms.select_transforms`).  That misses
combinations where a *worse-looking* layout plus a non-obvious legal
transform beats the greedy pair -- the composition gap the
QCSP-complexity line of work locates the hardness in.

:class:`JointSearchPass` searches both together: for every layout
candidate (the solver's answer plus enumerated alternatives of the
compiled network, the same pool refinement scores), it seeds from the
sequential choice and then runs per-nest coordinate descent over the
nest's full legal-transform catalog, keeping any strictly cheaper
(model-scored) transform.  Because the sequential default's
(layout, transform) combination is always in the pool, the jointly
chosen pair is never worse than the default under the scoring model
-- and is strictly better whenever coordinate descent finds a move
the greedy per-nest score ranked wrong.
"""

from __future__ import annotations

import time

from repro.csp.splitsearch import SEARCH_AUTO, SEARCH_SPLIT, resolve_search
from repro.layout.layout import Layout, row_major
from repro.obs import trace as obs_trace
from repro.opt.passes.base import PipelineContext
from repro.opt.passes.refine import (
    CandidateScore,
    RefinementReport,
    _layout_key,
)
from repro.opt.passes.transforms import _select_transforms
from repro.transform.catalog import legal_transforms


class JointSearchPass:
    """Score (layout candidate x legal per-nest transforms) jointly.

    Args:
        model: the scoring cost model; ``None`` uses the analytic
            model.  The optimizer's pass factory threads its configured
            ``refine`` model through, so ``refine="simulated"`` makes
            the joint search simulator-guided.
        top_k: how many enumerated layout alternatives to consider
            beside the solver's own answer.
        search: ``"serial"``/``"split"``/``"auto"`` -- split streams
            the alternatives from the parallel frontier enumerator.
        max_sweeps: coordinate-descent sweeps over the nests per
            candidate (each sweep re-visits every nest; descent stops
            early when a sweep changes nothing).

    The pass fills ``layouts``, ``transforms``, ``cost`` and a
    ``refinement`` report whose candidate rows carry each candidate's
    jointly improved score, so reports and tooling show the evidence
    exactly like simulation-guided refinement.
    """

    name = "joint"
    requires: tuple[str, ...] = ("layouts", "network")
    provides: tuple[str, ...] = ("layouts", "transforms", "cost", "refinement")

    def __init__(
        self,
        model=None,
        top_k: int = 8,
        search: str = SEARCH_AUTO,
        max_sweeps: int = 2,
    ):
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if max_sweeps <= 0:
            raise ValueError("max_sweeps must be positive")
        self._model = model
        self._top_k = top_k
        self._search = search
        self._max_sweeps = max_sweeps

    def run(self, ctx: PipelineContext) -> None:
        from repro.csp.compiled import enumerate_solutions
        from repro.csp.splitsearch import enumerate_solutions_parallel
        from repro.eval import AnalyticCostModel, kendall_tau

        start = time.perf_counter()
        model = self._model if self._model is not None else AnalyticCostModel()
        analytic = model if model.name == "analytic" else AnalyticCostModel()

        split = resolve_search(self._search) == SEARCH_SPLIT
        with obs_trace.span("joint_search", model=model.name) as joint_span:
            if split:
                solutions = enumerate_solutions_parallel(
                    ctx.network.kernel(), self._top_k
                )
            else:
                solutions = enumerate_solutions(
                    ctx.network.kernel(), self._top_k
                )
            pool: list[tuple[str, dict[str, Layout]]] = [
                ("search", dict(ctx.layouts))
            ]
            seen = {_layout_key(ctx.layouts)}
            for index, assignment in enumerate(solutions):
                layouts = {
                    decl.name: assignment.get(decl.name, row_major(decl.rank))
                    for decl in ctx.program.arrays
                }
                key = _layout_key(layouts)
                if key in seen:
                    continue
                seen.add(key)
                pool.append((f"solution-{index + 1}", layouts))
            joint_span.set_attribute("candidates", len(pool))

            scored = []
            moves_total = 0
            for label, layouts in pool:
                transforms, cost, moves = self._descend(ctx, model, layouts)
                moves_total += moves
                analytic_value = (
                    cost.value
                    if analytic is model
                    else analytic.score(ctx.program, layouts, transforms).value
                )
                scored.append((label, layouts, analytic_value, cost, transforms))
            joint_span.set_attribute("transform_moves", moves_total)

        best = min(range(len(scored)), key=lambda i: scored[i][3].value)
        agreement = kendall_tau(
            [entry[2] for entry in scored],
            [entry[3].value for entry in scored],
        )
        report = RefinementReport(
            model=model.name,
            candidates=tuple(
                CandidateScore(
                    label=label,
                    layouts=layouts,
                    analytic_value=analytic_value,
                    refined_value=cost.value,
                    chosen=(index == best),
                )
                for index, (label, layouts, analytic_value, cost, _) in enumerate(
                    scored
                )
            ),
            agreement=agreement,
            evaluate_seconds=time.perf_counter() - start,
        )
        ctx.layouts = dict(scored[best][1])
        ctx.transforms = scored[best][4]
        ctx.cost = scored[best][3]
        ctx.refinement = report

    def _descend(self, ctx: PipelineContext, model, layouts):
        """Per-nest coordinate descent from the sequential seed.

        Returns ``(transforms, cost, moves)`` where ``moves`` counts
        accepted transform changes (0 means the sequential choice was
        already a local optimum under the model).
        """
        include_reversals = ctx.options.include_reversals
        skew_factors = ctx.options.skew_factors
        transforms = _select_transforms(
            ctx.program, layouts, include_reversals, skew_factors
        )
        cost = model.score(ctx.program, layouts, transforms)
        moves = 0
        for _ in range(self._max_sweeps):
            changed = False
            for nest in ctx.program.nests:
                for transform in legal_transforms(
                    nest, include_reversals, skew_factors
                ):
                    if transform == transforms[nest.name]:
                        continue
                    trial = dict(transforms)
                    trial[nest.name] = transform
                    trial_cost = model.score(ctx.program, layouts, trial)
                    if trial_cost.value < cost.value:
                        transforms = trial
                        cost = trial_cost
                        changed = True
                        moves += 1
            if not changed:
                break
        return transforms, cost, moves

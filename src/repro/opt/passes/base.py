"""The pass-pipeline substrate: context, protocol, runner, registry.

The optimizer used to be one monolithic façade interleaving every
phase of the paper's pipeline (build the constraint network, solve it,
repair the solution, pick loop restructurings, optionally refine
against the simulator).  Here each phase is a first-class *pass*: a
named object with declared inputs/outputs that reads and writes one
shared :class:`PipelineContext`.  The :class:`Pipeline` runner threads
the context through the passes in order, wrapping every pass in its
own observability span (``pass:<name>``) and recording its wall clock
into the ``repro_pass_seconds{pass}`` histogram and the context's
``pass_seconds`` table -- so "where did this optimize() call's time
go?" is answerable per pass, locally and in daemon ``stats``.

Passes are composable and reorderable: the default pipeline reproduces
the classic façade byte for byte, while opt-in passes
(:class:`~repro.opt.passes.joint.JointSearchPass`,
:class:`~repro.opt.passes.dynamic.DynamicLayoutPass`) slot into the
same sequence without touching the others.  Custom passes register a
factory under a name (:func:`register_pass`) and then appear in
``LayoutOptimizer(passes=[...])`` and the CLI ``--passes`` flag like
the built-ins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, Sequence, runtime_checkable

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS

#: The per-pass wall-clock histogram.  Emitted by the pipeline runner
#: for every pass it executes, and by the service layer's portfolio
#: path for the equivalent phases it runs itself (the daemon serves
#: solves through the portfolio directly, without a pipeline object in
#: front) -- one metric name, one ``pass`` label vocabulary, so daemon
#: ``stats`` rolls both up into a single per-pass breakdown.
PASS_SECONDS_METRIC = "repro_pass_seconds"


def record_pass_seconds(name: str, seconds: float) -> None:
    """Observe one pass execution in ``repro_pass_seconds{pass}``."""
    obs_metrics.observe(
        PASS_SECONDS_METRIC,
        seconds,
        labels={"pass": name},
        help="Optimizer pass wall-clock seconds, by pass name.",
        bounds=DEFAULT_LATENCY_BUCKETS,
    )


class PipelineError(ValueError):
    """A pipeline was assembled or run inconsistently."""


@dataclass
class PipelineContext:
    """Everything the passes thread between each other.

    One context lives for one ``optimize()`` call.  Passes read the
    fields their ``requires`` declares and fill the fields their
    ``provides`` declares; the façade assembles the final
    :class:`~repro.opt.optimizer.OptimizationOutcome` from the context
    after the last pass ran.

    Attributes:
        program: the program under optimization (input, never None).
        options: network-construction options (input, never None).
        scheme: outcome scheme label (set by the solve pass; portfolio
            runs report their winner as ``"portfolio:<scheme>"``).
        network: the built :class:`~repro.opt.network_builder.LayoutNetwork`.
        kernel: the compiled execution form of ``network``.
        assignment: the solver's raw variable assignment (None on the
            portfolio path, which reports finished layouts directly).
        stats: solver effort counters.
        exact: True when the assignment satisfies every constraint.
        layouts: one layout per declared array (the product).
        transforms: per-nest loop restructurings matched to ``layouts``.
        cost: the scoring model's verdict on ``layouts`` (refine/joint).
        refinement: candidate-table evidence (refine/joint).
        dynamic: per-array dynamic-layout plans (the dynamic pass).
        pass_seconds: per-pass wall clock, in execution order.
        solve_seconds: total pipeline wall clock (set by the runner).
    """

    program: object
    options: object
    scheme: str = ""
    network: object | None = None
    kernel: object | None = None
    assignment: dict | None = None
    stats: object | None = None
    exact: bool = False
    layouts: dict | None = None
    transforms: dict | None = None
    cost: object | None = None
    refinement: object | None = None
    dynamic: dict | None = None
    pass_seconds: dict = field(default_factory=dict)
    solve_seconds: float = 0.0


@runtime_checkable
class Pass(Protocol):
    """One composable pipeline stage.

    Attributes:
        name: registry/metric/span label (``pass:<name>`` spans,
            ``repro_pass_seconds{pass=<name>}`` observations).
        requires: context fields that must be non-None before the pass
            runs (checked by the runner, so a mis-ordered pipeline
            fails with a clear error instead of an AttributeError).
        provides: context fields the pass fills -- introspection
            metadata for tooling and documentation.
    """

    name: str
    requires: tuple[str, ...]
    provides: tuple[str, ...]

    def run(self, ctx: PipelineContext) -> None:
        """Execute the pass, mutating the context in place."""
        ...  # pragma: no cover - protocol


class Pipeline:
    """An ordered pass sequence with per-pass timing and tracing.

    Args:
        passes: the pass objects, in execution order.

    Raises:
        PipelineError: for an empty pipeline or duplicate pass names
            (duplicates would make ``pass_seconds`` and the metric
            label ambiguous).
    """

    def __init__(self, passes: Sequence[Pass]):
        passes = tuple(passes)
        if not passes:
            raise PipelineError("a pipeline needs at least one pass")
        names = [p.name for p in passes]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise PipelineError(
                f"duplicate passes in pipeline: {sorted(duplicates)}"
            )
        self.passes = passes

    @property
    def names(self) -> tuple[str, ...]:
        """The pass names, in execution order."""
        return tuple(p.name for p in self.passes)

    def describe(self) -> list[dict]:
        """Introspection rows: name, requires, provides per pass."""
        return [
            {
                "name": p.name,
                "requires": list(p.requires),
                "provides": list(p.provides),
            }
            for p in self.passes
        ]

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Run every pass in order; returns the (mutated) context.

        Raises:
            PipelineError: when a pass's declared ``requires`` names a
                context field that is still None at its turn.
        """
        start = time.perf_counter()
        for p in self.passes:
            missing = [
                name for name in p.requires if getattr(ctx, name, None) is None
            ]
            if missing:
                raise PipelineError(
                    f"pass {p.name!r} requires {missing} but no earlier "
                    f"pass provided them (pipeline order: {list(self.names)})"
                )
            pass_start = time.perf_counter()
            with obs_trace.span(f"pass:{p.name}"):
                p.run(ctx)
            seconds = time.perf_counter() - pass_start
            ctx.pass_seconds[p.name] = (
                ctx.pass_seconds.get(p.name, 0.0) + seconds
            )
            record_pass_seconds(p.name, seconds)
        ctx.solve_seconds = time.perf_counter() - start
        return ctx


# -- the pass registry ---------------------------------------------------

#: name -> factory(optimizer) -> Pass.  The factory receives the
#: configured :class:`~repro.opt.optimizer.LayoutOptimizer` so a pass
#: can pick up its knobs (refine model, top-k, search mode, solver).
_PASS_FACTORIES: dict[str, Callable] = {}


def register_pass(name: str, factory: Callable) -> None:
    """Register a pass factory under a pipeline name.

    ``factory(optimizer)`` must return a :class:`Pass`.  Registering a
    name twice replaces the factory (tests and experiments swap
    implementations this way).
    """
    if not name or "," in name:
        raise ValueError(f"bad pass name {name!r}")
    _PASS_FACTORIES[name] = factory


def available_passes() -> tuple[str, ...]:
    """Every registered pass name, sorted."""
    return tuple(sorted(_PASS_FACTORIES))


def resolve_passes(spec, optimizer) -> tuple[Pass, ...]:
    """Turn a pass spec into pass instances.

    ``spec`` is a sequence mixing registered pass names and ready
    :class:`Pass` instances; the string ``"default"`` expands in place
    to the optimizer's default pass list.

    Raises:
        PipelineError: for unknown pass names.
    """
    resolved: list[Pass] = []
    for item in spec:
        if isinstance(item, str):
            if item == "default":
                resolved.extend(
                    _PASS_FACTORIES[name](optimizer)
                    for name in optimizer.default_pass_names()
                )
                continue
            factory = _PASS_FACTORIES.get(item)
            if factory is None:
                raise PipelineError(
                    f"unknown pass {item!r}; know {list(available_passes())}"
                )
            resolved.append(factory(optimizer))
        else:
            resolved.append(item)
    return tuple(resolved)

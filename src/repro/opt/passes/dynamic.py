"""Dynamic-layout pass: the per-array DP planner on the main path.

The paper's second future-work direction (layouts that change between
program segments) has an exact per-array planner in
:mod:`repro.opt.dynamic`, but until the pipeline refactor it could only
be driven by hand.  This opt-in pass runs the planner over the whole
program and surfaces the schedules in the outcome's ``dynamic`` field,
so callers see -- per array -- the chosen (nest, layout) schedule, the
redistribution cost it pays, and the improvement over the best static
layout the rest of the pipeline would commit to.
"""

from __future__ import annotations

from repro.obs import trace as obs_trace
from repro.opt.dynamic import DynamicLayoutPlanner
from repro.opt.passes.base import PipelineContext


class DynamicLayoutPass:
    """Plan per-array dynamic layout schedules (opt-in)."""

    name = "dynamic"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ("dynamic",)

    def __init__(self, planner: DynamicLayoutPlanner | None = None):
        self._planner = planner if planner is not None else DynamicLayoutPlanner()

    def run(self, ctx: PipelineContext) -> None:
        with obs_trace.span("dynamic_layout") as dyn_span:
            plans = self._planner.plan_all(ctx.program)
            dyn_span.set_attribute("arrays", len(plans))
            dyn_span.set_attribute(
                "changes", sum(plan.changes for plan in plans.values())
            )
        ctx.dynamic = plans

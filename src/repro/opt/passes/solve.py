"""Solving passes: scheme/portfolio dispatch and solution repair.

The scheme registry and the inflation-repair fixpoint live here; the
:mod:`repro.opt.optimizer` façade re-exports both so the service layer
and existing callers keep importing them from their historical home.
"""

from __future__ import annotations

from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.splitsearch import SplitSearchSolver
from repro.csp.weighted import BranchAndBoundSolver
from repro.ir.program import Program
from repro.layout.layout import Layout, row_major
from repro.layout.locality import (
    access_delta,
    has_spatial_locality,
    has_temporal_locality,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.opt.network_builder import build_layout_network
from repro.opt.passes.base import PipelineContext

#: Scheme name -> solver factory (seed -> solver).  "weighted" is the
#: branch & bound over the nest-cost weighted network: always returns
#: an assignment, exact exactly when the hard network is satisfiable.
_SCHEMES = {
    "base": lambda seed: BacktrackingSolver(seed=seed),
    "enhanced": lambda seed: EnhancedSolver(seed=seed),
    "cbj": lambda seed: ConflictDirectedSolver(seed=seed),
    "forward-checking": lambda seed: ForwardCheckingSolver(seed=seed),
    "min-conflicts": lambda seed: MinConflictsSolver(seed=seed),
    "split": lambda seed: SplitSearchSolver(seed=seed),
    "weighted": lambda seed: BranchAndBoundSolver(),
}


class SolvePass:
    """Solve the constraint network (or race the portfolio).

    Direct schemes solve the compiled kernel with the optimizer's
    configured solver, falling back to weighted branch & bound when the
    hard network is unsatisfiable.  Portfolio configurations delegate
    to the service layer's racing :class:`~repro.service.PortfolioSolver`
    (built once, cached on the optimizer so resident processes reuse
    it), which reports finished layouts directly -- the pass then skips
    the assignment fields and fills ``layouts``/``scheme`` itself.
    """

    name = "solve"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ("assignment", "stats", "exact", "scheme")

    def __init__(self, optimizer):
        self._optimizer = optimizer

    def run(self, ctx: PipelineContext) -> None:
        if self._optimizer.portfolio_config is not None:
            self._run_portfolio(ctx)
            return
        if ctx.kernel is None:
            raise ValueError(
                "solve pass needs a compiled kernel; run the build pass first"
            )
        solver = self._optimizer.solver
        scheme_name = self._optimizer.scheme_name
        with obs_trace.span("solve", scheme=scheme_name):
            if isinstance(solver, BranchAndBoundSolver):
                # First-class weighted scheme: solve the weighted network
                # directly -- exact iff the hard network is satisfiable.
                weighted_result = solver.solve_compiled(
                    ctx.kernel, ctx.network.weights
                )
                assignment = dict(weighted_result.assignment)
                stats = weighted_result.stats
                exact = weighted_result.fully_satisfied
            else:
                result = solver.solve(ctx.kernel)
                exact = result.assignment is not None
                if exact:
                    assignment = dict(result.assignment)
                    stats = result.stats
                else:
                    weighted_result = BranchAndBoundSolver().solve_compiled(
                        ctx.kernel, ctx.network.weights
                    )
                    assignment = dict(weighted_result.assignment)
                    stats = weighted_result.stats
                    exact = weighted_result.fully_satisfied
        obs_metrics.counter(
            "repro_optimizer_solves_total",
            labels={"scheme": scheme_name, "exact": str(exact).lower()},
            help="Direct (non-portfolio) optimizer solves by scheme.",
        )
        ctx.scheme = scheme_name
        ctx.assignment = assignment
        ctx.stats = stats
        ctx.exact = exact

    def _run_portfolio(self, ctx: PipelineContext) -> None:
        optimizer = self._optimizer
        result = optimizer.portfolio_solver().optimize(ctx.program)
        network = result.network
        if network is None:  # served from a cache: rebuild provenance
            network = build_layout_network(ctx.program, optimizer.options)
        ctx.network = network
        ctx.scheme = f"portfolio:{result.winner}"
        ctx.layouts = dict(result.layouts)
        ctx.stats = result.winner_stats()
        ctx.exact = result.exact


class RepairInflationPass:
    """Repair the solved assignment, then finalize per-array layouts.

    Exact assignments are greedily swapped toward lower bounding-box
    inflation (see :func:`repair_inflation`); then every declared array
    gets its layout from the assignment, defaulting to row-major for
    arrays the network never constrained.  The portfolio path arrives
    with finished layouts and no raw assignment (repair already ran
    inside the portfolio), so the pass is a no-op there.
    """

    name = "repair"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ("layouts",)

    def __init__(self, optimizer=None):
        self._optimizer = optimizer

    def run(self, ctx: PipelineContext) -> None:
        if ctx.assignment is None:
            return
        if ctx.exact:
            repair_inflation(ctx.network.network, ctx.assignment, ctx.program)
        layouts: dict[str, Layout] = {}
        for decl in ctx.program.arrays:
            chosen = ctx.assignment.get(decl.name)
            layouts[decl.name] = (
                chosen if chosen is not None else row_major(decl.rank)
            )
        ctx.layouts = layouts


def repair_inflation(network, assignment: dict, program: Program) -> None:
    """Swap each array to the best equivalent value among solutions.

    Constraint networks routinely admit several solutions (the paper
    observes base and enhanced finding different ones), and the solver
    has no reason to prefer the execution-friendly one.  This pass
    greedily replaces each array's layout with a domain value that is
    better on the lexicographic objective

    1. lower bounding-box inflation (footnote 2's data-space growth),
    2. more references with locality under the original loop order,

    whenever the swap keeps the assignment a solution -- it never
    leaves the solution set, so exactness is preserved.
    """
    from repro.layout.mapping import LayoutMapping

    objective_cache: dict[tuple[str, Layout], tuple[float, int]] = {}

    def objective(array: str, layout: Layout) -> tuple[float, int]:
        cached = objective_cache.get((array, layout))
        if cached is not None:
            return cached
        inflation = LayoutMapping.create(program.array(array), layout).inflation
        locality = 0
        for nest in program.nests_referencing(array):
            direction = tuple([0] * (nest.depth - 1) + [1])
            order = nest.index_order
            for reference in nest.references_to(array):
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta) or has_spatial_locality(
                    layout, delta
                ):
                    locality += nest.weight
        score = (inflation, -locality)
        objective_cache[(array, layout)] = score
        return score

    # Iterate to a fixpoint: improving one array can unlock a better
    # swap for a neighbor (bounded: each pass strictly improves the
    # global objective or stops).
    for _ in range(len(network.variables)):
        changed = False
        for array in network.variables:
            current = assignment[array]
            best = current
            best_key = objective(array, current)
            for candidate in network.domain(array):
                if candidate == current:
                    continue
                key = objective(array, candidate)
                if key >= best_key:
                    continue
                consistent = all(
                    network.check_pair(
                        array, candidate, neighbor, assignment[neighbor]
                    )
                    for neighbor in network.neighbors(array)
                )
                if consistent:
                    best = candidate
                    best_key = key
            if best != current:
                assignment[array] = best
                changed = True
        if not changed:
            break

"""First-class optimizer passes.

The paper's pipeline as composable objects: build the constraint
network, solve it (scheme or racing portfolio), repair the solution,
pick loop restructurings -- plus the stages the monolithic façade
could never host: joint layout x transform search and dynamic layout
planning.  :mod:`repro.opt.passes.base` holds the substrate
(:class:`Pass` protocol, :class:`PipelineContext`, :class:`Pipeline`
runner, registry); each pass module registers its factory here so
``LayoutOptimizer(passes=[...])`` and the CLI ``--passes`` flag
resolve names to configured instances.
"""

from repro.opt.passes.base import (
    PASS_SECONDS_METRIC,
    Pass,
    Pipeline,
    PipelineContext,
    PipelineError,
    available_passes,
    record_pass_seconds,
    register_pass,
    resolve_passes,
)
from repro.opt.passes.build import BuildNetworkPass
from repro.opt.passes.dynamic import DynamicLayoutPass
from repro.opt.passes.joint import JointSearchPass
from repro.opt.passes.refine import (
    CandidateScore,
    RefinementPass,
    RefinementReport,
)
from repro.opt.passes.solve import RepairInflationPass, SolvePass
from repro.opt.passes.transforms import TransformSelectionPass

register_pass("build", lambda optimizer: BuildNetworkPass(optimizer))
register_pass("solve", lambda optimizer: SolvePass(optimizer))
register_pass("repair", lambda optimizer: RepairInflationPass(optimizer))
register_pass("transform", lambda optimizer: TransformSelectionPass(optimizer))
register_pass(
    "refine",
    lambda optimizer: RefinementPass(
        optimizer.refine, optimizer.refine_top_k, optimizer.search
    ),
)
register_pass(
    "joint",
    lambda optimizer: JointSearchPass(
        model=optimizer.refine,
        top_k=optimizer.refine_top_k,
        search=optimizer.search,
    ),
)
register_pass("dynamic", lambda optimizer: DynamicLayoutPass())

__all__ = [
    "PASS_SECONDS_METRIC",
    "Pass",
    "Pipeline",
    "PipelineContext",
    "PipelineError",
    "available_passes",
    "record_pass_seconds",
    "register_pass",
    "resolve_passes",
    "BuildNetworkPass",
    "SolvePass",
    "RepairInflationPass",
    "TransformSelectionPass",
    "RefinementPass",
    "JointSearchPass",
    "DynamicLayoutPass",
    "CandidateScore",
    "RefinementReport",
]

"""Network-construction pass: program -> constraint network + kernel."""

from __future__ import annotations

from repro.obs import trace as obs_trace
from repro.opt.network_builder import build_layout_network
from repro.opt.passes.base import PipelineContext


class BuildNetworkPass:
    """Build the layout constraint network and compile its kernel.

    On the portfolio path this is a no-op: :class:`SolvePass` delegates
    to the service layer's :class:`~repro.service.PortfolioSolver`,
    which builds (and memoizes) its own networks so racing workers and
    the result cache share one construction.
    """

    name = "build"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ("network", "kernel")

    def __init__(self, optimizer=None):
        self._optimizer = optimizer

    def run(self, ctx: PipelineContext) -> None:
        if (
            self._optimizer is not None
            and self._optimizer.portfolio_config is not None
        ):
            return
        if ctx.network is not None:  # a custom pipeline already built it
            return
        with obs_trace.span("build_network"):
            ctx.network = build_layout_network(ctx.program, ctx.options)
            ctx.kernel = ctx.network.kernel()

"""Refinement pass: re-rank the solver's answer against alternatives."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.csp.splitsearch import SEARCH_AUTO, SEARCH_SPLIT, resolve_search
from repro.layout.layout import Layout, row_major
from repro.obs import trace as obs_trace
from repro.opt.passes.base import PipelineContext
from repro.opt.passes.transforms import select_transforms


@dataclass(frozen=True)
class CandidateScore:
    """One refinement candidate and how the cost models priced it.

    Attributes:
        label: provenance ("search" for the solver's own answer,
            "solution-N" for enumerated alternatives).
        layouts: the candidate's full layout assignment.
        analytic_value: the analytic model's estimate (the rank the
            optimizer would have used without refinement).
        refined_value: the refining model's score (lower is better).
        chosen: True for the candidate the refined outcome adopted.
    """

    label: str
    layouts: dict[str, Layout]
    analytic_value: float
    refined_value: float
    chosen: bool = False


@dataclass(frozen=True)
class RefinementReport:
    """What simulation-guided refinement saw and decided.

    Attributes:
        model: registered name of the refining cost model.
        candidates: every scored candidate, in scoring order.
        agreement: Kendall tau between the analytic and refined
            rankings of the candidates (1.0 = the simulator confirmed
            the analytic order; low values are where the feedback loop
            earned its cycles).
        evaluate_seconds: wall-clock spent scoring candidates.
    """

    model: str
    candidates: tuple[CandidateScore, ...]
    agreement: float
    evaluate_seconds: float

    @property
    def chosen(self) -> CandidateScore:
        """The adopted candidate."""
        for candidate in self.candidates:
            if candidate.chosen:
                return candidate
        raise ValueError("refinement report has no chosen candidate")


class RefinementPass:
    """Re-rank the solver's answer against enumerated alternatives.

    The candidate pool is the context's layouts plus up to ``top_k``
    distinct solutions of the compiled network; each is paired with its
    best legal restructurings and scored by the refining model (and,
    for the agreement statistic, by the analytic model).  Ties keep the
    earlier candidate, so the solver's answer survives unless the model
    strictly prefers an alternative.

    When the search mode resolves to ``"split"``, the alternatives
    stream lazily from the parallel frontier enumerator -- same
    solutions in the same (lexicographic) order, produced by racing
    worker processes -- so a small ``top_k`` stops the enumeration
    early instead of paying for the whole solution set.
    """

    name = "refine"
    requires: tuple[str, ...] = ("layouts", "network")
    provides: tuple[str, ...] = ("layouts", "transforms", "cost", "refinement")

    def __init__(self, model, top_k: int = 8, search: str = SEARCH_AUTO):
        if model is None:
            raise ValueError(
                "the refine pass needs a cost model; configure the "
                "optimizer with refine=... or construct "
                "RefinementPass(model) directly"
            )
        if top_k <= 0:
            raise ValueError("refine_top_k must be positive")
        self._model = model
        self._top_k = top_k
        self._search = search

    def run(self, ctx: PipelineContext) -> None:
        from repro.csp.compiled import enumerate_solutions
        from repro.csp.splitsearch import enumerate_solutions_parallel
        from repro.eval import AnalyticCostModel, kendall_tau

        start = time.perf_counter()
        model = self._model
        analytic = model if model.name == "analytic" else AnalyticCostModel()

        split = resolve_search(self._search) == SEARCH_SPLIT
        with obs_trace.span("refine", model=model.name) as refine_span:
            if split:
                solutions = enumerate_solutions_parallel(
                    ctx.network.kernel(), self._top_k
                )
            else:
                solutions = enumerate_solutions(
                    ctx.network.kernel(), self._top_k
                )
            pool: list[tuple[str, dict[str, Layout]]] = [
                ("search", dict(ctx.layouts))
            ]
            seen = {_layout_key(ctx.layouts)}
            for index, assignment in enumerate(solutions):
                layouts = {
                    decl.name: assignment.get(decl.name, row_major(decl.rank))
                    for decl in ctx.program.arrays
                }
                key = _layout_key(layouts)
                if key in seen:
                    continue
                seen.add(key)
                pool.append((f"solution-{index + 1}", layouts))
            refine_span.set_attribute("candidates", len(pool))

            scored = []
            for label, layouts in pool:
                transforms = select_transforms(
                    ctx.program,
                    layouts,
                    ctx.options.include_reversals,
                    ctx.options.skew_factors,
                )
                cost = model.score(ctx.program, layouts, transforms)
                if analytic is model:
                    analytic_value = cost.value
                else:
                    analytic_value = analytic.score(
                        ctx.program, layouts, transforms
                    ).value
                scored.append((label, layouts, analytic_value, cost, transforms))

        best = min(range(len(scored)), key=lambda i: scored[i][3].value)
        agreement = kendall_tau(
            [entry[2] for entry in scored],
            [entry[3].value for entry in scored],
        )
        report = RefinementReport(
            model=model.name,
            candidates=tuple(
                CandidateScore(
                    label=label,
                    layouts=layouts,
                    analytic_value=analytic_value,
                    refined_value=cost.value,
                    chosen=(index == best),
                )
                for index, (label, layouts, analytic_value, cost, _) in enumerate(
                    scored
                )
            ),
            agreement=agreement,
            evaluate_seconds=time.perf_counter() - start,
        )
        ctx.layouts = dict(scored[best][1])
        ctx.transforms = scored[best][4]
        ctx.cost = scored[best][3]
        ctx.refinement = report


def _layout_key(layouts: Mapping[str, Layout]) -> tuple:
    """Hashable identity of a full layout assignment (for dedup)."""
    return tuple(sorted((name, layout) for name, layout in layouts.items()))

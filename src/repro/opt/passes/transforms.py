"""Transform-selection pass: per-nest restructurings for final layouts.

:func:`select_transforms` (re-exported by :mod:`repro.opt.optimizer`
for its historical callers) is the sequential half of the paper's
combined data/loop story: layouts are already frozen, and each nest
independently picks the legal restructuring best matched to them.  The
:class:`~repro.opt.passes.joint.JointSearchPass` is the non-sequential
alternative that searches both together.
"""

from __future__ import annotations

from typing import Mapping

from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.layout.locality import (
    access_delta,
    has_spatial_locality,
    has_temporal_locality,
)
from repro.obs import trace as obs_trace
from repro.opt.passes.base import PipelineContext
from repro.transform.catalog import legal_transforms
from repro.transform.unimodular_loop import LoopTransform


class TransformSelectionPass:
    """Fill per-nest transforms matched to the context's layouts.

    Respects an earlier pass's choice: when ``ctx.transforms`` is
    already set (the joint-search pass chose layouts and transforms
    together, or refinement stored its winning candidate's), the pass
    keeps it instead of re-deriving sequentially.
    """

    name = "transform"
    requires: tuple[str, ...] = ("layouts",)
    provides: tuple[str, ...] = ("transforms",)

    def __init__(self, optimizer=None):
        self._optimizer = optimizer

    def run(self, ctx: PipelineContext) -> None:
        if ctx.transforms is not None:
            return
        ctx.transforms = select_transforms(
            ctx.program,
            ctx.layouts,
            ctx.options.include_reversals,
            ctx.options.skew_factors,
        )


def select_transforms(
    program: Program,
    layouts: Mapping[str, Layout],
    include_reversals: bool = False,
    skew_factors: tuple[int, ...] = (),
) -> dict[str, LoopTransform]:
    """Per nest, the legal restructuring best matched to final layouts.

    The score of a transform weighs references by the memory cost their
    locality class avoids: a reference with *no* locality pays roughly
    a full cache-miss per iteration, so it is worth far more to fix one
    such reference than to upgrade spatial locality (one miss per line,
    ~1/8 of the accesses) to temporal (same element every iteration).
    Ties prefer the identity (no restructuring without benefit).
    """
    with obs_trace.span("transform_selection"):
        return _select_transforms(program, layouts, include_reversals, skew_factors)


def _select_transforms(
    program: Program,
    layouts: Mapping[str, Layout],
    include_reversals: bool,
    skew_factors: tuple[int, ...],
) -> dict[str, LoopTransform]:
    chosen: dict[str, LoopTransform] = {}
    for nest in program.nests:
        order = nest.index_order
        best: LoopTransform | None = None
        best_score = -1
        for transform in legal_transforms(
            nest, include_reversals, skew_factors
        ):
            direction = transform.innermost_direction()
            score = 0
            for reference in nest.body:
                layout = layouts.get(reference.array)
                if layout is None:
                    continue
                delta = access_delta(reference, order, direction)
                if has_temporal_locality(delta):
                    score += 7
                elif has_spatial_locality(layout, delta):
                    score += 6
            better = score > best_score or (
                score == best_score
                and best is not None
                and transform.is_identity
                and not best.is_identity
            )
            if better:
                best = transform
                best_score = score
        assert best is not None  # identity is always legal
        chosen[nest.name] = best
    return chosen

"""Plain-text table formatting and outcome reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-aligned text table (numbers right-aligned).

    >>> print(format_table(["a", "b"], [[1, "x"]]))
    a  b
    -  -
    1  x
    """
    cells = [[str(h) for h in headers]] + [
        [_render(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[column]) for row in cells)
        for column in range(len(headers))
    ]
    numeric = [
        all(
            _is_number(row[column])
            for row in cells[1:]
        )
        if len(cells) > 1
        else False
        for column in range(len(headers))
    ]

    def render_row(row: Sequence[str]) -> str:
        parts = []
        for column, text in enumerate(row):
            if numeric[column]:
                parts.append(text.rjust(widths[column]))
            else:
                parts.append(text.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(cells[0]))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in cells[1:])
    return "\n".join(lines)


def optimization_report(outcome) -> str:
    """Human-readable report of one :class:`OptimizationOutcome`.

    Always shows the scheme, exactness and per-array layouts; when the
    outcome was cost-refined it also names the cost model and its
    verdict, and -- when that model simulated execution -- the
    per-level cache hit rates.  Outcomes produced by the pass pipeline
    close with a per-pass timing table (``pass_seconds``).  Wall-clock
    values never come from anywhere but the outcome itself, so the
    report stays deterministic for a fixed outcome (golden-testable).
    """
    lines = [
        f"program: {outcome.program}",
        f"scheme: {outcome.scheme} ({'exact' if outcome.exact else 'best-effort'})",
    ]
    lines.append(
        format_table(
            ["array", "layout"],
            [
                [name, layout.describe()]
                for name, layout in sorted(outcome.layouts.items())
            ],
            title="layouts:",
        )
    )
    stats = outcome.stats
    lines.append(
        f"solver effort: {stats.nodes} nodes, "
        f"{stats.consistency_checks} consistency checks, "
        f"{stats.backtracks} backtracks"
    )
    cost = outcome.cost
    if cost is not None:
        lines.append(f"cost model: {cost.model} -> {cost.value:,.0f} {cost.unit}")
        report = cost.details.get("cache_report") if cost.details else None
        if report:
            per_level = "  ".join(
                f"{level} {100.0 * stats_row.get('hit_rate', 0.0):.1f}%"
                for level, stats_row in report.items()
            )
            lines.append(f"simulated hit rates: {per_level}")
    refinement = outcome.refinement
    if refinement is not None:
        lines.append(
            format_table(
                ["candidate", "analytic", refinement.model, "chosen"],
                [
                    [
                        candidate.label,
                        f"{candidate.analytic_value:,.0f}",
                        f"{candidate.refined_value:,.0f}",
                        "*" if candidate.chosen else "",
                    ]
                    for candidate in refinement.candidates
                ],
                title=f"refinement ({refinement.model}, "
                f"agreement tau={refinement.agreement:+.2f}):",
            )
        )
    pass_seconds = getattr(outcome, "pass_seconds", None)
    if pass_seconds:
        total = sum(pass_seconds.values())
        lines.append(
            format_table(
                ["pass", "seconds", "share"],
                [
                    [
                        name,
                        f"{seconds:.4f}",
                        f"{100.0 * seconds / total:.1f}%" if total else "-",
                    ]
                    for name, seconds in pass_seconds.items()
                ],
                title="pass timings:",
            )
        )
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text.rstrip("%x"))
        return True
    except ValueError:
        return False

"""Plain-text table formatting for benchmarks and examples."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-aligned text table (numbers right-aligned).

    >>> print(format_table(["a", "b"], [[1, "x"]]))
    a  b
    -  -
    1  x
    """
    cells = [[str(h) for h in headers]] + [
        [_render(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[column]) for row in cells)
        for column in range(len(headers))
    ]
    numeric = [
        all(
            _is_number(row[column])
            for row in cells[1:]
        )
        if len(cells) > 1
        else False
        for column in range(len(headers))
    ]

    def render_row(row: Sequence[str]) -> str:
        parts = []
        for column, text in enumerate(row):
            if numeric[column]:
                parts.append(text.rjust(widths[column]))
            else:
                parts.append(text.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(cells[0]))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in cells[1:])
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text.rstrip("%x"))
        return True
    except ValueError:
        return False

"""Base-address assignment for arrays under chosen layouts."""

from __future__ import annotations

from typing import Mapping

from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.layout.mapping import LayoutMapping


class AddressMap:
    """Assigns each array a base address and offset map under its layout.

    Arrays are placed consecutively in declaration order, each aligned
    up to ``alignment`` bytes (default: a typical page), starting at
    ``base``.  The footprint of an array is the bounding box of its
    *transformed* index space, so diagonal-style layouts occupy more
    memory -- exactly the data-space inflation the paper's footnote 2
    discusses.

    Each array additionally gets ``stagger`` bytes of padding times its
    declaration index.  Without it, same-stride streams through
    page-aligned arrays of page-multiple size land in identical cache
    sets every iteration and thrash a 2-way L1 -- the classic
    inter-array conflict pathology that compilers avoid with exactly
    this kind of inter-array padding.
    """

    def __init__(
        self,
        program: Program,
        layouts: Mapping[str, Layout],
        base: int = 0x1000_0000,
        alignment: int = 4096,
        stagger: int = 256,
    ):
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        if stagger < 0:
            raise ValueError("stagger cannot be negative")
        self._program = program
        self._mappings: dict[str, LayoutMapping] = {}
        self._bases: dict[str, int] = {}
        cursor = base
        for index, decl in enumerate(program.arrays):
            layout = layouts.get(decl.name)
            if layout is None:
                raise KeyError(f"no layout chosen for array {decl.name}")
            mapping = LayoutMapping.create(decl, layout)
            self._mappings[decl.name] = mapping
            self._bases[decl.name] = cursor + index * stagger
            footprint = mapping.footprint_bytes + index * stagger
            cursor += (footprint + alignment - 1) // alignment * alignment

    def base_of(self, array: str) -> int:
        """Base byte address of an array."""
        return self._bases[array]

    def mapping_of(self, array: str) -> LayoutMapping:
        """The layout mapping of an array."""
        return self._mappings[array]

    def address_of(self, array: str, index: tuple[int, ...]) -> int:
        """Byte address of one array element."""
        mapping = self._mappings[array]
        return self._bases[array] + mapping.byte_offset_of(index)

    def total_footprint_bytes(self) -> int:
        """Total placed bytes, including layout-induced inflation."""
        return sum(
            mapping.footprint_bytes for mapping in self._mappings.values()
        )

"""Program execution simulation: layouts -> addresses -> cycles.

Bridges the IR and the cache simulator: assigns base addresses to the
arrays under their chosen layouts, walks every nest's iteration space
(optionally in a restructured order), converts each reference to a byte
address via the layout's linear map, and feeds the resulting stream
through the modelled hierarchy and CPU.
"""

from repro.simul.addressmap import AddressMap
from repro.simul.tracegen import (
    compile_nest_accesses,
    CompiledAccess,
    IncrementalAddress,
    NestAccessPlan,
)
from repro.simul.executor import (
    ENGINES,
    resolve_engine,
    simulate_program,
    SimulationResult,
)

__all__ = [
    "AddressMap",
    "compile_nest_accesses",
    "CompiledAccess",
    "IncrementalAddress",
    "NestAccessPlan",
    "ENGINES",
    "resolve_engine",
    "simulate_program",
    "SimulationResult",
]

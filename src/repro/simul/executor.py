"""End-to-end program simulation.

Walks every nest's iteration space (in original or restructured order),
evaluates each compiled reference's linear address function, and feeds
instruction fetches and data accesses to the CPU/hierarchy models.
A nest's ``weight`` multiplies its contribution (it models an enclosing
repetition the IR does not represent explicitly) by simulating the nest
once and scaling cycles -- cache state is warm across repetitions, so
one pass is the steady-state approximation.

Two execution engines produce byte-identical totals:

* ``"periter"`` -- the reference engine: one Python-level CPU call per
  instruction fetch, op bundle and memory access.  Addresses advance
  through :class:`repro.simul.tracegen.IncrementalAddress` delta
  tables (O(1) per innermost step) on untransformed walks.
* ``"batch"`` -- the compiled engine: addresses are emitted
  array-at-a-time by :mod:`repro.simul.batchwalk` and the hierarchy
  consumes them through its run-collapsed batch interface.  After the
  first iteration of a nest its instruction lines are resident and
  untouchable by data fills (the L1 instruction cache only ever sees
  this nest's fetches), so instruction-fetch work is bulk-counted and
  the data stream is replayed exactly.

``engine="auto"`` (the default) picks ``batch`` when numpy is
importable and falls back to ``periter`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Mapping

from repro.cachesim.cpu import CPUConfig, DualIssueCPU
from repro.cachesim.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.simul.addressmap import AddressMap
from repro.simul import batchwalk
from repro.simul.tracegen import compile_nest_accesses
from repro.transform.scanning import scan_transformed_box
from repro.transform.unimodular_loop import LoopTransform

#: Synthetic code region: nests get 512 bytes of "machine code" each.
_CODE_BASE = 0x0040_0000
_CODE_STRIDE = 512

#: Known engine names, in fallback preference order.
ENGINES = ("batch", "periter")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one program under one layout assignment.

    Attributes:
        cycles: total weighted CPU cycles.
        instructions: total weighted instruction count.
        memory_accesses: total weighted data accesses.
        cache_report: per-level hit/miss statistics.
        footprint_bytes: placed data footprint including inflation.
        engine: the engine that produced the result.
        sampled: True when iteration-space sampling truncated at least
            one nest (totals are then scaled estimates, not exact).
    """

    cycles: int
    instructions: int
    memory_accesses: int
    cache_report: dict[str, dict[str, float]]
    footprint_bytes: int
    engine: str = "periter"
    sampled: bool = False

    @property
    def l1_miss_rate(self) -> float:
        """L1 data-cache miss rate."""
        report = self.cache_report["L1D"]
        if report["accesses"] == 0:
            return 0.0
        return report["misses"] / report["accesses"]


def resolve_engine(engine: str) -> str:
    """Map an engine request to a concrete engine name.

    Raises:
        ValueError: for an unknown engine name.
    """
    if engine == "auto":
        return "batch" if batchwalk.HAVE_NUMPY else "periter"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")
    if engine == "batch" and not batchwalk.HAVE_NUMPY:
        raise ValueError("engine 'batch' requires numpy (pick 'auto' to fall back)")
    return engine


def simulate_program(
    program: Program,
    layouts: Mapping[str, Layout],
    transforms: Mapping[str, LoopTransform] | None = None,
    hierarchy_config: HierarchyConfig | None = None,
    cpu_config: CPUConfig | None = None,
    validate: bool = True,
    engine: str = "auto",
    hierarchy: MemoryHierarchy | None = None,
    max_iterations_per_nest: int | None = None,
) -> SimulationResult:
    """Simulate the program under the given layouts (and restructurings).

    Args:
        program: the program to execute.
        layouts: one layout per declared array.
        transforms: optional per-nest loop restructurings (nests absent
            from the mapping run in original order).
        hierarchy_config: cache geometry (defaults to the paper's).
        cpu_config: CPU issue model (defaults to the paper's 2-issue).
        validate: check subscript bounds before simulating -- an
            out-of-bounds program would silently read other arrays'
            address ranges and corrupt the measurement.
        engine: ``"batch"``, ``"periter"`` or ``"auto"`` (see module
            docstring); both engines produce byte-identical totals.
        hierarchy: an existing hierarchy to (reset and) reuse, so a
            caller evaluating many candidates pays construction once.
            Overrides ``hierarchy_config``.
        max_iterations_per_nest: iteration-space sampling cap: a nest
            whose trip count exceeds it simulates only the first cap
            points of its walk and scales its contribution by the
            truncation ratio.  ``None`` (default) simulates exactly.

    Raises:
        ValidationError: when ``validate`` is on and a subscript can
            leave its array.
        ValueError: for an unknown engine, a non-positive sampling cap,
            or ``engine="batch"`` without numpy.

    Returns:
        Aggregate cycle counts and cache statistics.
    """
    if max_iterations_per_nest is not None and max_iterations_per_nest <= 0:
        raise ValueError("max_iterations_per_nest must be positive")
    engine = resolve_engine(engine)
    if validate:
        from repro.ir.validate import validate_program

        validate_program(program)
    cpu_config = cpu_config if cpu_config is not None else CPUConfig()
    if hierarchy is not None:
        hierarchy.reset()
    else:
        hierarchy = MemoryHierarchy(hierarchy_config)
    cpu = DualIssueCPU(hierarchy, cpu_config)
    address_map = AddressMap(program, layouts)
    transforms = transforms or {}

    total_cycles = 0
    total_instructions = 0
    total_accesses = 0
    sampled = False
    for position, nest in enumerate(program.nests):
        plan = compile_nest_accesses(
            nest,
            address_map,
            code_base=_CODE_BASE + position * _CODE_STRIDE,
            ops_per_reference=cpu_config.ops_per_reference,
            loop_overhead_ops=cpu_config.loop_overhead_ops,
        )
        walked = nest.trip_count
        if max_iterations_per_nest is not None:
            walked = min(walked, max_iterations_per_nest)
        start_cycles = cpu.cycles
        start_instructions = cpu.instructions
        start_accesses = cpu.memory_accesses
        transform = transforms.get(nest.name)
        if engine == "batch":
            _run_nest_batch(cpu, plan, transform, walked)
        else:
            _run_nest_periter(cpu, plan, transform, walked)
        scale = nest.weight
        if walked < nest.trip_count:
            sampled = True
            scale = nest.weight * nest.trip_count / walked
        total_cycles += round(scale * (cpu.cycles - start_cycles))
        total_instructions += round(
            scale * (cpu.instructions - start_instructions)
        )
        total_accesses += round(scale * (cpu.memory_accesses - start_accesses))

    return SimulationResult(
        cycles=total_cycles,
        instructions=total_instructions,
        memory_accesses=total_accesses,
        cache_report=hierarchy.report(),
        footprint_bytes=address_map.total_footprint_bytes(),
        engine=engine,
        sampled=sampled,
    )


def _run_nest_periter(
    cpu: DualIssueCPU, plan, transform: LoopTransform | None, walked: int
) -> None:
    """Reference engine: one CPU call per fetch/ops/access."""
    nest = plan.nest
    accesses = plan.accesses
    ops = plan.ops_per_iteration
    code_base = plan.code_base
    instruction_count = ops + len(accesses)
    if transform is not None and not transform.is_identity:
        for count, point in enumerate(scan_transformed_box(transform, nest.iteration_box())):
            if count >= walked:
                break
            cpu.fetch_instructions(code_base, instruction_count)
            cpu.execute_ops(ops)
            for access in accesses:
                address = access.const + sum(
                    c * v for c, v in zip(access.coeffs, point)
                )
                cpu.execute_memory(address, access.size, access.is_write)
        return

    # Untransformed walk: an odometer over the box with O(1) address
    # stepping via each access's precomputed delta table.
    box = nest.iteration_box()
    walkers = [access.incremental(box) for access in accesses]
    sizes = [access.size for access in accesses]
    writes = [access.is_write for access in accesses]
    counters = [low for (low, _) in box]
    depth = len(box)
    remaining = walked
    while True:
        cpu.fetch_instructions(code_base, instruction_count)
        cpu.execute_ops(ops)
        for walker, size, is_write in zip(walkers, sizes, writes):
            cpu.execute_memory(walker.address, size, is_write)
        remaining -= 1
        if remaining <= 0:
            return
        axis = depth - 1
        while counters[axis] == box[axis][1]:
            counters[axis] = box[axis][0]
            axis -= 1
        counters[axis] += 1
        for walker in walkers:
            walker.step(axis)


def _run_nest_batch(
    cpu: DualIssueCPU, plan, transform: LoopTransform | None, walked: int
) -> None:
    """Compiled engine: block address generation + run-collapsed caches.

    The first iteration replays through the per-access CPU interface
    (its instruction fetches miss and interleave with data accesses in
    the unified L2); afterwards every fetch of this nest is a
    guaranteed L1I hit, so instruction-side work is bulk-counted and
    only the data stream is simulated -- through the hierarchy's exact
    batch interface.
    """
    import numpy as np

    nest = plan.nest
    accesses = plan.accesses
    ops = plan.ops_per_iteration
    code_base = plan.code_base
    n_refs = len(accesses)
    instruction_count = ops + n_refs
    hierarchy = cpu.hierarchy
    config = hierarchy.config
    l1_line = hierarchy.l1_data.line_size

    sizes = np.array([access.size for access in accesses], dtype=np.int64)
    writes_row = np.array(
        [access.is_write for access in accesses], dtype=bool
    )
    ops_cycles = ceil(ops / cpu.config.issue_width)
    fetch_first = code_base // hierarchy.l1_instruction.line_size
    fetch_last = (
        code_base + 4 * instruction_count - 1
    ) // hierarchy.l1_instruction.line_size
    fetch_lines = fetch_last - fetch_first + 1

    first_iteration = True
    for count, addresses in batchwalk.iter_address_blocks(
        plan, transform, max_iterations=walked
    ):
        start = 0
        if first_iteration:
            first_iteration = False
            cpu.fetch_instructions(code_base, instruction_count)
            cpu.execute_ops(ops)
            row = addresses[0]
            for r, access in enumerate(accesses):
                cpu.execute_memory(int(row[r]), access.size, access.is_write)
            start = 1
            if count == 1:
                continue
        block = addresses[start:]
        iterations = count - start

        # Instruction side, bulk: every fetch hits L1I (filled by the
        # first iteration, and data fills cannot evict L1I lines).
        l1i_stats = hierarchy.l1_instruction.stats
        l1i_stats.accesses += fetch_lines * iterations
        l1i_stats.hits += fetch_lines * iterations
        cpu.instructions += ops * iterations
        cpu.cycles += ops_cycles * iterations

        # Data side: one line per access unless something straddles.
        if bool(((block & (l1_line - 1)) + sizes > l1_line).any()):
            for row in block.tolist():
                for r, access in enumerate(accesses):
                    cpu.execute_memory(row[r], access.size, access.is_write)
            continue
        lines = (block // l1_line).reshape(-1)
        line_writes = np.broadcast_to(
            writes_row, (iterations, n_refs)
        ).reshape(-1)
        total, l1_misses, l2_misses = hierarchy.access_data_lines(
            lines, line_writes
        )
        cpu.instructions += total
        cpu.memory_accesses += total
        cpu.cycles += (
            total * config.l1_latency
            + l1_misses * config.l2_latency
            + l2_misses * config.memory_latency
        )

"""End-to-end program simulation.

Walks every nest's iteration space (in original or restructured order),
evaluates each compiled reference's linear address function, and feeds
instruction fetches and data accesses to the CPU/hierarchy models.
A nest's ``weight`` multiplies its contribution (it models an enclosing
repetition the IR does not represent explicitly) by simulating the nest
once and scaling cycles -- cache state is warm across repetitions, so
one pass is the steady-state approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as cartesian_product
from typing import Mapping

from repro.cachesim.cpu import CPUConfig, DualIssueCPU
from repro.cachesim.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.ir.program import Program
from repro.layout.layout import Layout
from repro.simul.addressmap import AddressMap
from repro.simul.tracegen import compile_nest_accesses
from repro.transform.scanning import scan_transformed_box
from repro.transform.unimodular_loop import LoopTransform

#: Synthetic code region: nests get 512 bytes of "machine code" each.
_CODE_BASE = 0x0040_0000
_CODE_STRIDE = 512


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one program under one layout assignment.

    Attributes:
        cycles: total weighted CPU cycles.
        instructions: total weighted instruction count.
        memory_accesses: total weighted data accesses.
        cache_report: per-level hit/miss statistics.
        footprint_bytes: placed data footprint including inflation.
    """

    cycles: int
    instructions: int
    memory_accesses: int
    cache_report: dict[str, dict[str, float]]
    footprint_bytes: int

    @property
    def l1_miss_rate(self) -> float:
        """L1 data-cache miss rate."""
        report = self.cache_report["L1D"]
        if report["accesses"] == 0:
            return 0.0
        return report["misses"] / report["accesses"]


def simulate_program(
    program: Program,
    layouts: Mapping[str, Layout],
    transforms: Mapping[str, LoopTransform] | None = None,
    hierarchy_config: HierarchyConfig | None = None,
    cpu_config: CPUConfig | None = None,
    validate: bool = True,
) -> SimulationResult:
    """Simulate the program under the given layouts (and restructurings).

    Args:
        program: the program to execute.
        layouts: one layout per declared array.
        transforms: optional per-nest loop restructurings (nests absent
            from the mapping run in original order).
        hierarchy_config: cache geometry (defaults to the paper's).
        cpu_config: CPU issue model (defaults to the paper's 2-issue).
        validate: check subscript bounds before simulating -- an
            out-of-bounds program would silently read other arrays'
            address ranges and corrupt the measurement.

    Raises:
        ValidationError: when ``validate`` is on and a subscript can
            leave its array.

    Returns:
        Aggregate cycle counts and cache statistics.
    """
    if validate:
        from repro.ir.validate import validate_program

        validate_program(program)
    cpu_config = cpu_config if cpu_config is not None else CPUConfig()
    hierarchy = MemoryHierarchy(hierarchy_config)
    cpu = DualIssueCPU(hierarchy, cpu_config)
    address_map = AddressMap(program, layouts)
    transforms = transforms or {}

    total_cycles = 0
    total_instructions = 0
    total_accesses = 0
    for position, nest in enumerate(program.nests):
        plan = compile_nest_accesses(
            nest,
            address_map,
            code_base=_CODE_BASE + position * _CODE_STRIDE,
            ops_per_reference=cpu_config.ops_per_reference,
            loop_overhead_ops=cpu_config.loop_overhead_ops,
        )
        start_cycles = cpu.cycles
        start_instructions = cpu.instructions
        start_accesses = cpu.memory_accesses
        transform = transforms.get(nest.name)
        _run_nest(cpu, plan, transform)
        nest_cycles = cpu.cycles - start_cycles
        nest_instructions = cpu.instructions - start_instructions
        nest_accesses = cpu.memory_accesses - start_accesses
        total_cycles += nest.weight * nest_cycles
        total_instructions += nest.weight * nest_instructions
        total_accesses += nest.weight * nest_accesses

    return SimulationResult(
        cycles=total_cycles,
        instructions=total_instructions,
        memory_accesses=total_accesses,
        cache_report=hierarchy.report(),
        footprint_bytes=address_map.total_footprint_bytes(),
    )


def _run_nest(cpu: DualIssueCPU, plan, transform: LoopTransform | None) -> None:
    """Execute one nest's iterations through the CPU model."""
    nest = plan.nest
    box = nest.iteration_box()
    if transform is not None and not transform.is_identity:
        iterations = scan_transformed_box(transform, box)
    else:
        iterations = cartesian_product(
            *[range(low, high + 1) for (low, high) in box]
        )
    accesses = plan.accesses
    ops = plan.ops_per_iteration
    code_base = plan.code_base
    instruction_count = ops + len(accesses)
    for point in iterations:
        cpu.fetch_instructions(code_base, instruction_count)
        cpu.execute_ops(ops)
        for access in accesses:
            address = access.const + sum(
                c * v for c, v in zip(access.coeffs, point)
            )
            cpu.execute_memory(address, access.size, access.is_write)

"""Array-at-a-time address generation for the batch simulator.

The per-iteration executor evaluates one dot product per reference per
point.  This module emits the same addresses *in the same execution
order* as whole numpy arrays, block by block:

* an untransformed (or identity-transformed) nest walks its box in
  lexicographic order, so each loop index along the flattened walk is
  a pure ``(flat // inner) % span`` expression -- blocks are computed
  lazily from the flat iteration range with no per-point Python work;
* a restructured nest executes in the lexicographic order of the
  transformed space.  We vectorize the exact Fourier-Motzkin bounds of
  :mod:`repro.transform.scanning` level by level: each level's integer
  bounds are evaluated for *all* outer prefixes at once and the prefix
  table is expanded with ``repeat``/``arange`` arithmetic.  Addresses
  then come from the transformed-space coefficient row
  ``coeffs' = coeffs . T^-1`` (the address is linear in either space).

Everything is exact integer arithmetic; the emitted address stream is
byte-identical to the per-iteration walk.  numpy is optional at the
package level -- callers check :data:`HAVE_NUMPY` and fall back to the
per-iteration engine without it.
"""

from __future__ import annotations

from itertools import islice
from math import lcm
from typing import Iterator, Sequence

from repro.simul.tracegen import NestAccessPlan
from repro.transform.scanning import fourier_motzkin_bounds, scan_transformed_box
from repro.transform.unimodular_loop import LoopTransform

try:  # pragma: no cover - exercised implicitly by engine selection
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: Iterations per emitted block: large enough to amortize numpy call
#: overhead, small enough to keep peak memory modest (a block is
#: ``block * n_refs`` int64 entries).
DEFAULT_BLOCK_ITERATIONS = 1 << 17


def transformed_coefficients(
    coeffs: Sequence[int], transform: LoopTransform
) -> tuple[int, ...]:
    """The address coefficient row over transformed iteration vectors.

    ``address = const + coeffs . I`` with ``I = T^-1 I'`` gives
    ``address = const + (coeffs . T^-1) . I'``.
    """
    inverse = transform.inverse
    depth = len(coeffs)
    return tuple(
        sum(coeffs[i] * inverse[i][j] for i in range(depth))
        for j in range(depth)
    )


def _scaled_inequalities(system, level: int) -> list[tuple[list[int], int]]:
    """Integer-scale one level's Fourier-Motzkin inequalities.

    Each inequality ``sum(c . x) <= d`` has Fraction coefficients;
    multiplying through by the (positive) LCM of the denominators keeps
    it exact over machine integers.
    """
    scaled = []
    for inequality in system:
        coeffs = inequality.coeffs[: level + 1]
        scale = lcm(
            *[c.denominator for c in coeffs], inequality.constant.denominator
        )
        scaled.append(
            (
                [int(c * scale) for c in coeffs],
                int(inequality.constant * scale),
            )
        )
    return scaled


def _expand_levels(columns: list, systems, start_level: int, depth: int) -> list:
    """Vectorized Fourier-Motzkin expansion of prefix columns.

    ``columns`` holds one int64 array per already-fixed level (equal
    lengths); each remaining level's integer bounds are evaluated for
    *all* prefixes at once and the prefix table is expanded with
    ``repeat``/``arange`` arithmetic.

    Raises:
        ValueError: when the transformed space is unbounded (cannot
            happen for a unimodular image of a finite box).
    """
    prefix_count = len(columns[0]) if columns else 1
    for level in range(start_level, depth):
        lows = None
        highs = None
        infeasible = _np.zeros(prefix_count, dtype=bool)
        for coeffs, constant in _scaled_inequalities(systems[level], level):
            rest = _np.full(prefix_count, constant, dtype=_np.int64)
            for j in range(level):
                if coeffs[j]:
                    rest -= coeffs[j] * columns[j]
            head = coeffs[level]
            if head == 0:
                infeasible |= rest < 0
            elif head > 0:
                bound = rest // head
                highs = bound if highs is None else _np.minimum(highs, bound)
            else:
                bound = -(rest // (-head))
                lows = bound if lows is None else _np.maximum(lows, bound)
        if lows is None or highs is None:
            raise ValueError("transformed iteration space is unbounded")
        counts = _np.maximum(highs - lows + 1, 0)
        counts[infeasible] = 0
        total = int(counts.sum())
        offsets = _np.concatenate(
            ([0], _np.cumsum(counts[:-1]))
        ) if prefix_count else _np.zeros(0, dtype=_np.int64)
        expand = _np.repeat(_np.arange(prefix_count), counts)
        new_column = (
            _np.repeat(lows, counts)
            + _np.arange(total)
            - _np.repeat(offsets, counts)
        )
        columns = [column[expand] for column in columns]
        columns.append(new_column)
        prefix_count = total
    return columns


def transformed_iteration_columns(
    transform: LoopTransform, box: Sequence[tuple[int, int]]
):
    """Transformed-space iteration points, one numpy column per level.

    The columns enumerate the image polytope ``{T I : I in box}`` in
    lexicographic order -- the execution order of the restructured
    nest, identical to :func:`repro.transform.scanning
    .scan_transformed_box` (which yields the mapped-back points one at
    a time).  Materializes the whole space; block-bounded callers use
    :func:`iter_transformed_column_chunks`.
    """
    systems = fourier_motzkin_bounds(transform, box)
    return _expand_levels([], systems, 0, transform.depth)


def iter_transformed_column_chunks(
    transform: LoopTransform,
    box: Sequence[tuple[int, int]],
    trip_count: int,
    block_iterations: int,
) -> Iterator[list]:
    """Stream :func:`transformed_iteration_columns` chunk by chunk.

    Chunks split the *outermost* transformed loop into ranges sized so
    each chunk carries roughly ``block_iterations`` points (estimated
    from the volume-preserving unimodular image), keeping peak memory
    proportional to the block size instead of the iteration space.
    """
    from repro.transform.scanning import _level_bounds

    depth = transform.depth
    systems = fourier_motzkin_bounds(transform, box)
    low, high = _level_bounds(systems[0], 0, ())
    if low > high:
        return
    outer_values = high - low + 1
    per_outer = max(1, trip_count // outer_values)
    chunk = max(1, block_iterations // per_outer)
    for start in range(low, high + 1, chunk):
        stop = min(start + chunk - 1, high)
        head = _np.arange(start, stop + 1, dtype=_np.int64)
        columns = _expand_levels([head], systems, 1, depth)
        if len(columns[0]):
            yield columns


def _address_blocks_from_columns(
    plan: NestAccessPlan, rows, columns, block_iterations: int
) -> Iterator:
    """Turn per-level point columns into ``(count, addresses)`` blocks.

    ``rows[r]`` is reference ``r``'s coefficient row over whichever
    space ``columns`` enumerates (original or transformed).
    """
    total = len(columns[0])
    n_refs = len(plan.accesses)
    addresses = _np.empty((total, n_refs), dtype=_np.int64)
    for r, access in enumerate(plan.accesses):
        column = _np.full(total, access.const, dtype=_np.int64)
        for axis in range(len(columns)):
            if rows[r][axis]:
                column += rows[r][axis] * columns[axis]
        addresses[:, r] = column
    for start in range(0, total, block_iterations):
        stop = min(start + block_iterations, total)
        yield (stop - start, addresses[start:stop])


def iter_address_blocks(
    plan: NestAccessPlan,
    transform: LoopTransform | None,
    block_iterations: int = DEFAULT_BLOCK_ITERATIONS,
    max_iterations: int | None = None,
) -> Iterator:
    """Yield ``(count, addresses)`` blocks over the nest's walk.

    ``addresses`` is an int64 array of shape ``(count, n_refs)``:
    row ``t`` holds every reference's byte address at the walk's
    ``t``-th iteration point, so ``addresses.reshape(-1)`` is the data
    access stream in exact execution order.

    ``max_iterations`` truncates the walk (iteration-space sampling for
    large nests); ``None`` walks the full space.
    """
    nest = plan.nest
    box = nest.iteration_box()
    total = nest.trip_count
    if max_iterations is not None:
        total = min(total, max_iterations)
    n_refs = len(plan.accesses)
    if transform is not None and not transform.is_identity:
        if total < nest.trip_count:
            # Sampling: the cap exists to bound work on huge nests, so
            # never enumerate the full transformed space just to slice
            # it -- take the first `total` points from the (lazy)
            # scanner instead.  O(total) regardless of nest size.
            points = _np.fromiter(
                (
                    value
                    for point in islice(
                        scan_transformed_box(transform, box), total
                    )
                    for value in point
                ),
                dtype=_np.int64,
                count=total * nest.depth,
            ).reshape(total, nest.depth)
            columns = [points[:, axis] for axis in range(nest.depth)]
            rows = [access.coeffs for access in plan.accesses]
            yield from _address_blocks_from_columns(
                plan, rows, columns, block_iterations
            )
            return
        # Full walk: vectorized Fourier-Motzkin enumeration of the
        # transformed space, streamed chunk by chunk over the
        # outermost transformed loop so memory stays proportional to
        # the block size.  Addresses are linear in I' as well:
        # coeffs' = coeffs . T^-1.
        rows = [
            transformed_coefficients(access.coeffs, transform)
            for access in plan.accesses
        ]
        for columns in iter_transformed_column_chunks(
            transform, box, total, block_iterations
        ):
            yield from _address_blocks_from_columns(
                plan, rows, columns, block_iterations
            )
        return

    spans = [high - low + 1 for (low, high) in box]
    inner = [1] * nest.depth
    for axis in range(nest.depth - 2, -1, -1):
        inner[axis] = inner[axis + 1] * spans[axis + 1]
    for start in range(0, total, block_iterations):
        stop = min(start + block_iterations, total)
        flat = _np.arange(start, stop, dtype=_np.int64)
        addresses = _np.empty((stop - start, n_refs), dtype=_np.int64)
        values = [
            (flat // inner[axis]) % spans[axis] + box[axis][0]
            for axis in range(nest.depth)
        ]
        for r, access in enumerate(plan.accesses):
            column = _np.full(stop - start, access.const, dtype=_np.int64)
            for axis in range(nest.depth):
                if access.coeffs[axis]:
                    column += access.coeffs[axis] * values[axis]
            addresses[:, r] = column
        yield (stop - start, addresses)

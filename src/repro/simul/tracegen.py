"""Compilation of references to linear address functions.

Under a layout with completed transformation ``T``, strides ``s`` and
box lows ``low``, the byte address of reference ``A I + b`` is

``base + esize * ( s . (T (A I + b)) - s . low )``

which is *linear in the iteration vector*: one dot product per access
at simulation time.  :func:`compile_nest_accesses` precomputes the
coefficient row and constant for every reference of a nest so the
executor's hot loop does no matrix math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.ir.loops import LoopNest
from repro.simul.addressmap import AddressMap


@dataclass(frozen=True)
class CompiledAccess:
    """One reference as a linear byte-address function of the iteration.

    ``address(I) = coeffs . I + const``.
    """

    array: str
    coeffs: tuple[int, ...]
    const: int
    size: int
    is_write: bool

    def address_at(self, iteration: tuple[int, ...]) -> int:
        """Evaluate the address function at one iteration point."""
        return self.const + sum(
            coefficient * value
            for coefficient, value in zip(self.coeffs, iteration)
        )

    def step_table(self, box: Sequence[tuple[int, int]]) -> tuple[int, ...]:
        """Per-axis address deltas for an odometer walk over ``box``.

        ``step_table(box)[axis]`` is the address change when loop
        ``axis`` advances by one *and every inner loop rolls over* from
        its upper bound back to its lower bound -- exactly the state
        change of a lexicographic walk.  Stepping is then O(1) per
        iteration point instead of a full dot product:

        ``delta[axis] = coeffs[axis] - sum_{j > axis} coeffs[j] * span_j``
        """
        spans = [high - low for (low, high) in box]
        deltas = []
        for axis in range(len(self.coeffs)):
            rollback = sum(
                self.coeffs[j] * spans[j]
                for j in range(axis + 1, len(self.coeffs))
            )
            deltas.append(self.coeffs[axis] - rollback)
        return tuple(deltas)

    def incremental(self, box: Sequence[tuple[int, int]]) -> "IncrementalAddress":
        """An O(1)-per-step address walker starting at the box origin."""
        origin = tuple(low for (low, _) in box)
        return IncrementalAddress(
            self.address_at(origin), self.step_table(box)
        )


class IncrementalAddress:
    """Streams one reference's addresses along a lexicographic walk.

    The executor's hot loop calls :meth:`step` with the axis the
    iteration odometer just incremented (inner axes having rolled
    over); the address is updated with one table lookup and one add.
    """

    __slots__ = ("address", "_deltas")

    def __init__(self, start: int, deltas: tuple[int, ...]):
        self.address = start
        self._deltas = deltas

    def step(self, axis: int) -> int:
        """Advance axis ``axis`` (inner axes roll over); returns the
        new address."""
        self.address += self._deltas[axis]
        return self.address


@dataclass(frozen=True)
class NestAccessPlan:
    """Everything the executor needs for one nest.

    Attributes:
        nest: the nest being simulated.
        accesses: compiled references in body order.
        code_base: synthetic base address of the nest's machine code
            (distinct per nest so the I-cache sees realistic locality).
        ops_per_iteration: non-memory instructions per innermost
            iteration (loop overhead + per-reference arithmetic).
    """

    nest: LoopNest
    accesses: tuple[CompiledAccess, ...]
    code_base: int
    ops_per_iteration: int


def compile_nest_accesses(
    nest: LoopNest,
    address_map: AddressMap,
    code_base: int,
    ops_per_reference: int = 4,
    loop_overhead_ops: int = 3,
) -> NestAccessPlan:
    """Precompute the linear address function of every reference.

    The composition ``s . (T (A I + b))`` is folded into a coefficient
    row over the nest's index order plus a constant that also absorbs
    the array base address.
    """
    order = nest.index_order
    compiled: list[CompiledAccess] = []
    for reference in nest.body:
        mapping = address_map.mapping_of(reference.array)
        element_size = mapping.decl.element_size
        transform = mapping.transform
        strides = mapping.strides
        lows = mapping.lows
        access = reference.access_matrix(order)
        offset = reference.offset_vector()
        rank = mapping.decl.rank
        depth = len(order)
        # weight_row[j] = sum_t strides[t] * transform[t][j]
        weight_row = [
            sum(strides[t] * transform[t][j] for t in range(rank))
            for j in range(rank)
        ]
        # coeffs[i] = esize * sum_j weight_row[j] * access[j][i]
        coeffs = tuple(
            element_size
            * sum(weight_row[j] * access[j][i] for j in range(rank))
            for i in range(depth)
        )
        const = address_map.base_of(reference.array) + element_size * (
            sum(weight_row[j] * offset[j] for j in range(rank))
            - sum(strides[t] * lows[t] for t in range(rank))
        )
        compiled.append(
            CompiledAccess(
                reference.array, coeffs, const, element_size, reference.is_write
            )
        )
    ops = loop_overhead_ops + ops_per_reference * len(nest.body)
    return NestAccessPlan(nest, tuple(compiled), code_base, ops)

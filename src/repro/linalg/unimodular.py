"""Hermite normal form and completion of row sets to nonsingular matrices.

A layout for a ``k``-dimensional array is an *ordered* set of ``k - 1``
hyperplane rows (Section 2).  To actually remap storage we must extend
those rows with one more row so the resulting ``k x k`` data
transformation matrix is nonsingular; the transformed array is then
stored row-major in the transformed index space.  The completion is the
job of :func:`complete_to_nonsingular` / :func:`complete_to_unimodular`.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Sequence

from repro.linalg.matrices import (
    IntMatrix,
    _check_rectangular,
    determinant,
    rank,
)


def hermite_normal_form(matrix: Sequence[Sequence[int]]) -> IntMatrix:
    """Row-style Hermite normal form of an integer matrix.

    Returns an upper-triangular-ish matrix ``H`` row-equivalent to the
    input over the integers (i.e. ``H = U @ matrix`` with ``U``
    unimodular), with non-negative pivots and entries above each pivot
    reduced modulo the pivot.  Zero rows sink to the bottom.
    """
    rows, cols = _check_rectangular(matrix)
    work = [list(row) for row in matrix]
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        # Euclidean elimination in this column below pivot_row.
        while True:
            nonzero = [
                r for r in range(pivot_row, rows) if work[r][col] != 0
            ]
            if not nonzero:
                break
            # Bring the row with smallest |value| to the pivot position.
            best = min(nonzero, key=lambda r: abs(work[r][col]))
            work[pivot_row], work[best] = work[best], work[pivot_row]
            pivot_value = work[pivot_row][col]
            done = True
            for r in range(pivot_row + 1, rows):
                if work[r][col] != 0:
                    quotient = work[r][col] // pivot_value
                    for c in range(cols):
                        work[r][c] -= quotient * work[pivot_row][c]
                    if work[r][col] != 0:
                        done = False
            if done:
                break
        if work[pivot_row][col] != 0:
            if work[pivot_row][col] < 0:
                work[pivot_row] = [-x for x in work[pivot_row]]
            pivot_value = work[pivot_row][col]
            # Reduce the entries above the pivot into [0, pivot).
            for r in range(pivot_row):
                quotient = work[r][col] // pivot_value
                if quotient:
                    for c in range(cols):
                        work[r][c] -= quotient * work[pivot_row][c]
            pivot_row += 1
    return tuple(tuple(row) for row in work)


def complete_to_nonsingular(rows_in: Sequence[Sequence[int]], size: int) -> IntMatrix:
    """Extend independent integer rows to a nonsingular ``size x size`` matrix.

    The given rows are kept verbatim (and first, in order); standard
    basis rows are appended greedily whenever they increase the rank.
    The result is deterministic.

    Raises:
        ValueError: if the given rows are not linearly independent or a
            row has the wrong length.
    """
    rows_list = [tuple(int(x) for x in row) for row in rows_in]
    for row in rows_list:
        if len(row) != size:
            raise ValueError(f"row length {len(row)} does not match size {size}")
    if rows_list and rank(rows_list) != len(rows_list):
        raise ValueError("given rows are linearly dependent")
    completed = list(rows_list)
    for axis in range(size):
        if len(completed) == size:
            break
        unit = tuple(1 if j == axis else 0 for j in range(size))
        candidate = completed + [unit]
        if rank(candidate) == len(candidate):
            completed.append(unit)
    if len(completed) != size:
        raise ValueError("failed to complete rows to a nonsingular matrix")
    return tuple(completed)


def _candidate_rows(size: int, max_abs: int) -> list[tuple[int, ...]]:
    """All integer rows with entries in [-max_abs, max_abs], sorted by
    L1 norm (then lexicographically) -- small rows first, because the
    completion row's magnitude directly drives the transformed
    bounding-box inflation."""
    from itertools import product

    rows = [
        row
        for row in product(range(-max_abs, max_abs + 1), repeat=size)
        if any(row)
    ]
    rows.sort(key=lambda row: (sum(abs(x) for x in row), row))
    return rows


def complete_to_unimodular(rows_in: Sequence[Sequence[int]], size: int) -> IntMatrix:
    """Extend *primitive* independent rows to a unimodular matrix.

    The completion row is chosen with the **smallest L1 norm** giving
    determinant ±1, so the induced data transformation inflates the
    transformed bounding box as little as possible (e.g. the (1 -2)
    hyperplane completes with (0 1), not some larger row).  Falls back
    to the plain nonsingular completion when no unimodular completion
    exists within the search window (still a valid data transformation;
    it merely inflates the box, as footnote 2 of the paper notes for
    non-primitive vectors).

    Raises:
        ValueError: if the given rows are dependent or mis-sized.
    """
    rows_list = [tuple(int(x) for x in row) for row in rows_in]
    return _complete_to_unimodular_cached(tuple(rows_list), size)


@lru_cache(maxsize=8192)
def _complete_to_unimodular_cached(
    rows_list: tuple[tuple[int, ...], ...], size: int
) -> IntMatrix:
    """Cached core of :func:`complete_to_unimodular`.

    The handful of hyperplane row-sets a workload uses (row-major,
    column-major, diagonals, small skews) recurs across every array and
    every request, while the candidate-row search below is the single
    most expensive step of materializing a layout.
    """
    base = complete_to_nonsingular(rows_list, size)
    if determinant(base) in (1, -1):
        return base
    missing = size - len(rows_list)
    if missing == 0:
        return base
    if missing == 1:
        prefix = list(rows_list)
        for candidate in _candidate_rows(size, max_abs=3):
            trial = tuple(prefix + [candidate])
            if determinant(trial) in (1, -1):
                return trial
        return base
    # More than one missing row (not produced by layouts, which always
    # have exactly size-1 rows): complete all but the last greedily,
    # then fix the determinant with the last row.
    partial = complete_to_nonsingular(rows_list, size)[: size - 1]
    return complete_to_unimodular(partial, size)

"""Exact integer/rational linear algebra used by the layout machinery.

The layout representation of the paper (Section 2) is built on integer
hyperplane vectors and unimodular data transformations, so floating
point is never appropriate here.  This subpackage provides exact
arithmetic over Python integers and :class:`fractions.Fraction`:

* :mod:`repro.linalg.vectors` -- primitive integer vectors, gcd
  normalization, dot products, lexicographic canonical forms.
* :mod:`repro.linalg.matrices` -- integer matrices: multiplication,
  determinants (Bareiss), exact inverses, rank.
* :mod:`repro.linalg.nullspace` -- integer (left) null-space bases.
* :mod:`repro.linalg.unimodular` -- extended-gcd row completion of a
  set of independent integer rows to a unimodular/nonsingular matrix,
  and Hermite normal form.
* :mod:`repro.linalg.boxes` -- exact extrema of affine forms over
  integer boxes (used to compute transformed-array extents).
"""

from repro.linalg.vectors import (
    gcd_many,
    is_zero_vector,
    normalize_primitive,
    canonical_hyperplane_vector,
    dot,
    vec_add,
    vec_sub,
    vec_scale,
    lex_positive,
)
from repro.linalg.matrices import (
    identity_matrix,
    mat_mul,
    mat_vec,
    mat_transpose,
    determinant,
    rank,
    inverse_rational,
    inverse_integer,
    is_unimodular,
    mat_equal,
    copy_matrix,
)
from repro.linalg.nullspace import nullspace_basis, left_nullspace_basis
from repro.linalg.unimodular import (
    hermite_normal_form,
    complete_to_nonsingular,
    complete_to_unimodular,
)
from repro.linalg.boxes import affine_range_over_box, box_corners

__all__ = [
    "gcd_many",
    "is_zero_vector",
    "normalize_primitive",
    "canonical_hyperplane_vector",
    "dot",
    "vec_add",
    "vec_sub",
    "vec_scale",
    "lex_positive",
    "identity_matrix",
    "mat_mul",
    "mat_vec",
    "mat_transpose",
    "determinant",
    "rank",
    "inverse_rational",
    "inverse_integer",
    "is_unimodular",
    "mat_equal",
    "copy_matrix",
    "nullspace_basis",
    "left_nullspace_basis",
    "hermite_normal_form",
    "complete_to_nonsingular",
    "complete_to_unimodular",
    "affine_range_over_box",
    "box_corners",
]

"""Exact extrema of affine forms over integer boxes.

After a data transformation ``d' = T d`` the transformed array is laid
out row-major over the *bounding box* of the transformed index set.
Each transformed coordinate is an affine form over the original index
box, so its extent is the exact min/max of a linear function over a box
-- computed coordinate-wise in O(k), no corner enumeration needed.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence


def affine_range_over_box(
    coefficients: Sequence[int],
    constant: int,
    box: Sequence[tuple[int, int]],
) -> tuple[int, int]:
    """Exact (min, max) of ``coefficients . x + constant`` for x in ``box``.

    Args:
        coefficients: integer coefficients of the linear form.
        constant: additive constant.
        box: inclusive (low, high) bounds per dimension.

    Raises:
        ValueError: on length mismatch or an empty box (low > high).
    """
    if len(coefficients) != len(box):
        raise ValueError("coefficient/box dimension mismatch")
    low_total = constant
    high_total = constant
    for coefficient, (low, high) in zip(coefficients, box):
        if low > high:
            raise ValueError(f"empty box dimension: ({low}, {high})")
        if coefficient >= 0:
            low_total += coefficient * low
            high_total += coefficient * high
        else:
            low_total += coefficient * high
            high_total += coefficient * low
    return (low_total, high_total)


def box_corners(box: Sequence[tuple[int, int]]) -> Iterable[tuple[int, ...]]:
    """Yield all corners of an integer box (2^k corners for k dims).

    Only used by tests as an oracle for :func:`affine_range_over_box`.
    """
    return product(*[(low, high) for (low, high) in box])

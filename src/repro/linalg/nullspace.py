"""Integer null-space bases.

The central computation of Section 2 of the paper: a hyperplane vector
``y`` gives spatial locality for a reference whose successive-iteration
access difference is ``delta`` iff ``y . delta = 0`` -- i.e. ``y`` lies
in the *left null space* of the column vector ``delta``.  For a
``k``-dimensional array the full layout is an ordered basis of that
null space (``k - 1`` rows when ``delta`` is nonzero).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.linalg.matrices import mat_transpose, _check_rectangular
from repro.linalg.vectors import canonical_hyperplane_vector, gcd_many

IntMatrix = tuple[tuple[int, ...], ...]


def nullspace_basis(matrix: Sequence[Sequence[int]]) -> list[tuple[int, ...]]:
    """Basis of ``{x : matrix @ x = 0}`` as primitive integer vectors.

    The basis is computed by exact Gauss-Jordan elimination over the
    rationals and each basis vector is scaled to a primitive integer
    vector with lex-positive leading entry (the canonical hyperplane
    form), so the result is deterministic for a given input.

    Returns:
        A list of ``cols - rank`` canonical integer vectors; empty when
        the matrix has full column rank.
    """
    rows, cols = _check_rectangular(matrix)
    if cols == 0:
        return []
    if rows == 0:
        # Everything is in the null space: return the standard basis.
        basis = []
        for i in range(cols):
            unit = [0] * cols
            unit[i] = 1
            basis.append(tuple(unit))
        return basis

    work = [[Fraction(x) for x in row] for row in matrix]
    pivot_cols: list[int] = []
    current_row = 0
    for col in range(cols):
        pivot_row = None
        for r in range(current_row, rows):
            if work[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        work[current_row], work[pivot_row] = work[pivot_row], work[current_row]
        pivot = work[current_row][col]
        work[current_row] = [entry / pivot for entry in work[current_row]]
        for r in range(rows):
            if r != current_row and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(work[r], work[current_row])
                ]
        pivot_cols.append(col)
        current_row += 1
        if current_row == rows:
            break

    free_cols = [c for c in range(cols) if c not in pivot_cols]
    basis: list[tuple[int, ...]] = []
    for free in free_cols:
        vector = [Fraction(0)] * cols
        vector[free] = Fraction(1)
        for pivot_index, pivot_col in enumerate(pivot_cols):
            vector[pivot_col] = -work[pivot_index][free]
        # Clear denominators to get an integer vector.
        denominator_lcm = 1
        for entry in vector:
            denominator_lcm = _lcm(denominator_lcm, entry.denominator)
        int_vector = [int(entry * denominator_lcm) for entry in vector]
        basis.append(canonical_hyperplane_vector(int_vector))
    return basis


def left_nullspace_basis(matrix: Sequence[Sequence[int]]) -> list[tuple[int, ...]]:
    """Basis of ``{y : y @ matrix = 0}`` as primitive integer row vectors.

    This is the layout-solving primitive: for an access-difference
    column ``delta`` packed as an ``k x 1`` matrix, the returned rows
    are exactly the hyperplane vectors under which successive iterations
    touch the same hyperplane.
    """
    return nullspace_basis(mat_transpose(matrix))


def _lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a == 0 or b == 0:
        return 0
    return a * b // gcd_many((a, b))

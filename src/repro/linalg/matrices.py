"""Exact integer-matrix operations.

Matrices are represented as tuples of tuples of Python integers (rows of
columns), which keeps them hashable -- layouts and data transformations
are used as dictionary keys and CSP domain values throughout the
library.  All algorithms here are exact: determinants use fraction-free
Bareiss elimination and inverses use :class:`fractions.Fraction`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

IntMatrix = tuple[tuple[int, ...], ...]
FracMatrix = tuple[tuple[Fraction, ...], ...]


def _check_rectangular(matrix: Sequence[Sequence[int]]) -> tuple[int, int]:
    """Return (rows, cols) of a rectangular matrix, raising otherwise."""
    if not matrix:
        return (0, 0)
    cols = len(matrix[0])
    for row in matrix:
        if len(row) != cols:
            raise ValueError("matrix rows have inconsistent lengths")
    return (len(matrix), cols)


def copy_matrix(matrix: Sequence[Sequence[int]]) -> IntMatrix:
    """Deep-copy a matrix into the canonical tuple-of-tuples form."""
    _check_rectangular(matrix)
    return tuple(tuple(int(x) for x in row) for row in matrix)


def identity_matrix(size: int) -> IntMatrix:
    """The ``size`` x ``size`` identity matrix."""
    return tuple(
        tuple(1 if i == j else 0 for j in range(size)) for i in range(size)
    )


def mat_equal(left: Sequence[Sequence[int]], right: Sequence[Sequence[int]]) -> bool:
    """Exact equality of two matrices (shape and entries)."""
    return copy_matrix(left) == copy_matrix(right)


def mat_transpose(matrix: Sequence[Sequence[int]]) -> IntMatrix:
    """Transpose of a rectangular matrix."""
    rows, cols = _check_rectangular(matrix)
    if rows == 0:
        return ()
    return tuple(tuple(matrix[r][c] for r in range(rows)) for c in range(cols))


def mat_mul(
    left: Sequence[Sequence[int]], right: Sequence[Sequence[int]]
) -> IntMatrix:
    """Matrix product ``left @ right`` over the integers.

    Raises:
        ValueError: on inner-dimension mismatch.
    """
    lrows, lcols = _check_rectangular(left)
    rrows, rcols = _check_rectangular(right)
    if lcols != rrows:
        raise ValueError(f"matmul dimension mismatch: {lcols} vs {rrows}")
    return tuple(
        tuple(
            sum(left[i][k] * right[k][j] for k in range(lcols))
            for j in range(rcols)
        )
        for i in range(lrows)
    )


def mat_vec(matrix: Sequence[Sequence[int]], vector: Sequence[int]) -> tuple[int, ...]:
    """Matrix-vector product, treating ``vector`` as a column."""
    rows, cols = _check_rectangular(matrix)
    if cols != len(vector):
        raise ValueError(f"mat_vec dimension mismatch: {cols} vs {len(vector)}")
    return tuple(
        sum(matrix[i][k] * vector[k] for k in range(cols)) for i in range(rows)
    )


def determinant(matrix: Sequence[Sequence[int]]) -> int:
    """Exact determinant of a square integer matrix (Bareiss algorithm).

    Bareiss elimination is fraction-free: every intermediate value is an
    integer, which avoids both float error and Fraction overhead.
    """
    rows, cols = _check_rectangular(matrix)
    if rows != cols:
        raise ValueError("determinant of a non-square matrix")
    if rows == 0:
        return 1
    work = [list(row) for row in matrix]
    sign = 1
    previous_pivot = 1
    for k in range(rows - 1):
        if work[k][k] == 0:
            # Find a row below with a nonzero pivot and swap.
            for swap in range(k + 1, rows):
                if work[swap][k] != 0:
                    work[k], work[swap] = work[swap], work[k]
                    sign = -sign
                    break
            else:
                return 0
        for i in range(k + 1, rows):
            for j in range(k + 1, rows):
                work[i][j] = (
                    work[i][j] * work[k][k] - work[i][k] * work[k][j]
                ) // previous_pivot
            work[i][k] = 0
        previous_pivot = work[k][k]
    return sign * work[rows - 1][rows - 1]


def rank(matrix: Sequence[Sequence[int]]) -> int:
    """Rank of a rectangular integer matrix via exact Gauss elimination."""
    rows, cols = _check_rectangular(matrix)
    if rows == 0 or cols == 0:
        return 0
    work = [[Fraction(x) for x in row] for row in matrix]
    current_rank = 0
    for col in range(cols):
        pivot_row = None
        for r in range(current_rank, rows):
            if work[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        work[current_rank], work[pivot_row] = work[pivot_row], work[current_rank]
        pivot = work[current_rank][col]
        for r in range(rows):
            if r != current_rank and work[r][col] != 0:
                factor = work[r][col] / pivot
                for c in range(col, cols):
                    work[r][c] -= factor * work[current_rank][c]
        current_rank += 1
        if current_rank == rows:
            break
    return current_rank


def inverse_rational(matrix: Sequence[Sequence[int]]) -> FracMatrix:
    """Exact inverse of a square integer matrix as a Fraction matrix.

    Raises:
        ValueError: if the matrix is singular or non-square.
    """
    rows, cols = _check_rectangular(matrix)
    if rows != cols:
        raise ValueError("inverse of a non-square matrix")
    size = rows
    work = [
        [Fraction(matrix[i][j]) for j in range(size)]
        + [Fraction(1 if i == j else 0) for j in range(size)]
        for i in range(size)
    ]
    for col in range(size):
        pivot_row = None
        for r in range(col, size):
            if work[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            raise ValueError("matrix is singular")
        work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot = work[col][col]
        work[col] = [entry / pivot for entry in work[col]]
        for r in range(size):
            if r != col and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(work[r], work[col])
                ]
    return tuple(tuple(work[i][size:]) for i in range(size))


def inverse_integer(matrix: Sequence[Sequence[int]]) -> IntMatrix:
    """Inverse of a unimodular matrix, returned with integer entries.

    Raises:
        ValueError: if the matrix is singular, or if its inverse is not
            integral (i.e. the matrix is not unimodular).
    """
    fractional = inverse_rational(matrix)
    result = []
    for row in fractional:
        int_row = []
        for entry in row:
            if entry.denominator != 1:
                raise ValueError("matrix is not unimodular; inverse is not integral")
            int_row.append(int(entry))
        result.append(tuple(int_row))
    return tuple(result)


def is_unimodular(matrix: Sequence[Sequence[int]]) -> bool:
    """True if the matrix is square with determinant +1 or -1."""
    rows, cols = _check_rectangular(matrix)
    if rows != cols:
        return False
    return determinant(matrix) in (1, -1)

"""Primitive integer-vector operations.

Hyperplane vectors (Section 2 of the paper) are integer row vectors
defined only up to a nonzero rational scale: ``(2 -2)`` names the same
hyperplane family as ``(1 -1)`` (and the paper's footnote 2 explains why
the primitive representative is the one to use -- non-primitive vectors
inflate the transformed data space).  The canonical representative used
throughout this library is the *primitive, lex-positive* form produced
by :func:`canonical_hyperplane_vector`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

IntVector = tuple[int, ...]


def gcd_many(values: Iterable[int]) -> int:
    """Return the gcd of an iterable of integers (gcd of nothing is 0).

    The result is always non-negative; ``gcd_many([-4, 6]) == 2``.
    """
    result = 0
    for value in values:
        result = math.gcd(result, value)
        if result == 1:
            return 1
    return result


def is_zero_vector(vector: Sequence[int]) -> bool:
    """True if every component is zero (or the vector is empty)."""
    return all(component == 0 for component in vector)


def normalize_primitive(vector: Sequence[int]) -> IntVector:
    """Divide a nonzero integer vector by the gcd of its components.

    Raises:
        ValueError: if the vector is all zeros (a zero hyperplane vector
            does not name a hyperplane family).
    """
    divisor = gcd_many(vector)
    if divisor == 0:
        raise ValueError("cannot normalize the zero vector")
    return tuple(component // divisor for component in vector)


def lex_positive(vector: Sequence[int]) -> bool:
    """True if the first nonzero component of the vector is positive.

    The zero vector is not lex-positive.
    """
    for component in vector:
        if component != 0:
            return component > 0
    return False


def canonical_hyperplane_vector(vector: Sequence[int]) -> IntVector:
    """Canonical representative of the hyperplane family of ``vector``.

    Two integer vectors represent the same hyperplane family iff one is
    a nonzero rational multiple of the other, so the canonical form is
    the primitive vector whose leading nonzero entry is positive:

    >>> canonical_hyperplane_vector((2, -2))
    (1, -1)
    >>> canonical_hyperplane_vector((0, -3))
    (0, 1)

    Raises:
        ValueError: for the zero vector.
    """
    primitive = normalize_primitive(vector)
    if lex_positive(primitive):
        return primitive
    return tuple(-component for component in primitive)


def dot(left: Sequence[int], right: Sequence[int]) -> int:
    """Point multiplication of two equal-length integer vectors.

    This is the operation written ``(y1 ... yk) . d`` in the paper.

    Raises:
        ValueError: if the vectors have different lengths.
    """
    if len(left) != len(right):
        raise ValueError(
            f"dot product of vectors of different lengths: {len(left)} vs {len(right)}"
        )
    return sum(a * b for a, b in zip(left, right))


def vec_add(left: Sequence[int], right: Sequence[int]) -> IntVector:
    """Componentwise sum of two equal-length vectors."""
    if len(left) != len(right):
        raise ValueError("vector length mismatch in vec_add")
    return tuple(a + b for a, b in zip(left, right))


def vec_sub(left: Sequence[int], right: Sequence[int]) -> IntVector:
    """Componentwise difference ``left - right``."""
    if len(left) != len(right):
        raise ValueError("vector length mismatch in vec_sub")
    return tuple(a - b for a, b in zip(left, right))


def vec_scale(vector: Sequence[int], factor: int) -> IntVector:
    """Scale every component of ``vector`` by the integer ``factor``."""
    return tuple(component * factor for component in vector)

"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs; on
offline machines without it, ``python setup.py develop`` installs the
same editable package using only setuptools.  All package metadata
(name, version, src/ layout, entry points) lives in ``pyproject.toml``;
this shim only exists so the setuptools command-line path keeps
working.
"""

from setuptools import setup

setup()

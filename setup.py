"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs; on
offline machines without it, ``python setup.py develop`` installs the
same editable package using only setuptools.
"""

from setuptools import setup

setup()

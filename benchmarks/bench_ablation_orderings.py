"""Ablation: full enhancement grid (all 8 on/off combinations).

Extends Figure 4: rather than single enhancements, every subset of
{variable ordering, value ordering, backjumping} is timed on one
benchmark network, revealing interactions (e.g. value ordering matters
less once backjumping prunes the thrashing).
"""

from itertools import product

import pytest

from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.opt.report import format_table
from benchmarks.conftest import BASE_NODE_CAP, HARNESS_SEED

_BENCH = "Med-Im04"
_GRID = [
    EnhancementConfig(var, val, bj)
    for var, val, bj in product((False, True), repeat=3)
]
_results = {}


@pytest.mark.parametrize("config", _GRID, ids=lambda c: c.label())
def test_grid_cell(benchmark, config, networks):
    """Solve the benchmark network under one enhancement subset."""
    network = networks[_BENCH].network
    solver = EnhancedSolver(config, seed=HARNESS_SEED, max_nodes=BASE_NODE_CAP)
    result = benchmark.pedantic(solver.solve, args=(network,), rounds=1, iterations=1)
    if result.complete:
        assert result.satisfiable
    _results[config.label()] = result.stats
    benchmark.extra_info["nodes"] = result.stats.nodes


def test_full_config_is_best_or_close(benchmark):
    """All three enhancements together must be at or near the grid
    minimum in search nodes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = _results["var+val+bj"].nodes
    best = min(stats.nodes for stats in _results.values())
    assert full <= 10 * best  # within an order of magnitude of the best


def test_print_grid(benchmark):
    """Emit the full ablation grid (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [label, stats.nodes, stats.backtracks, stats.backjumps,
         f"{stats.time_seconds:.3f}"]
        for label, stats in sorted(
            _results.items(), key=lambda item: item[1].nodes
        )
    ]
    print(f"\n\n=== Enhancement grid on {_BENCH} ===")
    print(
        format_table(
            ["config", "nodes", "backtracks", "backjumps", "seconds"], rows
        )
    )

"""Space-splitting parallel search: speedup gate and byte parity.

Not a paper table -- this gates the split solver
(:mod:`repro.csp.splitsearch`): on phase-transition hard instances the
4-worker split search must deliver **>= 2x** over the serial
forward-checking solver while returning **byte-identical** solutions
and accounted effort counters (nodes, backtracks, consistency checks
-- the deterministic-merge contract), with speculative work reported
separately.

The hard set sits at the SAT/UNSAT crossover of random binary
networks (the region where search cost peaks); the timing gate is
evaluated on the UNSAT members, where the split search provably does
*zero* speculative work (every subtree must be refuted, exactly like
the serial run), so the measured speedup is pure parallelism, not
lucky early exits.

On hosts with fewer than 4 cores the wall-clock gate is meaningless,
so the gate falls back to a *modeled* critical-path speedup derived
from the per-subtree wall clocks the solver's trace spans report:
``serial / (overhead + max(total/workers, longest subtree))`` -- the
time a perfectly stolen schedule takes on real cores.

Environment knobs (the CI smoke job caps these; parity and the
steal-counter assert hold either way):

* ``REPRO_SPLIT_WORKERS``         -- worker count (default 4 here);
* ``REPRO_BENCH_SPLIT_INSTANCES`` -- cap on hard instances (default all);
* ``REPRO_BENCH_SPLIT_GATE``      -- ``0`` reports the speedup without
  failing the 2x gate (also implied when workers < 4).

Run:  pytest benchmarks/bench_split_search.py --benchmark-only -s
"""

import os
import time

import pytest

np = pytest.importorskip("numpy")

from repro.bench import BENCHMARK_NAMES
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.random_networks import random_network
from repro.csp.splitsearch import SEARCH_SPLIT, SplitSearchSolver
from repro.obs import trace as obs_trace
from repro.opt.report import format_table

#: (variables, domain, density, tightness, seed) at the crossover.
#: Serial forward checking spends 0.1-1s on each; satisfiability noted
#: for the reader but asserted only via serial/split parity.
HARD_INSTANCES = [
    (50, 10, 0.12, 0.46, 0),  # UNSAT
    (70, 8, 0.08, 0.48, 0),   # SAT
    (50, 10, 0.12, 0.48, 2),  # UNSAT
    (70, 8, 0.08, 0.46, 2),   # SAT
    (70, 8, 0.08, 0.52, 5),   # UNSAT
    (70, 8, 0.08, 0.50, 5),   # SAT
]
_CAP = os.environ.get("REPRO_BENCH_SPLIT_INSTANCES")
if _CAP:
    HARD_INSTANCES = HARD_INSTANCES[: int(_CAP)]

WORKERS = int(os.environ.get("REPRO_SPLIT_WORKERS", 4))
GATE = os.environ.get("REPRO_BENCH_SPLIT_GATE", "1") != "0" and WORKERS >= 4
REQUIRED_SPEEDUP = 2.0

_runs: dict[str, dict] = {}


def _instances():
    return {
        f"n{n}d{d}t{t}s{seed}": random_network(
            n, d, density, t, seed=seed, plant_solution=False
        )
        for (n, d, density, t, seed) in HARD_INSTANCES
    }


def _counters(stats) -> tuple:
    return (stats.nodes, stats.backtracks, stats.consistency_checks)


def _subtree_seconds(span_tree: dict) -> list[float]:
    """Per-subtree CPU seconds from a recorded trace.

    CPU time, not wall: on an oversubscribed host the wall clocks of
    concurrent subtrees overlap (each includes time spent descheduled)
    and sum to ``workers x`` the real work; the CPU seconds the worker
    measured with ``time.process_time`` still sum to the true load.
    """
    seconds: list[float] = []

    def walk(node: dict) -> None:
        if node.get("name", "").startswith("subtree:"):
            seconds.append(node["attributes"].get("cpu_seconds", 0.0))
        for child in node.get("children", ()):
            walk(child)

    walk(span_tree)
    return seconds


def test_serial_baseline(benchmark):
    """Serial forward checking over the hard set (the 1x reference)."""
    rows = {}
    start = time.perf_counter()
    for name, network in _instances().items():
        t0 = time.perf_counter()
        result = ForwardCheckingSolver().solve(network)
        rows[name] = {
            "seconds": time.perf_counter() - t0,
            "assignment": result.assignment,
            "complete": result.complete,
            "counters": _counters(result.stats),
        }
    elapsed = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["suite_seconds"] = elapsed
    _runs["serial"] = {"rows": rows, "elapsed": elapsed}


def test_split_run(benchmark):
    """The split solver over the hard set, with subtree spans recorded.

    One solver -- one warm worker pool -- serves the whole suite, the
    resident form the service layer runs: pool spawn is paid once, and
    per-solve cost is frontier expansion plus subtree racing.  A
    throwaway warm-up solve gets process startup out of the timings.
    """
    rows = {}
    solver = SplitSearchSolver(
        search=SEARCH_SPLIT, workers=WORKERS, subtrees_per_worker=8
    )
    solver.solve(random_network(10, 3, 0.5, 0.3, seed=1))  # warm the pool
    start = time.perf_counter()
    for name, network in _instances().items():
        with obs_trace.recording("bench_split") as root:
            t0 = time.perf_counter()
            result = solver.solve(network)
            wall = time.perf_counter() - t0
        rows[name] = {
            "seconds": wall,
            "assignment": result.assignment,
            "complete": result.complete,
            "counters": _counters(result.stats),
            "subtrees": result.stats.subtrees,
            "steals": result.stats.steals,
            "speculative": result.stats.speculative_nodes,
            "subtree_seconds": _subtree_seconds(root.to_dict()),
        }
    elapsed = time.perf_counter() - start
    solver.close()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["suite_seconds"] = elapsed
    _runs["split"] = {"rows": rows, "elapsed": elapsed}


def test_parity_and_speedup(benchmark):
    """Byte-identical results; >= 2x on the UNSAT gate set (gated)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_runs) == {"serial", "split"}, "run the two suite benchmarks"
    serial, split = _runs["serial"]["rows"], _runs["split"]["rows"]

    # Determinism contract: same assignment, same completeness, same
    # accounted effort -- byte for byte, per instance.
    for name in serial:
        assert split[name]["assignment"] == serial[name]["assignment"], name
        assert split[name]["complete"] == serial[name]["complete"], name
        assert split[name]["counters"] == serial[name]["counters"], name

    # The split machinery really ran: frontiers formed, and at least
    # one idle lane stole work somewhere across the suite.
    assert sum(row["subtrees"] for row in split.values()) > 0
    assert sum(row["steals"] for row in split.values()) >= 1

    if hasattr(os, "sched_getaffinity"):
        usable_cores = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - non-Linux fallback
        usable_cores = os.cpu_count() or 1
    many_cores = usable_cores >= WORKERS
    rows, gate_serial, gate_split = [], 0.0, 0.0
    for name in serial:
        unsat = serial[name]["assignment"] is None
        subtree = split[name]["subtree_seconds"]
        total, longest = sum(subtree), max(subtree, default=0.0)
        overhead = max(0.0, split[name]["seconds"] - total)
        modeled = overhead + max(total / WORKERS, longest)
        observed = split[name]["seconds"] if many_cores else modeled
        if unsat:
            gate_serial += serial[name]["seconds"]
            gate_split += observed
        rows.append(
            [
                name,
                "UNSAT" if unsat else "SAT",
                f"{serial[name]['seconds'] * 1e3:.0f}",
                f"{split[name]['seconds'] * 1e3:.0f}",
                f"{modeled * 1e3:.0f}",
                str(split[name]["subtrees"]),
                str(split[name]["steals"]),
                str(split[name]["speculative"]),
                f"{serial[name]['seconds'] / observed:.2f}x",
            ]
        )
    speedup = gate_serial / gate_split if gate_split else float("inf")
    kind = "wall-clock" if many_cores else "modeled critical-path"
    print(f"\n\n=== Split search, {WORKERS} workers ({kind} speedup) ===")
    print(
        format_table(
            [
                "Instance", "sat", "serial ms", "split ms", "model ms",
                "subtrees", "steals", "spec", "speedup",
            ],
            rows,
        )
    )
    print(
        f"UNSAT gate set: serial {gate_serial:.3f}s vs split "
        f"{gate_split:.3f}s -> {speedup:.2f}x "
        f"(gate {'>= %.1fx' % REQUIRED_SPEEDUP if GATE else 'off'})"
    )
    benchmark.extra_info.update(
        {"speedup": speedup, "gated": GATE, "kind": kind}
    )
    if GATE:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"split search is {speedup:.2f}x serial at {WORKERS} workers; "
            f"the space-splitting solver must deliver >= {REQUIRED_SPEEDUP}x"
        )


def test_split_parity_table2(benchmark, networks):
    """The Table 2 suite solves byte-identically through the split seam.

    These networks are easy (the frontier often drains during
    expansion), so this asserts the degenerate paths: parity without
    escalation, whatever the worker count.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in BENCHMARK_NAMES:
        kernel = networks[name].kernel()
        serial = ForwardCheckingSolver().solve(kernel)
        solver = SplitSearchSolver(search=SEARCH_SPLIT, workers=WORKERS)
        try:
            result = solver.solve(kernel)
        finally:
            solver.close()
        assert result.assignment == serial.assignment, name
        assert result.complete == serial.complete, name
        assert _counters(result.stats) == _counters(serial.stats), name

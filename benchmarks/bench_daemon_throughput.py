"""Daemon-layer throughput: warm resident serving vs cold batch mode.

Not a paper table -- this measures the resident daemon's reason to
exist: once a suite has been solved, a long-running daemon answers the
same requests out of its sharded cache without touching a process
pool, a solver, or even a network build.  The acceptance shape:

* warm daemon throughput (requests/s over the streaming socket,
  pipelined) must be **>= 2x** the cold ``run_batch`` throughput on
  the same program suite (in practice it is orders of magnitude); and
* every warm payload must be **byte-identical** to the cold batch's
  ``PortfolioResult`` serialization -- the daemon is a faster path to
  the same answers, not a different solver.

Run:  pytest benchmarks/bench_daemon_throughput.py --benchmark-only -s
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.bench import random_suite
from repro.service import PortfolioConfig, ShardedResultCache, run_batch
from repro.service.daemon import DaemonConfig, SolverDaemon
from repro.service.stream import DaemonClient

from benchmarks.conftest import HARNESS_SEED

#: The racing line-up measured here (matches bench_service_throughput).
PORTFOLIO = ("enhanced", "cbj", "weighted")

#: Cold-batch worker-pool size (``REPRO_BENCH_WORKERS`` trims CI runs;
#: only the first value is used here).
COLD_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", "4").split(",")[-1]
)

#: How many times the warm pass streams the whole suite through the
#: daemon (pipelined); more passes amortize client-side JSON overhead
#: into a stable requests/s figure.
WARM_PASSES = 20


def _batch_programs(programs):
    """Five paper benchmarks plus deterministic synthetic filler."""
    return list(programs.values()) + list(random_suite(5, seed=HARNESS_SEED))


def test_warm_daemon_beats_cold_batch(benchmark, programs, build_options, tmp_path):
    batch = _batch_programs(programs)
    config = PortfolioConfig(schemes=PORTFOLIO, seed=HARNESS_SEED)
    cache = ShardedResultCache(
        shards=4, directory=str(tmp_path / "cache.d")
    )

    # -- cold: the classic one-shot batch, sharing the daemon's cache.
    cold_start = time.perf_counter()
    cold = run_batch(
        batch, config, options=build_options, cache=cache, workers=COLD_WORKERS
    )
    cold_seconds = time.perf_counter() - cold_start
    cold_rps = len(batch) / cold_seconds
    assert cold.cache_hits == 0

    # -- warm: a resident daemon answering out of the shared cache.
    daemon = SolverDaemon(
        config=config,
        options=build_options,
        daemon_config=DaemonConfig(workers=2, shards=4, max_inflight=64),
        cache=cache,
    )
    socket_path = str(tmp_path / "daemon.sock")
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve_unix(socket_path)), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 60.0
    while not os.path.exists(socket_path):
        if time.monotonic() > deadline:  # pragma: no cover
            raise TimeoutError("daemon socket never appeared")
        time.sleep(0.02)

    holder = {}

    def warm_pass():
        with DaemonClient(socket_path) as client:
            start = time.perf_counter()
            responses = []
            for _ in range(WARM_PASSES):
                responses.extend(client.solve_many(batch))
            holder["seconds"] = time.perf_counter() - start
            holder["responses"] = responses

    try:
        benchmark.pedantic(warm_pass, rounds=1, iterations=1)
    finally:
        try:
            with DaemonClient(socket_path) as client:
                client.shutdown()
        except OSError:  # pragma: no cover - daemon already gone
            pass
        thread.join(timeout=15)

    responses = holder["responses"]
    assert len(responses) == WARM_PASSES * len(batch)
    assert all(response["ok"] for response in responses)
    assert all(response["from_cache"] for response in responses)

    # Byte-identical payloads: the daemon serves exactly what the cold
    # batch computed, for every request of every pass.
    cold_payloads = [
        json.dumps(result.to_dict(), sort_keys=True) for result in cold.results
    ]
    for index, response in enumerate(responses):
        expected = cold_payloads[index % len(batch)]
        assert json.dumps(response["result"], sort_keys=True) == expected

    warm_rps = len(responses) / holder["seconds"]
    speedup = warm_rps / cold_rps
    benchmark.extra_info.update(
        {
            "cold_rps": round(cold_rps, 2),
            "warm_rps": round(warm_rps, 1),
            "speedup": round(speedup, 1),
            "requests": len(responses),
        }
    )
    print("\n[daemon warm vs cold batch]")
    print(
        f"  cold batch: {len(batch)} programs in {cold_seconds:.2f}s "
        f"({cold_rps:.2f} req/s, workers={COLD_WORKERS})"
    )
    print(
        f"  warm daemon: {len(responses)} requests in "
        f"{holder['seconds']:.3f}s ({warm_rps:.1f} req/s)"
    )
    print(f"  speedup: {speedup:.1f}x")
    assert warm_rps >= 2.0 * cold_rps, (
        f"warm daemon ({warm_rps:.1f} req/s) must be >= 2x cold batch "
        f"({cold_rps:.2f} req/s)"
    )

"""Table 2 reproduction: layout-determination (solver) times.

Paper (DATE'05, Table 2, seconds on a 500 MHz Sun Sparc)::

    Benchmark   Heuristic    Base     Enhanced
    Med-Im04      7.14       97.34     12.22
    MxM           5.18       36.62      9.24
    Radar        11.33      129.51     53.81
    Shape        16.52      197.17     82.06
    Track        10.09      155.02     68.50

Absolute seconds are machine-bound; the reproduced *shape* is what
matters: the base scheme costs far more than the enhanced scheme on
every benchmark, and the enhanced scheme is within small factors of the
heuristic.  Solver runs are one-shot (``pedantic`` with a single round)
because the base scheme's cost is the quantity being measured, not a
micro-benchmark.
"""

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver
from repro.opt.heuristic import HeuristicOptimizer
from repro.opt.report import format_table
from benchmarks.conftest import BASE_NODE_CAP, HARNESS_SEED

#: Paper Table 2 rows: (heuristic, base, enhanced) seconds.
PAPER_TABLE2 = {
    "Med-Im04": (7.14, 97.34, 12.22),
    "MxM": (5.18, 36.62, 9.24),
    "Radar": (11.33, 129.51, 53.81),
    "Shape": (16.52, 197.17, 82.06),
    "Track": (10.09, 155.02, 68.50),
}

_rows = {}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_solution_times(benchmark, name, programs, networks, build_options, scheme_outcomes):
    """One-shot timing of heuristic, base and enhanced on one benchmark."""
    program = programs[name]
    network = networks[name].network
    outcomes = scheme_outcomes[name]

    def solve_all():
        heuristic = HeuristicOptimizer(
            build_options.include_reversals, build_options.skew_factors
        ).optimize(program)
        enhanced = EnhancedSolver(seed=HARNESS_SEED).solve(network)
        return heuristic.solve_seconds, enhanced.stats.time_seconds

    benchmark.pedantic(solve_all, rounds=1, iterations=1)

    heuristic_s = outcomes["heuristic"]["seconds"]
    base_s = outcomes["base"]["seconds"]
    enhanced_s = outcomes["enhanced"]["seconds"]
    capped = outcomes["base"]["capped"]
    paper_h, paper_b, paper_e = PAPER_TABLE2[name]
    _rows[name] = [
        name,
        f"{paper_h:.2f}",
        f"{heuristic_s:.4f}",
        f"{paper_b:.2f}",
        f"{base_s:.2f}" + ("*" if capped else ""),
        f"{paper_e:.2f}",
        f"{enhanced_s:.4f}",
    ]
    # The paper's core Table 2 claim: base >> enhanced.  On MxM the
    # network is tiny enough that both schemes finish in well under a
    # millisecond and the enhanced orderings' overhead can exceed the
    # base scheme's entire search; the claim concerns non-trivial
    # networks.
    if base_s > 0.01 or enhanced_s > 0.01:
        assert base_s > enhanced_s
    benchmark.extra_info.update(
        {
            "heuristic_s": heuristic_s,
            "base_s": base_s,
            "enhanced_s": enhanced_s,
            "base_capped": capped,
        }
    )


def test_print_table2(benchmark):
    """Emit the reproduced Table 2 (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == len(BENCHMARK_NAMES)
    print("\n\n=== Table 2 reproduction (seconds; * = node-capped) ===")
    print(
        format_table(
            [
                "Benchmark",
                "paper heur", "ours heur",
                "paper base", "ours base",
                "paper enh", "ours enh",
            ],
            [_rows[name] for name in BENCHMARK_NAMES],
        )
    )
    print("paper: 500MHz Sparc / C++; ours: this machine / CPython -- "
          "compare shapes (base >> enhanced >= heuristic), not seconds")

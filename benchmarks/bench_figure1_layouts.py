"""Figure 1 reproduction: the four 2-D memory layouts.

The paper's Figure 1 is illustrative -- row-major (1 0), column-major
(0 1), diagonal (1 -1) and anti-diagonal (1 1) hyperplane families.
We regenerate the figure as ASCII art (printed at the end) and
benchmark the index->offset mapping machinery for each layout, since
that mapping is what the simulator executes per reference.
"""

import pytest

from repro.ir.arrays import ArrayDecl
from repro.layout.layout import antidiagonal, column_major, diagonal, row_major
from repro.layout.mapping import LayoutMapping
from repro.viz.layout_art import layout_gallery

_LAYOUTS = {
    "row_major": row_major(2),
    "column_major": column_major(2),
    "diagonal": diagonal(),
    "antidiagonal": antidiagonal(),
}


@pytest.mark.parametrize("label", list(_LAYOUTS))
def test_offset_mapping(benchmark, label):
    """Time offsets of a full 64x64 sweep under each Figure 1 layout."""
    decl = ArrayDecl("Q", (64, 64))
    mapping = LayoutMapping.create(decl, _LAYOUTS[label])

    def sweep() -> int:
        total = 0
        for i in range(64):
            for j in range(64):
                total += mapping.offset_of((i, j))
        return total

    total = benchmark(sweep)
    assert total > 0


@pytest.mark.parametrize("label", list(_LAYOUTS))
def test_mapping_bijectivity(benchmark, label):
    """Every layout is a storage bijection over the array."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    decl = ArrayDecl("Q", (16, 16))
    mapping = LayoutMapping.create(decl, _LAYOUTS[label])
    offsets = {
        mapping.offset_of((i, j)) for i in range(16) for j in range(16)
    }
    assert len(offsets) == 256


def test_print_figure1(benchmark):
    """Emit the reproduced Figure 1 (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\n=== Figure 1 reproduction ===")
    print(layout_gallery(size=8))

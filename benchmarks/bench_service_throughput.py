"""Service-layer throughput: batched portfolio serving, cold vs warm.

Not a paper table -- this measures the PR's serving architecture on the
paper's workload: the five Table 1 programs (plus synthetic filler)
pushed through ``repro.service.run_batch`` with a racing portfolio and
a shared result cache.  Reported shape: the warm-cache batch must be
orders of magnitude faster than the cold batch (every program served
from the fingerprint-keyed cache), and cold-batch throughput should
scale with the worker pool.

Run:  pytest benchmarks/bench_service_throughput.py --benchmark-only -s
"""

import os

import pytest

from repro.bench import random_suite
from repro.service import PortfolioConfig, ResultCache, run_batch

from benchmarks.conftest import HARNESS_SEED

#: The racing line-up measured here (the acceptance-criteria set).
PORTFOLIO = ("enhanced", "cbj", "weighted")

#: Worker-pool sizes for the cold batch; ``REPRO_BENCH_WORKERS=2``
#: (say) turns the scaling sweep into a single CI smoke run.
WORKER_COUNTS = tuple(
    int(entry) for entry in os.environ.get("REPRO_BENCH_WORKERS", "1,4").split(",")
)


def _batch_programs(programs):
    """Five paper benchmarks plus deterministic synthetic filler."""
    return list(programs.values()) + list(random_suite(5, seed=HARNESS_SEED))


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_cold_batch_throughput(benchmark, workers, programs, build_options):
    """Cold-cache batch: every program races the full portfolio."""
    batch = _batch_programs(programs)
    config = PortfolioConfig(schemes=PORTFOLIO, seed=HARNESS_SEED)
    report_holder = {}

    def serve():
        report_holder["report"] = run_batch(
            batch,
            config,
            options=build_options,
            cache=ResultCache(),
            workers=workers,
        )

    benchmark.pedantic(serve, rounds=1, iterations=1)
    report = report_holder["report"]
    assert report.total == len(batch)
    assert report.cache_hits == 0
    benchmark.extra_info.update(
        {
            "workers": workers,
            "throughput_programs_per_s": round(report.throughput, 2),
            "scheme_wins": report.scheme_wins(),
        }
    )
    print(f"\n[service cold, workers={workers}]")
    print(report.format())


def test_warm_batch_is_cache_bound(benchmark, programs, build_options):
    """Warm-cache batch: ~all requests served without touching a solver."""
    batch = _batch_programs(programs)
    config = PortfolioConfig(schemes=PORTFOLIO, seed=HARNESS_SEED)
    cache = ResultCache()
    cold = run_batch(
        batch, config, options=build_options, cache=cache, workers=4
    )
    report_holder = {}

    def serve():
        report_holder["report"] = run_batch(
            batch, config, options=build_options, cache=cache, workers=4
        )

    benchmark.pedantic(serve, rounds=1, iterations=1)
    warm = report_holder["report"]
    assert warm.cached_fraction == 1.0
    speedup = cold.wall_seconds / max(warm.wall_seconds, 1e-9)
    benchmark.extra_info.update(
        {
            "cold_wall_s": round(cold.wall_seconds, 3),
            "warm_wall_s": round(warm.wall_seconds, 5),
            "speedup": round(speedup, 1),
        }
    )
    print("\n[service warm vs cold]")
    print(f"  cold: {cold.wall_seconds:.3f}s   warm: {warm.wall_seconds:.5f}s")
    print(f"  cache speedup: {speedup:.0f}x")
    print(warm.format())

"""Evaluation-layer throughput: the compiled batch simulator vs seed.

The evaluation layer put the cache simulator on the request path, so
its speed is now a serving concern: this module measures
**evaluations per second** of the ``simulated`` cost model under both
engines over the Table 3 suite and asserts

* byte-identical totals: the batch engine must reproduce the seed
  per-iteration engine's cycles, instructions, accesses and per-level
  cache statistics exactly, program by program;
* a >= 5x evaluations/s speedup for the batch engine over the suite;
* simulation-guided refinement: ``LayoutOptimizer(refine="simulated")``
  must return layouts whose simulated cycles are <= the analytic
  winner's on at least one benchmark.

``REPRO_BENCH_SIM_CAP`` (iterations per nest) shrinks the simulated
iteration spaces for CI smoke runs -- both engines are capped
identically, so the parity assertion stays exact.
"""

import os
import time

import pytest

from repro.bench import BENCHMARK_NAMES, benchmark_build_options
from repro.eval import SimulatedCostModel
from repro.layout.layout import row_major
from repro.opt.optimizer import LayoutOptimizer, select_transforms
from repro.opt.report import format_table
from repro.simul.batchwalk import HAVE_NUMPY
from repro.simul.executor import simulate_program

#: Iteration-space cap per nest (0 / unset = full, exact simulation).
SIM_CAP = int(os.environ.get("REPRO_BENCH_SIM_CAP", 0)) or None

#: Benchmarks the refinement demonstration may use (programs whose
#: networks admit several solutions, so re-ranking has choices).
_REFINE_CANDIDATES = ("MxM", "Med-Im04", "Shape")

_rows = {}
_totals = {"periter": 0.0, "batch": 0.0, "evaluations": 0}


def _result_key(result):
    return (
        result.cycles,
        result.instructions,
        result.memory_accesses,
        result.cache_report,
    )


def _workload(programs, scheme_outcomes, build_options, name):
    """One evaluation workload: a program plus its enhanced version."""
    program = programs[name]
    layouts = scheme_outcomes[name]["enhanced"]["layouts"]
    transforms = select_transforms(
        program,
        layouts,
        build_options.include_reversals,
        build_options.skew_factors,
    )
    return program, layouts, transforms


@pytest.mark.skipif(not HAVE_NUMPY, reason="batch engine needs numpy")
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_batch_engine_is_byte_identical(
    benchmark, name, programs, scheme_outcomes, build_options
):
    """Batch totals == seed per-iteration totals, per benchmark, for
    both the original (row-major) and optimized versions."""
    program, layouts, transforms = _workload(
        programs, scheme_outcomes, build_options, name
    )
    original = {decl.name: row_major(decl.rank) for decl in program.arrays}
    versions = (("original", original, None), ("enhanced", layouts, transforms))
    timings = {"periter": 0.0, "batch": 0.0}
    for _, version_layouts, version_transforms in versions:
        results = {}
        for engine in ("periter", "batch"):
            start = time.perf_counter()
            results[engine] = simulate_program(
                program,
                version_layouts,
                transforms=version_transforms,
                engine=engine,
                max_iterations_per_nest=SIM_CAP,
            )
            timings[engine] += time.perf_counter() - start
        assert _result_key(results["batch"]) == _result_key(
            results["periter"]
        ), f"{name}: batch simulation diverged from the seed engine"
    _totals["periter"] += timings["periter"]
    _totals["batch"] += timings["batch"]
    _totals["evaluations"] += len(versions)
    _rows[name] = [
        name,
        f"{timings['periter'] * 1000:.0f}ms",
        f"{timings['batch'] * 1000:.0f}ms",
        f"{timings['periter'] / timings['batch']:.1f}x",
    ]
    benchmark.extra_info.update(
        {"seconds_periter": timings["periter"], "seconds_batch": timings["batch"]}
    )
    # The benchmarked operation: one batch-engine evaluation.
    benchmark.pedantic(
        simulate_program,
        args=(program, layouts),
        kwargs={
            "transforms": transforms,
            "engine": "batch",
            "max_iterations_per_nest": SIM_CAP,
        },
        rounds=1,
        iterations=1,
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="batch engine needs numpy")
def test_eval_throughput_speedup(benchmark):
    """The headline: >= 5x evaluations/s for the batch engine over the
    suite the parity test just timed."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _totals["evaluations"], "parity test must run first"
    periter_rate = _totals["evaluations"] / _totals["periter"]
    batch_rate = _totals["evaluations"] / _totals["batch"]
    speedup = batch_rate / periter_rate
    print("\n\n=== Evaluation throughput: simulated cost model ===")
    print(
        format_table(
            ["Benchmark", "periter", "batch", "speedup"],
            [_rows[name] for name in BENCHMARK_NAMES if name in _rows],
        )
    )
    print(
        f"  evaluations/s: periter {periter_rate:.2f}  batch {batch_rate:.2f} "
        f"({speedup:.1f}x)"
    )
    benchmark.extra_info.update(
        {"periter_eval_rate": periter_rate, "batch_eval_rate": batch_rate}
    )
    assert speedup >= 5.0, (
        f"batch engine only {speedup:.1f}x over the seed path (need >= 5x)"
    )


@pytest.mark.skipif(not HAVE_NUMPY, reason="batch engine needs numpy")
def test_refine_simulated_beats_analytic_winner(
    benchmark, programs, scheme_outcomes, build_options
):
    """Simulation-guided refinement never loses to the analytic winner,
    and on at least one benchmark it has real candidates to re-rank."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    model = SimulatedCostModel(max_iterations_per_nest=SIM_CAP)
    improved = []
    for name in _REFINE_CANDIDATES:
        program, analytic_layouts, analytic_transforms = _workload(
            programs, scheme_outcomes, build_options, name
        )
        analytic_cycles = simulate_program(
            program,
            analytic_layouts,
            transforms=analytic_transforms,
            engine="batch",
            max_iterations_per_nest=SIM_CAP,
        ).cycles
        outcome = LayoutOptimizer(
            scheme="enhanced",
            seed=1,
            options=build_options,
            refine=model,
            refine_top_k=6,
        ).optimize(program)
        assert outcome.cost is not None and outcome.refinement is not None
        refined_transforms = select_transforms(
            program,
            outcome.layouts,
            build_options.include_reversals,
            build_options.skew_factors,
        )
        refined_cycles = simulate_program(
            program,
            outcome.layouts,
            transforms=refined_transforms,
            engine="batch",
            max_iterations_per_nest=SIM_CAP,
        ).cycles
        print(
            f"\n  {name}: analytic winner {analytic_cycles:,} cycles, "
            f"refine=simulated {refined_cycles:,} cycles "
            f"({len(outcome.refinement.candidates)} candidates, "
            f"tau={outcome.refinement.agreement:+.2f})"
        )
        assert refined_cycles <= analytic_cycles, (
            f"{name}: refinement returned worse layouts than the analytic "
            "winner"
        )
        if len(outcome.refinement.candidates) > 1:
            improved.append(name)
    assert improved, "no benchmark offered multiple candidates to re-rank"

"""Figure 2 reproduction: the paper's worked locality example.

The nest ``Q1[i1+i2][i2] = Q2[i1+i2][i1]`` must yield the diagonal
layout (1 -1) for Q1 and column-major (0 1) for Q2; after loop
interchange the preferences swap to (0 1) and (1 -1) -- both derivations
are asserted and the locality-equation machinery is benchmarked.
"""

import pytest

from repro.ir.parser import parse_program
from repro.layout.layout import column_major, diagonal
from repro.layout.locality import preferred_layout
from repro.opt.optimizer import LayoutOptimizer

FIGURE2 = """
array Q1[512][256]
array Q2[512][256]
nest fig2 {
    for i1 = 0 .. 255 {
        for i2 = 0 .. 255 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


@pytest.fixture(scope="module")
def figure2_program():
    return parse_program(FIGURE2, name="figure2")


def test_locality_equations(benchmark, figure2_program):
    """Benchmark the per-reference layout derivation."""
    nest = figure2_program.nests[0]
    order = nest.index_order

    def derive():
        return [
            preferred_layout(reference, order, (0, 1))
            for reference in nest.body
        ]

    layouts = benchmark(derive)
    by_array = {
        reference.array: layout
        for reference, layout in zip(nest.body, layouts)
    }
    assert by_array["Q1"] == diagonal()
    assert by_array["Q2"] == column_major(2)


def test_interchange_flips_preferences(benchmark, figure2_program):
    """Section 2: interchanging the loops swaps the two layouts."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    nest = figure2_program.nests[0]
    order = nest.index_order
    by_array = {
        reference.array: preferred_layout(reference, order, (1, 0))
        for reference in nest.body
    }
    assert by_array["Q1"] == column_major(2)
    assert by_array["Q2"] == diagonal()


def test_full_pipeline_matches_paper(benchmark, figure2_program):
    """Benchmark the whole optimize() call on the Figure 2 program."""
    optimizer = LayoutOptimizer(scheme="enhanced")
    outcome = benchmark(optimizer.optimize, figure2_program)
    pair = (outcome.layouts["Q1"], outcome.layouts["Q2"])
    assert pair in (
        (diagonal(), column_major(2)),
        (column_major(2), diagonal()),
    )


def test_print_figure2(benchmark, figure2_program):
    """Emit the worked example (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    outcome = LayoutOptimizer(scheme="enhanced").optimize(figure2_program)
    print("\n\n=== Figure 2 reproduction ===")
    print("Q1[i1+i2][i2], Q2[i1+i2][i1] with i2 innermost:")
    for array in ("Q1", "Q2"):
        print(f"  {array}: {outcome.layouts[array].describe()}")
    print("(paper: Q1 -> (1 -1) diagonal, Q2 -> (0 1) column-major)")

"""Shared fixtures for the reproduction benchmark harness.

Everything expensive (benchmark programs, their constraint networks,
per-scheme layout solutions, simulation results) is computed once per
session and cached, so each ``bench_*`` module only pays for what it
uniquely measures.  Every module prints the reproduced table/figure
rows next to the paper's numbers; run with ``-s`` to see them inline::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.bench import benchmark_build_options, build_benchmark, BENCHMARK_NAMES
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.layout.layout import row_major
from repro.opt.heuristic import HeuristicOptimizer
from repro.opt.network_builder import build_layout_network
from repro.opt.optimizer import repair_inflation, select_transforms
from repro.simul.executor import simulate_program

#: Node cap for the slowest (base-scheme) runs: keeps a pathological
#: seed from stalling the harness; capped runs are reported as such.
#: ``REPRO_BENCH_NODE_CAP`` shrinks it for smoke runs (CI runs the
#: harness at a tiny size purely to catch kernel perf regressions).
BASE_NODE_CAP = int(os.environ.get("REPRO_BENCH_NODE_CAP", 40_000_000))

#: Solver seed used for every randomized run in the harness.
HARNESS_SEED = 1


@pytest.fixture(scope="session")
def build_options():
    return benchmark_build_options()


@pytest.fixture(scope="session")
def programs():
    """All five Table 1 programs."""
    return {name: build_benchmark(name) for name in BENCHMARK_NAMES}


@pytest.fixture(scope="session")
def networks(programs, build_options):
    """Constraint networks (with provenance) per benchmark."""
    return {
        name: build_layout_network(program, build_options)
        for name, program in programs.items()
    }


@pytest.fixture(scope="session")
def scheme_outcomes(programs, networks, build_options):
    """Solved layouts + timings per (benchmark, scheme).

    Schemes: "heuristic", "base", "enhanced".  Each entry is a dict
    with keys ``layouts``, ``seconds``, ``nodes`` (None for the
    heuristic), and ``capped`` (True when the base run hit the node
    budget and fell back to the enhanced scheme's layouts for Table 3).
    """
    results: dict[str, dict[str, dict]] = {}
    for name, program in programs.items():
        network = networks[name].network
        per_scheme: dict[str, dict] = {}

        heuristic = HeuristicOptimizer(
            build_options.include_reversals, build_options.skew_factors
        ).optimize(program)
        per_scheme["heuristic"] = {
            "layouts": heuristic.layouts,
            "seconds": heuristic.solve_seconds,
            "nodes": None,
            "capped": False,
        }

        enhanced = EnhancedSolver(seed=HARNESS_SEED).solve(network)
        assert enhanced.satisfiable, f"{name}: enhanced scheme failed"
        enhanced_assignment = dict(enhanced.assignment)
        repair_inflation(network, enhanced_assignment, program)
        per_scheme["enhanced"] = {
            "layouts": _full_layouts(program, enhanced_assignment),
            "seconds": enhanced.stats.time_seconds,
            "nodes": enhanced.stats.nodes,
            "capped": False,
        }

        base = BacktrackingSolver(
            seed=HARNESS_SEED, max_nodes=BASE_NODE_CAP
        ).solve(network)
        capped = not base.complete
        assignment = dict(
            base.assignment if base.satisfiable else enhanced.assignment
        )
        repair_inflation(network, assignment, program)
        per_scheme["base"] = {
            "layouts": _full_layouts(program, assignment),
            "seconds": base.stats.time_seconds,
            "nodes": base.stats.nodes,
            "capped": capped,
        }
        results[name] = per_scheme
    return results


@pytest.fixture(scope="session")
def simulations(programs, scheme_outcomes, build_options):
    """Simulated cycles per (benchmark, version) for Table 3."""
    cycles: dict[str, dict[str, int]] = {}
    for name, program in programs.items():
        per_version: dict[str, int] = {}
        original = {decl.name: row_major(decl.rank) for decl in program.arrays}
        per_version["original"] = simulate_program(program, original).cycles
        for scheme in ("heuristic", "base", "enhanced"):
            layouts = scheme_outcomes[name][scheme]["layouts"]
            transforms = select_transforms(
                program,
                layouts,
                build_options.include_reversals,
                build_options.skew_factors,
            )
            per_version[scheme] = simulate_program(
                program, layouts, transforms=transforms
            ).cycles
        cycles[name] = per_version
    return cycles


def _full_layouts(program, assignment):
    layouts = dict(assignment)
    for decl in program.arrays:
        layouts.setdefault(decl.name, row_major(decl.rank))
    return layouts

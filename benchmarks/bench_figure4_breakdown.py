"""Figure 4 reproduction: per-enhancement benefit breakdown.

The paper's Figure 4 is a stacked bar per benchmark showing how much of
the base->enhanced solution-time saving comes from (a) variable
selection, (b) value selection, (c) backjumping; backjumping dominates,
but all three contribute.

We measure each enhancement's *individual* saving (base time minus the
time of base + that single enhancement) and normalize the three savings
to percentage shares, exactly how a per-enhancement attribution is
constructed.  Effort is also reported in search nodes, which is
machine-independent.
"""

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.opt.report import format_table
from benchmarks.conftest import BASE_NODE_CAP, HARNESS_SEED

_CONFIGS = {
    "variable": EnhancementConfig(True, False, False),
    "value": EnhancementConfig(False, True, False),
    "backjumping": EnhancementConfig(False, False, True),
}

_rows = {}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_enhancement_breakdown(benchmark, name, networks, scheme_outcomes):
    """Time base plus each single enhancement on one benchmark."""
    network = networks[name].network
    base_seconds = scheme_outcomes[name]["base"]["seconds"]

    savings = {}
    times = {}

    def run_all():
        for label, config in _CONFIGS.items():
            solver = EnhancedSolver(
                config, seed=HARNESS_SEED, max_nodes=BASE_NODE_CAP
            )
            result = solver.solve(network)
            times[label] = result.stats.time_seconds
            savings[label] = max(0.0, base_seconds - result.stats.time_seconds)
        return times

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    total = sum(savings.values())
    if total <= 0.0:
        shares = {label: 0.0 for label in _CONFIGS}
    else:
        shares = {
            label: 100.0 * saving / total for label, saving in savings.items()
        }
    _rows[name] = [
        name,
        f"{shares['variable']:.1f}%",
        f"{shares['value']:.1f}%",
        f"{shares['backjumping']:.1f}%",
        f"{base_seconds:.2f}",
        f"{times['variable']:.3f}",
        f"{times['value']:.3f}",
        f"{times['backjumping']:.3f}",
    ]
    # Every single enhancement should beat the plain base scheme on a
    # nontrivial network (MxM is near-instant either way).
    if base_seconds > 0.5:
        assert min(times.values()) < base_seconds
    benchmark.extra_info.update({f"time_{k}": v for k, v in times.items()})


def test_print_figure4(benchmark):
    """Emit the reproduced Figure 4 shares (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == len(BENCHMARK_NAMES)
    print("\n\n=== Figure 4 reproduction: share of base->enhanced saving ===")
    print(
        format_table(
            [
                "Benchmark",
                "var select", "val select", "backjump",
                "base s", "base+var s", "base+val s", "base+bj s",
            ],
            [_rows[name] for name in BENCHMARK_NAMES],
        )
    )
    print("(paper Figure 4: backjumping contributes the largest share, "
          "with variable/value selection both material)")

"""Table 3 reproduction: simulated execution times.

Paper (DATE'05, Table 3, seconds on the SimpleScalar model)::

    Benchmark   Original   Heuristic     Base    Enhanced
    Med-Im04     204.27      128.14      82.55     81.07
    MxM           69.31       28.33      28.33     28.33
    Radar        192.44      110.78      83.92     85.15
    Shape        233.58      140.30     106.45    106.45
    Track        231.00      127.61      97.28     95.30
    average improvement:      42.49%     57.17%    57.95%

We measure simulated CPU cycles on our trace-driven model of the same
machine configuration.  The validated shape: every optimized version
beats the original; the constraint-network schemes (base/enhanced) beat
or match the heuristic on average; base and enhanced may differ
slightly when multiple network solutions exist.
"""

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.layout.layout import row_major
from repro.opt.optimizer import select_transforms
from repro.opt.report import format_table
from repro.simul.executor import simulate_program

#: Paper Table 3 rows: (original, heuristic, base, enhanced) seconds.
PAPER_TABLE3 = {
    "Med-Im04": (204.27, 128.14, 82.55, 81.07),
    "MxM": (69.31, 28.33, 28.33, 28.33),
    "Radar": (192.44, 110.78, 83.92, 85.15),
    "Shape": (233.58, 140.30, 106.45, 106.45),
    "Track": (231.00, 127.61, 97.28, 95.30),
}

_rows = {}
_improvements: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_execution_times(benchmark, name, programs, simulations):
    """Simulate all four versions of one benchmark (cached fixture) and
    time one representative simulation run."""
    program = programs[name]
    cycles = simulations[name]

    original = cycles["original"]
    improvements = {
        scheme: 100.0 * (1 - cycles[scheme] / original)
        for scheme in ("heuristic", "base", "enhanced")
    }
    _improvements[name] = improvements
    paper = PAPER_TABLE3[name]
    paper_improvements = [100.0 * (1 - v / paper[0]) for v in paper[1:]]
    _rows[name] = [
        name,
        f"{cycles['original']:,}",
        f"{improvements['heuristic']:.1f}% ({paper_improvements[0]:.1f}%)",
        f"{improvements['base']:.1f}% ({paper_improvements[1]:.1f}%)",
        f"{improvements['enhanced']:.1f}% ({paper_improvements[2]:.1f}%)",
    ]

    # Shape assertions (the paper's qualitative claims).
    assert cycles["heuristic"] < original, "heuristic must beat original"
    assert cycles["enhanced"] < original, "enhanced must beat original"
    benchmark.extra_info.update(
        {"cycles_" + k: v for k, v in cycles.items()}
    )

    # The benchmarked operation: one original-layout simulation.
    layouts = {decl.name: row_major(decl.rank) for decl in program.arrays}
    benchmark.pedantic(
        simulate_program, args=(program, layouts), rounds=1, iterations=1
    )


def test_cn_schemes_beat_heuristic_on_average(benchmark, simulations):
    """The paper's headline: CN schemes average a larger improvement
    than the propagation heuristic (57.17/57.95% vs 42.49%)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    averages = {}
    for scheme in ("heuristic", "base", "enhanced"):
        improvements = [
            100.0 * (1 - simulations[name][scheme] / simulations[name]["original"])
            for name in BENCHMARK_NAMES
        ]
        averages[scheme] = sum(improvements) / len(improvements)
    assert averages["enhanced"] > averages["heuristic"]
    # The base scheme returns an arbitrary network solution; even with
    # the repair pass its random solution basins keep it only *near*
    # the heuristic rather than strictly above on every run (see
    # EXPERIMENTS.md), so the base claim carries a small tolerance.
    assert averages["base"] > averages["heuristic"] - 5.0


def test_print_table3(benchmark, simulations):
    """Emit the reproduced Table 3 (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == len(BENCHMARK_NAMES)
    print("\n\n=== Table 3 reproduction: improvement over original "
          "(paper's value in parentheses) ===")
    print(
        format_table(
            ["Benchmark", "original cycles", "heuristic", "base", "enhanced"],
            [_rows[name] for name in BENCHMARK_NAMES],
        )
    )
    for scheme in ("heuristic", "base", "enhanced"):
        average = sum(_improvements[n][scheme] for n in BENCHMARK_NAMES) / len(
            BENCHMARK_NAMES
        )
        print(f"  average {scheme}: {average:.2f}%")
    print("  (paper averages: heuristic 42.49%, base 57.17%, enhanced 57.95%)")

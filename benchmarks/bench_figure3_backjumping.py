"""Figure 3 reproduction: backtracking versus backjumping.

The paper's Figure 3 contrasts the two dead-end rules: chronological
backtracking returns to the previously instantiated variable even when
it shares no constraint with the dead-end variable; backjumping skips
straight to the most recent *connected* variable.  We regenerate the
scenario on networks where innocent variables sit between the culprit
and the dead end, assert the jump happens, and benchmark both rules on
progressively longer innocent chains.
"""

import pytest

from repro.csp.engine import (
    EngineConfig,
    JUMP_CHRONOLOGICAL,
    JUMP_GRAPH,
    SearchEngine,
)
from repro.csp.network import ConstraintNetwork
from repro.opt.report import format_table
from repro.viz.search_art import render_search_trace


def _figure3_network(innocents: int) -> ConstraintNetwork:
    """Qk ... (innocents) ... Qj where Qj constrains only Qk."""
    network = ConstraintNetwork()
    network.add_variable("Qk", [0, 1])
    for index in range(innocents):
        network.add_variable(f"Qi{index}", [0, 1, 2])
    network.add_variable("Qj", [0, 1])
    network.add_constraint("Qk", "Qj", [(1, 0), (1, 1)])
    return network


@pytest.mark.parametrize("innocents", [2, 6, 12])
def test_backjumping_scales_past_innocents(benchmark, innocents):
    """Static-order search cost: the backjumper's node count must not
    blow up with the number of innocent variables in between."""
    network = _figure3_network(innocents)

    def run(jump_mode: str) -> int:
        engine = SearchEngine(EngineConfig(jump_mode=jump_mode, seed=0))
        result = engine.solve(network)
        assert result.satisfiable
        return result.stats.nodes

    nodes_jump = benchmark(run, JUMP_GRAPH)
    nodes_chrono = run(JUMP_CHRONOLOGICAL)
    assert nodes_jump <= nodes_chrono


def test_print_figure3(benchmark):
    """Emit the two Figure 3 traces (run with -s to see them)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    network = _figure3_network(1)
    # Order chosen so Qk is instantiated first with its failing value.
    order = ["Qk", "Qi0", "Qj"]
    print("\n\n=== Figure 3 reproduction ===")
    print(render_search_trace(network, order, backjumping=False))
    print()
    print(render_search_trace(network, order, backjumping=True))


def test_jump_statistics_table(benchmark):
    """Tabulate nodes/backtracks/backjumps across chain lengths."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for innocents in (2, 6, 12, 20):
        network = _figure3_network(innocents)
        chrono = SearchEngine(
            EngineConfig(jump_mode=JUMP_CHRONOLOGICAL, seed=3)
        ).solve(network)
        jumping = SearchEngine(
            EngineConfig(jump_mode=JUMP_GRAPH, seed=3)
        ).solve(network)
        rows.append(
            [
                innocents,
                chrono.stats.nodes,
                jumping.stats.nodes,
                jumping.stats.backjumps,
            ]
        )
        assert jumping.stats.nodes <= chrono.stats.nodes
    print("\n\n=== Figure 3: cost vs innocent-variable count ===")
    print(
        format_table(
            ["innocents", "backtracking nodes", "backjumping nodes", "jumps"],
            rows,
        )
    )
